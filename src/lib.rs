//! # ffw
//!
//! Umbrella crate for the FFW-Tomo workspace: a complete Rust reproduction of
//! *"A Fast and Massively-Parallel Inverse Solver for Multiple-Scattering
//! Tomographic Image Reconstruction"* (IPDPS 2018).
//!
//! This crate re-exports every workspace member under a stable prefix so the
//! runnable examples and cross-crate integration tests have a single import
//! root. Library users should depend on [`ffw_tomo`] (the high-level API) or
//! on the individual subsystem crates.

pub use ffw_dist as dist;
pub use ffw_fault as fault;
pub use ffw_geometry as geometry;
pub use ffw_greens as greens;
pub use ffw_inverse as inverse;
pub use ffw_mlfma as mlfma;
pub use ffw_mpi as mpi;
pub use ffw_numerics as numerics;
pub use ffw_par as par;
pub use ffw_perf as perf;
pub use ffw_phantom as phantom;
pub use ffw_solver as solver;
pub use ffw_tomo as tomo;
