//! The paper's Section V-E consistency check, transplanted: where the paper
//! compares CPU and GPU executions ("the final images ... have a relative
//! difference norm of 7.15e-13"), we compare the serial solver against the
//! fully 2-D-parallel one (illumination groups x MLFMA sub-trees). The
//! parallel code path performs the same arithmetic through entirely different
//! schedules and communication, so agreement at ~1e-12 certifies both.

use ffw::dist::{dist_bicgstab, dist_dbim, DistMlfma, DistScatteringOp};
use ffw::geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw::inverse::{dbim, synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw::mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw::numerics::vecops::rel_diff;
use ffw::numerics::C64;
use ffw::par::Pool;
use ffw::phantom::{object_from_contrast, Cylinder, Phantom};
use ffw::solver::{solve_forward, IterConfig};
use std::sync::Arc;

fn scene() -> (Domain, QuadTree, Arc<MlfmaPlan>, ImagingSetup, Vec<C64>) {
    let domain = Domain::new(64, 1.0);
    let tree = QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(12, ring),
    );
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.6,
        contrast: 0.05,
    };
    let object = object_from_contrast(&domain, &tree, &truth.rasterize(&domain));
    (domain, tree, plan, setup, object)
}

#[test]
fn distributed_forward_solve_matches_serial() {
    let (_domain, _tree, plan, setup, object) = scene();
    let serial_engine = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let cfg = IterConfig {
        tol: 1e-8,
        max_iters: 500,
    };
    let mut phi_serial = vec![C64::ZERO; object.len()];
    solve_forward(
        &serial_engine,
        &object,
        setup.incident(0),
        &mut phi_serial,
        cfg,
    );

    for n_ranks in [2usize, 4] {
        let per = object.len() / n_ranks;
        let plan2 = Arc::clone(&plan);
        let object2 = object.clone();
        let setup_ref = &setup;
        let (slices, _) = ffw::mpi::run(n_ranks, move |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let rank = comm.rank();
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
            let obj_local = &object2[rank * per..(rank + 1) * per];
            let a = DistScatteringOp {
                g0: &g0,
                object_local: obj_local,
            };
            let inc = &setup_ref.incident(0)[rank * per..(rank + 1) * per];
            let mut phi = vec![C64::ZERO; per];
            let stats = dist_bicgstab(&a, &comm, &members, inc, &mut phi, cfg);
            assert!(stats.converged);
            phi
        });
        let phi_dist: Vec<C64> = slices.into_iter().flatten().collect();
        let err = rel_diff(&phi_dist, &phi_serial);
        assert!(err < 1e-7, "ranks={n_ranks}: {err:e}");
    }
}

#[test]
fn parallel_dbim_reproduces_serial_image() {
    let (_domain, _tree, plan, setup, object_true) = scene();
    let serial_engine = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let measured =
        synthesize_measurements(&setup, &serial_engine, &object_true, Default::default());
    let cfg = DbimConfig {
        iterations: 3,
        ..Default::default()
    };
    let serial = dbim(&setup, &serial_engine, &measured, &cfg).expect("serial dbim");

    // 4 ranks = 2 illumination groups x 2 sub-tree slots.
    let (groups, subtree) = (2usize, 2usize);
    let plan2 = Arc::clone(&plan);
    let setup_ref = &setup;
    let measured_ref = &measured;
    let cfg_ref = &cfg;
    let (results, _) = ffw::mpi::run(groups * subtree, move |comm| {
        dist_dbim(
            &comm,
            setup_ref,
            Arc::clone(&plan2),
            measured_ref,
            groups,
            subtree,
            cfg_ref,
        )
    });
    // Reassemble the image from group 0's slots (slots partition the pixels).
    let mut image = vec![C64::ZERO; setup.n_pixels()];
    for r in results.iter().take(subtree) {
        image[r.pixel_range.clone()].copy_from_slice(&r.object_local);
    }
    let err = rel_diff(&image, &serial.object);
    assert!(
        err < 1e-10,
        "serial vs 2-D-parallel DBIM image difference: {err:e}"
    );
    // Residual histories must agree too.
    for (a, b) in results[0]
        .residual_history
        .iter()
        .zip(serial.history.iter().map(|h| h.rel_residual))
    {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }
    // And every group must hold the same image.
    let mut image_g1 = vec![C64::ZERO; setup.n_pixels()];
    for r in results.iter().skip(subtree) {
        image_g1[r.pixel_range.clone()].copy_from_slice(&r.object_local);
    }
    assert!(rel_diff(&image_g1, &image) < 1e-12);
}
