//! Physics validation: the discretized forward solver (volume integral
//! equation + BiCGStab + MLFMA) must reproduce the analytic Mie-series
//! solution for plane-wave scattering off a homogeneous dielectric cylinder.

use ffw::geometry::Domain;
use ffw::greens::{incident_plane_wave, tree_positions, Kernel, MieCylinder};
use ffw::inverse::MlfmaG0;
use ffw::mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw::numerics::vecops::rel_diff;
use ffw::numerics::C64;
use ffw::par::Pool;
use ffw::phantom::{object_from_contrast, Cylinder, Phantom};
use ffw::solver::{solve_forward, IterConfig};
use std::sync::Arc;

/// Total internal field vs the Mie series, moderate contrast.
#[test]
fn forward_solver_matches_mie_series() {
    let domain = Domain::new(64, 1.0); // 6.4 lambda
    let tree = ffw::geometry::QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let engine = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(2)))));

    let radius = 1.2; // 1.2 lambda cylinder
    let contrast = 0.3;
    let cyl = Cylinder {
        center: ffw::geometry::Point2::ZERO,
        radius,
        contrast,
    };
    let object = object_from_contrast(&domain, &tree, &cyl.rasterize(&domain));

    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let positions = tree_positions(&domain, &tree);
    let phi_inc = incident_plane_wave(&kernel, 0.0, &positions);

    let mut phi = vec![C64::ZERO; object.len()];
    let stats = solve_forward(
        &engine,
        &object,
        &phi_inc,
        &mut phi,
        IterConfig {
            tol: 1e-8,
            max_iters: 2000,
        },
    );
    assert!(stats.converged, "{stats:?}");

    // Compare against the analytic series away from the material boundary
    // (the staircased pixel boundary is the discretization's weak spot).
    let mie = MieCylinder::new(domain.k0(), radius, contrast);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut checked = 0usize;
    for (i, p) in positions.iter().enumerate() {
        let r = p.norm();
        if (r - radius).abs() > 0.2 {
            let exact = mie.total_field(*p);
            num += (phi[i] - exact).norm_sqr();
            den += exact.norm_sqr();
            checked += 1;
        }
    }
    let err = (num / den).sqrt();
    assert!(checked > 2000, "enough pixels compared");
    // ~2% is the expected level for a staircased lambda/10 pixelization of a
    // curved high-contrast boundary; the error is discretization, not solver
    // (the solver residual above is 1e-8).
    assert!(
        err < 0.03,
        "field error vs Mie series: {err:.4} (lambda/10 discretization)"
    );
}

/// Weak scatterer: one Born term dominates, so BiCGStab converges in very few
/// iterations — the regime of the paper's Fig. 13 (0.02 contrast).
#[test]
fn weak_contrast_converges_in_few_iterations() {
    let domain = Domain::new(64, 1.0);
    let tree = ffw::geometry::QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let engine = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(1)))));
    let cyl = Cylinder {
        center: ffw::geometry::Point2::ZERO,
        radius: 2.0,
        contrast: 0.02,
    };
    let object = object_from_contrast(&domain, &tree, &cyl.rasterize(&domain));
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let positions = tree_positions(&domain, &tree);
    let phi_inc = incident_plane_wave(&kernel, 0.5, &positions);
    let mut phi = vec![C64::ZERO; object.len()];
    let stats = solve_forward(&engine, &object, &phi_inc, &mut phi, IterConfig::default());
    assert!(stats.converged);
    assert!(
        stats.iterations <= 10,
        "weak scatterer should converge fast: {stats:?}"
    );
}

/// The MLFMA-backed forward solution must agree with the dense-G0-backed one.
#[test]
fn mlfma_and_dense_forward_agree() {
    let domain = Domain::new(32, 1.0);
    let tree = ffw::geometry::QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let engine = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(2)))));
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let positions = tree_positions(&domain, &tree);
    let dense = ffw::greens::assemble_g0(&kernel, &positions);

    let cyl = Cylinder {
        center: ffw::geometry::pt(0.3, -0.2),
        radius: 0.9,
        contrast: 0.25,
    };
    let object = object_from_contrast(&domain, &tree, &cyl.rasterize(&domain));
    let phi_inc = incident_plane_wave(&kernel, 1.1, &positions);
    let cfg = IterConfig {
        tol: 1e-9,
        max_iters: 1000,
    };
    let mut phi_fast = vec![C64::ZERO; object.len()];
    let mut phi_dense = vec![C64::ZERO; object.len()];
    let s1 = solve_forward(&engine, &object, &phi_inc, &mut phi_fast, cfg);
    let s2 = solve_forward(&dense, &object, &phi_inc, &mut phi_dense, cfg);
    assert!(s1.converged && s2.converged);
    let err = rel_diff(&phi_fast, &phi_dense);
    assert!(err < 1e-4, "MLFMA vs dense forward solution: {err:e}");
}
