//! Reconstruction-quality integration tests: the claims behind the paper's
//! Figs. 1–2 (multiple scattering beats single scattering) and the behaviour
//! of the optimizer variants, at sizes small enough for CI.

use ffw::geometry::Point2;
use ffw::inverse::{add_noise, BornConfig, DbimConfig};
use ffw::mlfma::Accuracy;
use ffw::phantom::{image_rel_error, Annulus, Phantom};
use ffw::tomo::{Reconstruction, SceneConfig};
use std::sync::Arc;

fn scene() -> (Reconstruction, Annulus, Vec<f64>) {
    let scene = SceneConfig {
        accuracy: Accuracy::low(),
        ..SceneConfig::new(32, 8, 16)
    };
    let recon = Reconstruction::new(&scene);
    let d = recon.domain().side();
    let truth = Annulus {
        center: Point2::ZERO,
        inner: 0.18 * d,
        outer: 0.30 * d,
        contrast: 0.3,
    };
    let raster = truth.rasterize(recon.domain());
    (recon, truth, raster)
}

#[test]
fn dbim_beats_born_at_high_contrast() {
    let (recon, truth, truth_raster) = scene();
    let measured = recon.synthesize(&truth);
    let dbim = recon.run_dbim(&measured, 8).expect("dbim");
    let dbim_err = image_rel_error(&recon.image(&dbim.object), &truth_raster);
    let born = recon.run_born(&measured, &BornConfig::default());
    let born_err = image_rel_error(&recon.image(&born.object), &truth_raster);
    assert!(
        dbim_err < 0.9 * born_err,
        "multiple scattering must win: DBIM {dbim_err:.3} vs Born {born_err:.3}"
    );
}

#[test]
fn residual_history_is_monotinically_decreasing_overall() {
    let (recon, truth, _) = scene();
    let measured = recon.synthesize(&truth);
    let result = recon.run_dbim(&measured, 6).expect("dbim");
    let first = result.history.first().expect("history").rel_residual;
    let last = result.final_residual;
    assert!(last < 0.3 * first, "{first} -> {last}");
    // each recorded residual should not exceed the initial one
    for h in &result.history {
        assert!(h.rel_residual <= first * 1.0001);
    }
}

#[test]
fn conjugate_directions_converge_no_slower_than_steepest_descent() {
    let (recon, truth, _) = scene();
    let measured = recon.synthesize(&truth);
    let cg = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 6,
                ..Default::default()
            },
        )
        .expect("dbim");
    let sd = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 6,
                conjugate: false,
                ..Default::default()
            },
        )
        .expect("dbim");
    assert!(
        cg.final_residual <= sd.final_residual * 1.05,
        "CG {} vs SD {}",
        cg.final_residual,
        sd.final_residual
    );
}

#[test]
fn preconditioned_dbim_matches_unpreconditioned_image() {
    let (recon, truth, _) = scene();
    let measured = recon.synthesize(&truth);
    let plain = recon.run_dbim(&measured, 3).expect("dbim");
    let pre = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 3,
                precondition: Some(Arc::clone(&recon.plan)),
                ..Default::default()
            },
        )
        .expect("dbim");
    // Preconditioning changes the Krylov path but not the solution each solve
    // converges to, so the reconstructions must agree to solver tolerance.
    let a = recon.image(&plain.object);
    let b = recon.image(&pre.object);
    let diff: f64 = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
        / a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-30);
    assert!(diff < 0.05, "images agree to solver tolerance: {diff}");
    // ... while spending fewer BiCGStab iterations in total
    let plain_iters: usize = plain.history.iter().map(|h| h.solver_iters).sum();
    let pre_iters: usize = pre.history.iter().map(|h| h.solver_iters).sum();
    assert!(
        pre_iters <= plain_iters,
        "preconditioner must not increase iterations: {pre_iters} vs {plain_iters}"
    );
}

#[test]
fn positivity_projection_never_produces_negative_contrast() {
    let (recon, truth, _) = scene();
    let measured = recon.synthesize(&truth);
    let result = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 4,
                positivity: true,
                ..Default::default()
            },
        )
        .expect("dbim");
    let image = recon.image(&result.object);
    assert!(image.iter().all(|&v| v >= 0.0));
}

#[test]
fn noise_degrades_gracefully() {
    let (recon, truth, truth_raster) = scene();
    let clean = recon.synthesize(&truth);
    let clean_result = recon.run_dbim(&clean, 5).expect("dbim");
    let clean_err = image_rel_error(&recon.image(&clean_result.object), &truth_raster);
    let mut noisy = clean.clone();
    add_noise(&mut noisy, 20.0, 11);
    let noisy_result = recon.run_dbim(&noisy, 5).expect("dbim");
    let noisy_err = image_rel_error(&recon.image(&noisy_result.object), &truth_raster);
    assert!(noisy_err >= clean_err * 0.9, "noise cannot help much");
    assert!(
        noisy_err < 2.5 * clean_err + 0.3,
        "but must not destroy the image: {noisy_err} vs {clean_err}"
    );
}

#[test]
fn warm_start_reduces_total_bicgstab_iterations() {
    let (recon, truth, _) = scene();
    let measured = recon.synthesize(&truth);
    let warm = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 5,
                ..Default::default()
            },
        )
        .expect("dbim");
    let cold = recon
        .run_dbim_with(
            &measured,
            &DbimConfig {
                iterations: 5,
                warm_start: false,
                ..Default::default()
            },
        )
        .expect("dbim");
    let warm_iters: usize = warm.history.iter().map(|h| h.solver_iters).sum();
    let cold_iters: usize = cold.history.iter().map(|h| h.solver_iters).sum();
    assert!(
        warm_iters < cold_iters,
        "warm start saves iterations: {warm_iters} vs {cold_iters}"
    );
}
