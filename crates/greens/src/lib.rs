//! # ffw-greens
//!
//! The 2-D Helmholtz Green's operator substrate: matrix elements of `G0`
//! (pixel-pixel), `GR` (pixel-receiver) and `GT` (transmitter-pixel) under
//! the equivalent-disk collocation discretization, incident fields, dense
//! `O(N^2)` reference operators, and the analytic Mie-series oracle used to
//! validate the forward solver against exact physics.

#![warn(missing_docs)]

pub mod direct;
pub mod kernel;
pub mod mie;

pub use direct::{
    assemble_g0, assemble_gr, incident_field, incident_plane_wave, tree_positions, DirectG0,
};
pub use kernel::Kernel;
pub use mie::MieCylinder;
