//! Dense / on-the-fly reference implementations of the Green's operators.
//!
//! These are the `O(N^2)` baselines the paper compares MLFMA against
//! (Section V-B: "at most 1e-5 error, relative to naive direct O(N^2)
//! multiplication") and the oracles for our accuracy tests.

use crate::kernel::Kernel;
use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw_numerics::linalg::Matrix;
use ffw_numerics::C64;

/// Pixel center positions in tree order.
pub fn tree_positions(domain: &Domain, tree: &QuadTree) -> Vec<Point2> {
    (0..tree.n_pixels())
        .map(|i| tree.pixel_center_tree(domain, i))
        .collect()
}

/// On-the-fly `y = G0 x` in `O(N^2)` without storing the matrix.
pub struct DirectG0<'a> {
    kernel: Kernel,
    positions: &'a [Point2],
}

impl<'a> DirectG0<'a> {
    /// Creates the direct operator over the given (tree-order) positions.
    pub fn new(kernel: Kernel, positions: &'a [Point2]) -> Self {
        DirectG0 { kernel, positions }
    }

    /// Applies `y = G0 x`.
    pub fn apply(&self, x: &[C64], y: &mut [C64]) {
        let n = self.positions.len();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for (m, ym) in y.iter_mut().enumerate() {
            let pm = self.positions[m];
            let mut acc = C64::ZERO;
            for (nn, &xn) in x.iter().enumerate() {
                let r = pm.dist(self.positions[nn]);
                acc += self.kernel.g0_element(if m == nn { 0.0 } else { r }) * xn;
            }
            *ym = acc;
        }
    }
}

/// Assembles the dense `G0` matrix (small problems / tests only).
pub fn assemble_g0(kernel: &Kernel, positions: &[Point2]) -> Matrix {
    let n = positions.len();
    Matrix::from_fn(n, n, |m, nn| {
        if m == nn {
            kernel.self_term
        } else {
            kernel.g0_element(positions[m].dist(positions[nn]))
        }
    })
}

/// Assembles the dense receiver operator `GR` (`R x N`).
pub fn assemble_gr(kernel: &Kernel, receivers: &TransducerArray, positions: &[Point2]) -> Matrix {
    Matrix::from_fn(receivers.len(), positions.len(), |r, nn| {
        kernel.gr_element(receivers.position(r).dist(positions[nn]))
    })
}

/// Incident field of transmitter `t` on all pixels (tree order).
pub fn incident_field(
    kernel: &Kernel,
    transmitters: &TransducerArray,
    t: usize,
    positions: &[Point2],
) -> Vec<C64> {
    let src = transmitters.position(t);
    positions
        .iter()
        .map(|p| kernel.incident_line_source(p.dist(src)))
        .collect()
}

/// Incident plane wave `e^{i k khat . r}` travelling at angle `theta`.
pub fn incident_plane_wave(kernel: &Kernel, theta: f64, positions: &[Point2]) -> Vec<C64> {
    let khat = Point2::unit(theta);
    positions
        .iter()
        .map(|p| C64::cis(kernel.k * khat.dot(*p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::vecops::rel_diff;

    fn setup() -> (Domain, QuadTree, Kernel) {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        (domain, tree, kernel)
    }

    #[test]
    fn direct_matches_assembled_matrix() {
        let (domain, tree, kernel) = setup();
        let pos = tree_positions(&domain, &tree);
        let g = assemble_g0(&kernel, &pos);
        let x: Vec<C64> = (0..pos.len())
            .map(|i| C64::cis(i as f64 * 0.7) * (1.0 + (i % 5) as f64))
            .collect();
        let mut y1 = vec![C64::ZERO; pos.len()];
        DirectG0::new(kernel, &pos).apply(&x, &mut y1);
        let mut y2 = vec![C64::ZERO; pos.len()];
        g.matvec(&x, &mut y2);
        assert!(rel_diff(&y1, &y2) < 1e-13);
    }

    #[test]
    fn g0_is_complex_symmetric() {
        let (domain, tree, kernel) = setup();
        let pos = tree_positions(&domain, &tree);
        let g = assemble_g0(&kernel, &pos);
        for m in (0..pos.len()).step_by(97) {
            for n in (0..pos.len()).step_by(89) {
                assert!((g.at(m, n) - g.at(n, m)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn incident_field_reciprocity() {
        // Field of tx at pixel == field of a source at the pixel evaluated at tx.
        let (domain, tree, kernel) = setup();
        let pos = tree_positions(&domain, &tree);
        let txs = TransducerArray::ring(4, 3.0 * domain.side());
        let f0 = incident_field(&kernel, &txs, 0, &pos);
        let d = pos[10].dist(txs.position(0));
        assert!((f0[10] - kernel.incident_line_source(d)).abs() < 1e-15);
    }

    #[test]
    fn plane_wave_unit_modulus() {
        let (domain, tree, kernel) = setup();
        let pos = tree_positions(&domain, &tree);
        let pw = incident_plane_wave(&kernel, 0.3, &pos);
        assert!(pw.iter().all(|v| (v.abs() - 1.0).abs() < 1e-12));
        let _ = domain;
    }

    #[test]
    fn gr_shape_and_elements() {
        let (domain, tree, kernel) = setup();
        let pos = tree_positions(&domain, &tree);
        let rx = TransducerArray::ring(6, 2.0 * domain.side());
        let gr = assemble_gr(&kernel, &rx, &pos);
        assert_eq!(gr.rows(), 6);
        assert_eq!(gr.cols(), pos.len());
        let d = rx.position(2).dist(pos[5]);
        assert!((gr.at(2, 5) - kernel.gr_element(d)).abs() < 1e-15);
    }
}
