//! Matrix elements of the 2-D Helmholtz Green's operators.
//!
//! The free-space Green's function is `g0(r, r') = (i/4) H0^(1)(k |r - r'|)`
//! (paper Section VI-A). Pixels are discretized with the equivalent-circle
//! (Richmond) collocation scheme: each square pixel of side `delta` is
//! replaced by the equal-area disk of radius `a = delta / sqrt(pi)`, for which
//! the pixel integrals in the paper's Eq. (4) have closed forms:
//!
//! * field at an external point due to a uniformly excited disk:
//!   `(i/4) * (2 pi a / k) J1(ka) * H0^(1)(k |r - r_n|)`;
//! * self term (observation at the disk center):
//!   `(i/4) * (2 pi / k^2) * (k a H1^(1)(ka) + 2i/pi)`.
//!
//! The second form is the analytical singularity extraction the paper invokes
//! for the diagonal. Both reduce to `(i/4) pi a^2 H0` as `ka -> 0`, and the
//! first keeps the *far-field kernel exactly `H0`*, which is what MLFMA
//! factorizes: the far field of pixel `n` is `coupling * H0^(1)(k|r - r_n|)`.

use ffw_numerics::bessel::{hankel1_0, hankel1_1, j1};
use ffw_numerics::{c64, C64};

/// Precomputed per-problem kernel constants.
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// Background wavenumber.
    pub k: f64,
    /// Equivalent disk radius.
    pub a: f64,
    /// Scalar coupling `(i/4)(2 pi a / k) J1(ka)` multiplying `H0(k r)` for
    /// all off-diagonal / receiver / far-field interactions.
    pub coupling: C64,
    /// Diagonal (self) interaction element.
    pub self_term: C64,
}

impl Kernel {
    /// Builds the kernel for wavenumber `k` and equivalent radius `a`.
    pub fn new(k: f64, a: f64) -> Self {
        assert!(k > 0.0 && a > 0.0);
        let ka = k * a;
        let coupling = c64(0.0, 0.25) * (2.0 * std::f64::consts::PI * a / k) * j1(ka);
        let h1 = hankel1_1(ka);
        let bracket = h1 * ka + c64(0.0, std::f64::consts::FRAC_2_PI);
        let self_term = c64(0.0, 0.25) * (2.0 * std::f64::consts::PI / (k * k)) * bracket;
        Kernel {
            k,
            a,
            coupling,
            self_term,
        }
    }

    /// Pixel-pixel interaction element `G0[m, n]` for center distance `r`
    /// (`r = 0` selects the self term).
    #[inline]
    pub fn g0_element(&self, r: f64) -> C64 {
        if r == 0.0 {
            self.self_term
        } else {
            self.coupling * hankel1_0(self.k * r)
        }
    }

    /// Receiver element `GR[r, n]`: field at an external observation point at
    /// distance `r` from pixel `n` (same disk radiation formula).
    #[inline]
    pub fn gr_element(&self, r: f64) -> C64 {
        debug_assert!(r > 0.0, "receivers must lie outside the pixel");
        self.coupling * hankel1_0(self.k * r)
    }

    /// Incident field of a unit line source at distance `r`:
    /// `(i/4) H0^(1)(k r)` (transmitters are Dirac deltas, Section VI-A).
    #[inline]
    pub fn incident_line_source(&self, r: f64) -> C64 {
        c64(0.0, 0.25) * hankel1_0(self.k * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ka_limits() {
        // For ka -> 0 both coupling and self term approach (i/4) * pi a^2.
        let k = 2.0 * std::f64::consts::PI;
        let a = 1e-4;
        let kern = Kernel::new(k, a);
        let area = std::f64::consts::PI * a * a;
        let ideal = c64(0.0, 0.25) * area;
        assert!((kern.coupling - ideal).abs() / ideal.abs() < 1e-6);
        // self term has a logarithmic correction; only its magnitude order matches
        assert!(kern.self_term.abs() < 10.0 * ideal.abs() * (1.0 / a).ln());
    }

    #[test]
    fn self_term_matches_numerical_disk_integral() {
        // Integrate (i/4) H0(k rho) over the disk numerically.
        let k = 2.0 * std::f64::consts::PI;
        let a = 0.1 / std::f64::consts::PI.sqrt();
        let kern = Kernel::new(k, a);
        let nr = 4000;
        let mut acc = C64::ZERO;
        for i in 0..nr {
            let rho = (i as f64 + 0.5) * a / nr as f64;
            acc += hankel1_0(k * rho) * (rho * a / nr as f64);
        }
        let numeric = c64(0.0, 0.25) * (2.0 * std::f64::consts::PI) * acc;
        assert!(
            (numeric - kern.self_term).abs() / kern.self_term.abs() < 1e-5,
            "{numeric:?} vs {:?}",
            kern.self_term
        );
    }

    #[test]
    fn off_diag_matches_numerical_disk_integral() {
        // Field at an external point r due to the uniformly excited disk.
        let k = 2.0 * std::f64::consts::PI;
        let a = 0.1 / std::f64::consts::PI.sqrt();
        let kern = Kernel::new(k, a);
        let robs = 0.35; // distance from disk center
                         // 2-D quadrature over the disk
        let n = 600;
        let mut acc = C64::ZERO;
        let h = 2.0 * a / n as f64;
        for i in 0..n {
            for j in 0..n {
                let x = -a + (i as f64 + 0.5) * h;
                let y = -a + (j as f64 + 0.5) * h;
                if x * x + y * y <= a * a {
                    let d = ((robs - x) * (robs - x) + y * y).sqrt();
                    acc += hankel1_0(k * d) * (h * h);
                }
            }
        }
        let numeric = c64(0.0, 0.25) * acc;
        let closed = kern.g0_element(robs);
        assert!(
            (numeric - closed).abs() / closed.abs() < 1e-3,
            "{numeric:?} vs {closed:?}"
        );
    }

    #[test]
    fn incident_field_is_plain_green_function() {
        let kern = Kernel::new(2.0 * std::f64::consts::PI, 0.05);
        let v = kern.incident_line_source(1.0);
        let h = hankel1_0(2.0 * std::f64::consts::PI);
        assert!((v - c64(0.0, 0.25) * h).abs() < 1e-15);
    }
}
