//! Analytic scattering of a plane wave by a homogeneous dielectric circular
//! cylinder (the 2-D "Mie" series).
//!
//! This closed-form solution of the same Helmholtz problem the volume
//! integral equation discretizes is the physics oracle for the forward
//! solver: the total field computed by BiCGStab + (MLFMA or direct) `G0`
//! must converge to this series as the grid is refined.

use ffw_geometry::Point2;
use ffw_numerics::bessel::{hankel1_array, jn_array};
use ffw_numerics::C64;

/// Analytic solution for a unit-amplitude plane wave `e^{i k x}` scattering
/// off a dielectric cylinder of the given radius centered at the origin.
pub struct MieCylinder {
    k: f64,
    k1: f64,
    radius: f64,
    /// Scattered-field coefficients `b_n` (n >= 0).
    b: Vec<C64>,
    /// Internal-field coefficients `c_n` (n >= 0).
    c: Vec<C64>,
}

impl MieCylinder {
    /// Builds the series for background wavenumber `k` and permittivity
    /// contrast `delta_eps` (so `eps_r = 1 + delta_eps`, `k1 = k sqrt(eps_r)`).
    pub fn new(k: f64, radius: f64, delta_eps: f64) -> Self {
        assert!(k > 0.0 && radius > 0.0);
        assert!(delta_eps > -1.0, "need positive permittivity");
        let k1 = k * (1.0 + delta_eps).sqrt();
        let x0 = k * radius;
        let x1 = k1 * radius;
        // Truncation: excess-bandwidth style margin over kR.
        let nmax = (x0.max(x1) + 12.0 + 6.0 * x0.max(x1).powf(1.0 / 3.0)).ceil() as usize;

        let j_k = jn_array(nmax + 1, x0);
        let j_k1 = jn_array(nmax + 1, x1);
        let h_k = hankel1_array(nmax + 1, x0);

        // Z_n'(x) = Z_{n-1}(x) - (n/x) Z_n(x)
        let dj_k = |n: usize| -> f64 {
            if n == 0 {
                -j_k[1]
            } else {
                j_k[n - 1] - n as f64 / x0 * j_k[n]
            }
        };
        let dj_k1 = |n: usize| -> f64 {
            if n == 0 {
                -j_k1[1]
            } else {
                j_k1[n - 1] - n as f64 / x1 * j_k1[n]
            }
        };
        let dh_k = |n: usize| -> C64 {
            if n == 0 {
                -h_k[1]
            } else {
                h_k[n - 1] - h_k[n] * (n as f64 / x0)
            }
        };

        let mut b = Vec::with_capacity(nmax + 1);
        let mut c = Vec::with_capacity(nmax + 1);
        for n in 0..=nmax {
            let a_n = C64::i_pow(n as i64);
            // Continuity of the field and its radial derivative at r = R:
            //   a J_n(kR) + b H_n(kR) = c J_n(k1 R)
            //   a k J_n'(kR) + b k H_n'(kR) = c k1 J_n'(k1 R)
            let num = (a_n * (k1 * dj_k1(n) * j_k[n] - k * dj_k(n) * j_k1[n])).scale(1.0);
            let den = h_k[n] * (k1 * dj_k1(n)) - dh_k(n) * (k * j_k1[n]);
            // b_n = a_n (k J' J - k1 J1' J) / (k1 J1' H - k H' J1)  [sign folded below]
            let b_n = -num / den;
            let c_n = if j_k1[n].abs() > 1e-290 {
                (a_n * j_k[n] + b_n * h_k[n]) / C64::from_real(j_k1[n])
            } else {
                C64::ZERO
            };
            b.push(b_n);
            c.push(c_n);
        }
        MieCylinder {
            k,
            k1,
            radius,
            b,
            c,
        }
    }

    /// Total field at a point (incident + scattered outside; transmitted
    /// inside).
    pub fn total_field(&self, p: Point2) -> C64 {
        let r = p.norm();
        let phi = p.angle();
        let nmax = self.b.len() - 1;
        if r < self.radius {
            let j = jn_array(nmax, self.k1 * r);
            let mut acc = self.c[0] * j[0];
            for (n, &jn) in j.iter().enumerate().skip(1) {
                acc += self.c[n] * jn * (2.0 * (n as f64 * phi).cos());
            }
            acc
        } else {
            let j = jn_array(nmax, self.k * r);
            let h = hankel1_array(nmax, self.k * r);
            let mut acc = C64::i_pow(0) * j[0] + self.b[0] * h[0];
            for n in 1..=nmax {
                let term = C64::i_pow(n as i64) * j[n] + self.b[n] * h[n];
                acc += term * (2.0 * (n as f64 * phi).cos());
            }
            acc
        }
    }

    /// Scattered field at an exterior point.
    pub fn scattered_field(&self, p: Point2) -> C64 {
        let r = p.norm();
        assert!(r >= self.radius);
        let phi = p.angle();
        let nmax = self.b.len() - 1;
        let h = hankel1_array(nmax, self.k * r);
        let mut acc = self.b[0] * h[0];
        for (n, &hn) in h.iter().enumerate().skip(1) {
            acc += self.b[n] * hn * (2.0 * (n as f64 * phi).cos());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::pt;

    #[test]
    fn zero_contrast_scatters_nothing() {
        let k = 2.0 * std::f64::consts::PI;
        let mie = MieCylinder::new(k, 1.0, 0.0);
        for b in &mie.b {
            assert!(b.abs() < 1e-10, "b = {b:?}");
        }
        // Total field equals the incident plane wave everywhere.
        for &p in &[pt(0.3, 0.1), pt(1.5, -0.7), pt(0.0, 0.0)] {
            let expect = C64::cis(k * p.x);
            assert!((mie.total_field(p) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn field_continuous_across_boundary() {
        let k = 2.0 * std::f64::consts::PI;
        let mie = MieCylinder::new(k, 0.8, 0.3);
        for ang in [0.0f64, 0.9, 2.2, -1.3] {
            let inside = mie.total_field(pt(0.7999 * ang.cos(), 0.7999 * ang.sin()));
            let outside = mie.total_field(pt(0.8001 * ang.cos(), 0.8001 * ang.sin()));
            assert!(
                (inside - outside).abs() < 1e-2 * inside.abs().max(1.0),
                "angle {ang}: {inside:?} vs {outside:?}"
            );
        }
    }

    #[test]
    fn energy_conservation_optical_theorem() {
        // For a lossless scatterer the optical theorem holds:
        // sum_n eps_n |b_n|^2 = -Re sum_n eps_n b_n a_n^*  (2-D form),
        // with eps_0 = 1, eps_n = 2 otherwise.
        let k = 2.0 * std::f64::consts::PI;
        let mie = MieCylinder::new(k, 0.6, 0.5);
        let mut lhs = 0.0;
        let mut rhs = 0.0;
        for (n, b) in mie.b.iter().enumerate() {
            let w = if n == 0 { 1.0 } else { 2.0 };
            let a = C64::i_pow(n as i64);
            lhs += w * b.norm_sqr();
            rhs -= w * (*b * a.conj()).re;
        }
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.max(1e-30),
            "optical theorem: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn scattered_plus_incident_equals_total_outside() {
        let k = 2.0 * std::f64::consts::PI;
        let mie = MieCylinder::new(k, 0.5, 0.2);
        let p = pt(1.3, 0.4);
        let total = mie.total_field(p);
        let sca = mie.scattered_field(p);
        let inc = C64::cis(k * p.x);
        assert!((total - (sca + inc)).abs() < 1e-10);
    }
}
