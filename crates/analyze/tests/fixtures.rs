//! Fixture corpus for the workspace-wide rules (R9–R12): for each rule a
//! violating, a waived, and a clean fixture, run through the full public
//! engine (`check_workspace`) the way CI runs it — so these also prove the
//! rules compose (e.g. a waiver suppresses its rule but then demands a
//! ledger entry from R12).

use ffw_analyze::{check_workspace, Diag, Workspace};

fn run(files: &[(&str, &str)], ledger: Option<&str>) -> Vec<Diag> {
    check_workspace(&Workspace::from_memory(files, ledger))
}

fn rule_count(diags: &[Diag], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

// ---- R9: atomic release/acquire pairing ---------------------------------

#[test]
fn r9_violating_fixture() {
    let publisher = "fn done(s: &S) { s.ready.store(true, Ordering::Release); }\n";
    let consumer = "fn poll(s: &S) -> bool { s.ready.load(Ordering::Relaxed) }\n";
    let diags = run(
        &[
            ("crates/a/src/lib.rs", publisher),
            ("crates/b/src/lib.rs", consumer),
        ],
        None,
    );
    assert_eq!(rule_count(&diags, "R9"), 1);
    let d = diags.iter().find(|d| d.rule == "R9").unwrap();
    assert_eq!(d.file, "crates/a/src/lib.rs");
    assert_eq!(d.code, "FFW009");
    assert!(d.message.contains("ready"));
}

#[test]
fn r9_waived_fixture_needs_ledger() {
    let publisher = "fn done(s: &S) {\n    // lint:atomic-ok — consumer lands in the next PR\n    s.ready.store(true, Ordering::Release);\n}\n";
    // Waiver alone silences R9 but trips R12 (unregistered)…
    let no_ledger = run(&[("crates/a/src/lib.rs", publisher)], None);
    assert_eq!(rule_count(&no_ledger, "R9"), 0);
    assert_eq!(rule_count(&no_ledger, "R12"), 1);
    // …and the ledger entry makes the whole workspace clean.
    let ledger = "- `crates/a/src/lib.rs` lint:atomic-ok — consumer lands in the next PR\n";
    assert!(run(&[("crates/a/src/lib.rs", publisher)], Some(ledger)).is_empty());
}

#[test]
fn r9_clean_fixture() {
    let publisher = "fn done(s: &S) { s.ready.store(true, Ordering::Release); }\n";
    let consumer = "fn wait(s: &S) { while !s.ready.load(Ordering::Acquire) {} }\n";
    let diags = run(
        &[
            ("crates/a/src/lib.rs", publisher),
            ("crates/b/src/lib.rs", consumer),
        ],
        None,
    );
    assert_eq!(rule_count(&diags, "R9"), 0);
}

// ---- R10: deterministic reductions --------------------------------------

#[test]
fn r10_violating_fixture() {
    let src = "fn merge(acc: &Mutex<f64>, part: f64) { *acc.lock() += part; }\n";
    let diags = run(&[("crates/mlfma/src/engine.rs", src)], None);
    assert_eq!(rule_count(&diags, "R10"), 1);
    assert_eq!(
        diags.iter().find(|d| d.rule == "R10").unwrap().code,
        "FFW010"
    );
}

#[test]
fn r10_waived_fixture() {
    let src = "fn merge(acc: &Mutex<u64>, part: u64) {\n    // lint:reduce-ok — integer counter, commutative-exact\n    *acc.lock() += part;\n}\n";
    let ledger =
        "- `crates/par/src/stats.rs` lint:reduce-ok — integer counter, commutative-exact\n";
    assert!(run(&[("crates/par/src/stats.rs", src)], Some(ledger)).is_empty());
}

#[test]
fn r10_clean_fixture() {
    // The blessed idiom: disjoint per-chunk slots, folded in chunk order.
    let src = "fn merge(slot: &Mutex<Option<f64>>, part: f64) { *slot.lock() = Some(part); }\n";
    assert!(run(&[("crates/par/src/lib.rs", src)], None).is_empty());
}

// ---- R11: tag protocol ---------------------------------------------------

const CHECK_SRC: (&str, &str) = (
    "crates/check/src/trace.rs",
    "const RESERVED_BIT: u32 = 0x8000_0000;\n",
);

#[test]
fn r11_violating_fixture() {
    let send_only =
        "const TAG_ORPHAN: u32 = 0x7;\nfn s(c: &C) { c.send_checked(1, TAG_ORPHAN, p)?; }\n";
    let diags = run(&[CHECK_SRC, ("crates/dist/src/proto.rs", send_only)], None);
    assert_eq!(rule_count(&diags, "R11"), 1);
    assert!(diags.iter().any(|d| d.message.contains("never received")));
}

#[test]
fn r11_waived_fixture() {
    let demo = "fn hang(c: &C) {\n    // lint:tag-ok — deliberate deadlock probe\n    let m = c.recv_checked(0, TAG_NOBODY)?;\n}\n";
    let ledger = "- `crates/dist/src/probe.rs` lint:tag-ok — deliberate deadlock probe\n";
    assert!(run(
        &[CHECK_SRC, ("crates/dist/src/probe.rs", demo)],
        Some(ledger)
    )
    .is_empty());
}

#[test]
fn r11_clean_fixture() {
    let a = "const TAG_HALO: u32 = 0x100;\nfn s(c: &C) { c.send_checked(1, TAG_HALO, p)?; }\n";
    let b = "fn r(c: &C) { let m = c.recv_checked(0, TAG_HALO)?; }\n";
    assert!(run(
        &[
            CHECK_SRC,
            ("crates/dist/src/a.rs", a),
            ("crates/dist/src/b.rs", b)
        ],
        None
    )
    .is_empty());
}

#[test]
fn r11_reserved_bit_fixture() {
    let bad = "const TAG_BAD: u32 = 0x8000_0001;\nfn s(c: &C) { c.send_checked(1, TAG_BAD, p)?; }\nfn r(c: &C) { let m = c.recv_checked(0, TAG_BAD)?; }\n";
    let diags = run(&[CHECK_SRC, ("crates/dist/src/proto.rs", bad)], None);
    assert_eq!(rule_count(&diags, "R11"), 1);
    assert!(diags
        .iter()
        .any(|d| d.message.contains("reserved collective bit")));
}

// ---- R12: waiver ledger --------------------------------------------------

#[test]
fn r12_violating_fixture_unregistered() {
    let src = "fn f(g0: &G) {\n    // lint:single-rhs-ok — scalar stage\n    g0.apply(x, y);\n}\n";
    let diags = run(
        &[("crates/inverse/src/dbim.rs", src)],
        Some("# empty ledger\n"),
    );
    assert_eq!(rule_count(&diags, "R12"), 1);
    assert_eq!(
        diags.iter().find(|d| d.rule == "R12").unwrap().code,
        "FFW012"
    );
}

#[test]
fn r12_violating_fixture_stale() {
    let ledger = "- `crates/inverse/src/dbim.rs` lint:single-rhs-ok — long gone\n";
    let diags = run(
        &[("crates/inverse/src/dbim.rs", "fn f() {}\n")],
        Some(ledger),
    );
    assert_eq!(rule_count(&diags, "R12"), 1);
    assert!(diags
        .iter()
        .any(|d| d.file == "WAIVERS.md" && d.message.contains("stale")));
}

#[test]
fn r12_clean_fixture_roundtrip() {
    let src = "fn f(g0: &G) {\n    // lint:single-rhs-ok — scalar stage\n    g0.apply(x, y);\n}\n";
    let ledger =
        "# Waivers\n\n- `crates/inverse/src/dbim.rs` lint:single-rhs-ok — scalar stage of the block driver\n";
    assert!(run(&[("crates/inverse/src/dbim.rs", src)], Some(ledger)).is_empty());
}

// ---- Report plumbing -----------------------------------------------------

#[test]
fn json_report_carries_spans_and_codes() {
    let publisher = "fn done(s: &S) { s.ready.store(true, Ordering::Release); }\n";
    let diags = run(&[("crates/a/src/lib.rs", publisher)], None);
    let report = ffw_analyze::json::report(&diags, 1);
    assert!(report.contains("\"schema\": \"ffw-analyze/1\""));
    assert!(report.contains("\"code\": \"FFW009\""));
    assert!(report.contains("\"file\": \"crates/a/src/lib.rs\""));
}
