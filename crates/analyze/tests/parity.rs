//! Verdict parity with the retired textual lint engine.
//!
//! Every fixture the old `xtask` unit tests asserted on is replayed here
//! through the token-level engine, with the same expected verdict. R1–R8
//! changed implementation, not meaning — this file is the contract that the
//! port is behavior-preserving (plus a few cases at the end where the old
//! masking heuristics were wrong and the lexer is deliberately stricter).

use ffw_analyze::{check_workspace, Diag, Workspace};

/// Runs the full engine over in-memory files and keeps one rule's verdicts.
fn diags_for(files: &[(&str, &str)], ledger: Option<&str>, rule: &str) -> Vec<Diag> {
    let ws = Workspace::from_memory(files, ledger);
    check_workspace(&ws)
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect()
}

fn count(path: &str, src: &str, rule: &str) -> usize {
    diags_for(&[(path, src)], None, rule).len()
}

// ---- R1: SAFETY comments ------------------------------------------------

#[test]
fn r1_safety_comment_directly_above_passes() {
    assert_eq!(
        count(
            "f.rs",
            "// SAFETY: justified\nunsafe impl Send for X {}\n",
            "R1"
        ),
        0
    );
}

#[test]
fn r1_safety_comment_through_doc_block_passes() {
    let src = "/// Does things.\n///\n/// SAFETY contract: caller ensures X.\nunsafe fn f() {}\n";
    assert_eq!(count("f.rs", src, "R1"), 0);
}

#[test]
fn r1_missing_safety_comment_fails() {
    let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
    let diags = diags_for(&[("f.rs", src)], None, "R1");
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].file.as_str(), diags[0].line), ("f.rs", 2));
}

#[test]
fn r1_nearby_safety_with_intervening_code_passes() {
    let src = "// SAFETY: chunks are disjoint\nlet ptr = base.add(off);\nlet s = unsafe { from_raw_parts_mut(ptr, n) };\n";
    assert_eq!(count("f.rs", src, "R1"), 0);
}

// ---- R2: deny(unsafe_op_in_unsafe_fn) -----------------------------------

#[test]
fn r2_unsafe_crate_without_deny_attr_fails() {
    assert_eq!(count("crates/x/src/lib.rs", "unsafe fn f() {}\n", "R2"), 1);
    let fixed = "#![deny(unsafe_op_in_unsafe_fn)]\nunsafe fn f() {}\n";
    assert_eq!(count("crates/x/src/lib.rs", fixed, "R2"), 0);
}

// ---- R3: guarded-atomic orderings ---------------------------------------

#[test]
fn r3_relaxed_on_guarded_atomic_fails() {
    assert_eq!(
        count(
            "f.rs",
            "self.chunks_done.fetch_add(1, Ordering::Relaxed);\n",
            "R3"
        ),
        1
    );
    assert_eq!(
        count(
            "f.rs",
            "self.dispenser.fetch_add(1, Ordering::Relaxed);\n",
            "R3"
        ),
        0
    );
    let waived =
        "// lint:relaxed-ok — diagnostic counter only\nself.panicked.load(Ordering::Relaxed);\n";
    assert_eq!(count("f.rs", waived, "R3"), 0);
}

// ---- R4: thread::spawn confinement --------------------------------------

#[test]
fn r4_spawn_outside_substrate_fails() {
    let src = "std::thread::spawn(|| {});\n";
    assert_eq!(count("crates/dist/src/engine.rs", src, "R4"), 1);
    assert_eq!(count("crates/par/src/lib.rs", src, "R4"), 0);
    assert_eq!(count("crates/dist/tests/t.rs", src, "R4"), 0);
    let test_only =
        "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
    assert_eq!(count("crates/dist/src/engine.rs", test_only, "R4"), 0);
}

// ---- R5: unwrap on the fault path ---------------------------------------

#[test]
fn r5_unwrap_on_fault_path_fails() {
    let src = "let v = rx.recv().unwrap();\n";
    assert_eq!(count("crates/dist/src/solver.rs", src, "R5"), 1);
    assert_eq!(count("crates/mpi/src/lib.rs", src, "R5"), 1);
    assert_eq!(count("crates/solver/src/krylov.rs", src, "R5"), 0);
    assert_eq!(count("crates/dist/tests/t.rs", src, "R5"), 0);
    let explicit = "let v = rx.recv().unwrap_or_else(|e| panic!(\"bug: {e}\"));\n";
    assert_eq!(count("crates/dist/src/solver.rs", explicit, "R5"), 0);
    let waived = "let v = rx.recv().unwrap(); // lint:unwrap-ok — startup only\n";
    assert_eq!(count("crates/dist/src/solver.rs", waived, "R5"), 0);
    let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
    assert_eq!(count("crates/dist/src/solver.rs", test_only, "R5"), 0);
}

// ---- R6: Instant outside ffw-obs ----------------------------------------

#[test]
fn r6_instant_outside_obs_fails() {
    let src = "use std::time::Instant;\nlet t0 = Instant::now();\n";
    assert_eq!(count("crates/bench/src/bin/fig13.rs", src, "R6"), 2);
    assert_eq!(count("crates/obs/src/clock.rs", src, "R6"), 0);
    assert_eq!(count("crates/solver/tests/t.rs", src, "R6"), 0);
    let waived = "use std::time::Instant; // lint:instant-ok — calibration\n";
    assert_eq!(count("crates/perf/src/lib.rs", waived, "R6"), 0);
    let test_only =
        "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let _ = Instant::now(); }\n}\n";
    assert_eq!(count("crates/perf/src/lib.rs", test_only, "R6"), 0);
    let masked = "println!(\"Instant\"); let reinstant_x = 1;\n";
    assert_eq!(count("crates/perf/src/lib.rs", masked, "R6"), 0);
}

// ---- R7: unchecked communication in ffw-dist ----------------------------

#[test]
fn r7_unchecked_comm_in_dist_fails() {
    let src = "comm.send(1, TAG, payload);\nlet v = comm.recv(0, TAG);\n";
    assert_eq!(count("crates/dist/src/ft.rs", src, "R7"), 2);
    let checked = "comm.send_checked(1, TAG, payload)?;\nlet v = comm.recv_checked(0, TAG)?;\nlet (p, lane) = comm.recv_checked_laned(0, TAG)?;\nlet m = comm.try_recv(0, TAG);\n";
    assert_eq!(count("crates/dist/src/ft.rs", checked, "R7"), 0);
    assert_eq!(count("crates/mpi/src/lib.rs", src, "R7"), 0);
    let waived = "comm.send(1, TAG, payload); // lint:unchecked-ok — demo path\n";
    assert_eq!(count("crates/dist/src/ft.rs", waived, "R7"), 0);
    let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { comm.send(1, 0, p); }\n}\n";
    assert_eq!(count("crates/dist/src/ft.rs", test_only, "R7"), 0);
    let in_string = "panic!(\"call .send( correctly\");\n";
    assert_eq!(count("crates/dist/src/ft.rs", in_string, "R7"), 0);
}

// ---- R8: single-RHS applies on the hot path -----------------------------

#[test]
fn r8_single_rhs_apply_on_hot_path_fails() {
    let src = "g0.apply(&w, &mut g0w);\n";
    assert_eq!(count("crates/inverse/src/dbim.rs", src, "R8"), 1);
    assert_eq!(count("crates/dist/src/ft.rs", src, "R8"), 1);
    let try_form = "self.g0.try_apply(&ox, y_local)?;\n";
    assert_eq!(count("crates/dist/src/solver.rs", try_form, "R8"), 1);
    let block = "g0.apply_block(&refs, &mut ys);\ng0.try_apply_block(&refs, &mut ys)?;\n";
    assert_eq!(count("crates/inverse/src/dbim.rs", block, "R8"), 0);
    assert_eq!(count("crates/solver/src/forward.rs", src, "R8"), 0);
    assert_eq!(count("crates/inverse/tests/t.rs", src, "R8"), 0);
    let waived = "g0.apply(&w, &mut g0w); // lint:single-rhs-ok scalar path\n";
    assert_eq!(count("crates/inverse/src/dbim.rs", waived, "R8"), 0);
    let waived_above = "// lint:single-rhs-ok scalar building block\nself.g0.try_apply(&ox, y)?;\n";
    assert_eq!(count("crates/dist/src/solver.rs", waived_above, "R8"), 0);
    let test_only =
        "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { g0.apply(&x, &mut y); }\n}\n";
    assert_eq!(count("crates/inverse/src/dbim.rs", test_only, "R8"), 0);
    let in_string = "panic!(\"g0.apply( failed\");\n";
    assert_eq!(count("crates/inverse/src/dbim.rs", in_string, "R8"), 0);
}

// ---- Where the old engine was wrong -------------------------------------
// These are deliberate verdict *changes*: the textual masker could be fooled
// by multi-line strings and by test modules that are not the file's tail.

#[test]
fn tokens_fix_multiline_string_false_positive() {
    // A multi-line string spanning a `.send(` used to look like code to the
    // per-line masker.
    let src = "let help = \"first line\ncomm.send(1, TAG, p) is wrong\nlast\";\n";
    assert_eq!(count("crates/dist/src/ft.rs", src, "R7"), 0);
}

#[test]
fn tokens_fix_tail_heuristic_false_negative() {
    // Code *after* a #[cfg(test)] module used to be exempt (the old engine
    // assumed test modules were always the file tail). It is live code.
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live() { std::thread::spawn(|| {}); }\n";
    assert_eq!(count("crates/dist/src/engine.rs", src, "R4"), 1);
}
