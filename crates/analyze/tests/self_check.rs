//! The gate must be green on the tree it ships in: running every rule over
//! this very workspace yields zero diagnostics. This is the committed proof
//! behind CI's `ffw-analyze -- check` step — if a change introduces a
//! violation (or orphans a ledger entry), this test fails locally before CI
//! does.

use std::path::PathBuf;

#[test]
fn workspace_is_clean_under_all_rules() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf();
    let (diags, files_scanned) = ffw_analyze::analyze_root(&root).expect("workspace readable");
    assert!(
        files_scanned > 100,
        "walker found only {files_scanned} files — member discovery is broken"
    );
    assert!(
        diags.is_empty(),
        "lint violations on HEAD:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
