//! R12: the waiver ledger.
//!
//! Waivers (`// lint:…-ok`) are deliberate, reviewed exceptions — but an
//! exception nobody can enumerate is indistinguishable from rot. R12 makes
//! the set of live waivers a first-class, diffable artifact:
//!
//! * every waiver comment in non-test code must have a matching entry in
//!   the root `WAIVERS.md` ledger (keyed by file path + tag) **with a
//!   non-empty justification**;
//! * every ledger entry must still correspond to at least one live waiver —
//!   a stale entry fails the build, so removing the last waiver in a file
//!   forces the ledger line to be retired with it;
//! * waiver tags must come from the rule catalog — a typo like
//!   `lint:unwarp-ok` silently suppresses nothing, so it is an error.
//!
//! Ledger entries are markdown bullets:
//!
//! ```text
//! - `crates/inverse/src/dbim.rs` lint:single-rhs-ok — scalar Born stage is genuinely single-RHS
//! ```
//!
//! Only *plain* comments register waivers (doc comments are documentation,
//! not suppression), and only on non-test lines — test code is already
//! exempt from the rules that accept waivers.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{rule_info, Diag, RULES};
use crate::workspace::Workspace;

/// All waiver tags recognized by the rule catalog.
pub fn known_waiver_tags() -> Vec<&'static str> {
    RULES
        .iter()
        .map(|r| r.waiver)
        .filter(|w| !w.is_empty())
        .collect()
}

/// One waiver occurrence in source code.
struct WaiverSite {
    file: String,
    line: u32,
    tag: String,
}

/// One parsed ledger entry.
struct LedgerEntry {
    line: u32,
    path: String,
    tag: String,
    justification: String,
}

/// Extracts every `lint:<word>` tag from a comment line.
fn tags_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("lint:") {
        let after = &rest[pos + 5..];
        let end = after
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '-' && c != '_')
            .unwrap_or(after.len());
        if end > 0 {
            out.push(format!("lint:{}", &after[..end]));
        }
        rest = &after[end..];
    }
    out
}

/// Parses `WAIVERS.md` bullets into entries; malformed bullets that clearly
/// try to be entries (contain `lint:`) are reported.
fn parse_ledger(ledger: &str, out: &mut Vec<Diag>) -> Vec<LedgerEntry> {
    let info = rule_info("R12");
    let mut entries = Vec::new();
    for (li, raw) in ledger.lines().enumerate() {
        let line = (li + 1) as u32;
        let trimmed = raw.trim_start();
        if !trimmed.starts_with("- ") || !trimmed.contains("lint:") {
            continue;
        }
        // Path: first backtick-quoted span.
        let path = trimmed
            .split('`')
            .nth(1)
            .map(str::to_string)
            .unwrap_or_default();
        let tag = tags_in(trimmed).into_iter().next().unwrap_or_default();
        if path.is_empty() || tag.is_empty() {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: "WAIVERS.md".into(),
                line,
                col: 1,
                message: "malformed ledger entry — expected \
                          `- `path` lint:tag — justification`"
                    .into(),
            });
            continue;
        }
        // Justification: everything after the tag, minus separator dashes.
        let after_tag = trimmed.split_once(&tag).map(|(_, rest)| rest).unwrap_or("");
        let justification = after_tag
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        entries.push(LedgerEntry {
            line,
            path,
            tag,
            justification,
        });
    }
    entries
}

/// R12 over the whole workspace.
pub fn r12_waiver_ledger(ws: &Workspace, out: &mut Vec<Diag>) {
    let info = rule_info("R12");
    let known: BTreeSet<&str> = known_waiver_tags().into_iter().collect();

    // 1. Collect live waivers from non-test plain comments.
    let mut live: Vec<WaiverSite> = Vec::new();
    for f in &ws.files {
        for (li, text) in f.index.plain_comments.iter().enumerate() {
            if text.is_empty() || f.is_test_line(li) {
                continue;
            }
            for tag in tags_in(text) {
                live.push(WaiverSite {
                    file: f.rel_path.clone(),
                    line: (li + 1) as u32,
                    tag,
                });
            }
        }
    }

    // 2. Parse the ledger.
    let entries = match &ws.ledger {
        Some(text) => parse_ledger(text, out),
        None => Vec::new(),
    };
    let mut registered: BTreeMap<(String, String), &LedgerEntry> = BTreeMap::new();
    for e in &entries {
        if !known.contains(e.tag.as_str()) {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: "WAIVERS.md".into(),
                line: e.line,
                col: 1,
                message: format!(
                    "ledger entry uses unknown waiver tag `{}` — known tags: {}",
                    e.tag,
                    known.iter().copied().collect::<Vec<_>>().join(", ")
                ),
            });
            continue;
        }
        if e.justification.is_empty() {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: "WAIVERS.md".into(),
                line: e.line,
                col: 1,
                message: format!(
                    "ledger entry for `{}` ({}) has no justification — a waiver without a \
                     recorded reason cannot be reviewed",
                    e.path, e.tag
                ),
            });
        }
        registered.insert((e.path.clone(), e.tag.clone()), e);
    }

    // 3. Every live waiver must use a known tag and be registered.
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for w in &live {
        if !known.contains(w.tag.as_str()) {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: w.file.clone(),
                line: w.line,
                col: 1,
                message: format!(
                    "unknown waiver tag `{}` — it suppresses nothing; known tags: {}",
                    w.tag,
                    known.iter().copied().collect::<Vec<_>>().join(", ")
                ),
            });
            continue;
        }
        let key = (w.file.clone(), w.tag.clone());
        if registered.contains_key(&key) {
            used.insert(key);
        } else {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: w.file.clone(),
                line: w.line,
                col: 1,
                message: format!(
                    "waiver `{}` is not registered in WAIVERS.md — add \
                     `- `{}` {} — <justification>` to the ledger",
                    w.tag, w.file, w.tag
                ),
            });
        }
    }

    // 4. Every registered entry must still be live.
    for (key, e) in &registered {
        if !used.contains(key) {
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: "WAIVERS.md".into(),
                line: e.line,
                col: 1,
                message: format!(
                    "stale ledger entry — `{}` no longer contains a `{}` waiver; retire this \
                     line",
                    e.path, e.tag
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn run(files: &[(&str, &str)], ledger: Option<&str>) -> Vec<Diag> {
        let ws = Workspace::from_memory(files, ledger);
        let mut out = Vec::new();
        r12_waiver_ledger(&ws, &mut out);
        out
    }

    const SRC: &str =
        "fn stage(g0: &G) {\n    // lint:single-rhs-ok — scalar Born stage\n    g0.apply(x);\n}\n";

    #[test]
    fn registered_waiver_is_clean() {
        let ledger =
            "# Waivers\n\n- `crates/inverse/src/dbim.rs` lint:single-rhs-ok — scalar Born stage is genuinely single-RHS\n";
        assert!(run(&[("crates/inverse/src/dbim.rs", SRC)], Some(ledger)).is_empty());
    }

    #[test]
    fn unregistered_waiver_fires() {
        let diags = run(&[("crates/inverse/src/dbim.rs", SRC)], Some("# Waivers\n"));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not registered"));
        assert_eq!(diags[0].file, "crates/inverse/src/dbim.rs");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn missing_ledger_counts_as_unregistered() {
        let diags = run(&[("crates/inverse/src/dbim.rs", SRC)], None);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn stale_entry_fires_at_the_ledger_line() {
        let ledger = "- `crates/inverse/src/dbim.rs` lint:single-rhs-ok — retired code\n";
        let diags = run(
            &[("crates/inverse/src/dbim.rs", "fn f() {}\n")],
            Some(ledger),
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("stale"));
        assert_eq!(diags[0].file, "WAIVERS.md");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn empty_justification_fires() {
        let ledger = "- `crates/inverse/src/dbim.rs` lint:single-rhs-ok\n";
        let diags = run(&[("crates/inverse/src/dbim.rs", SRC)], Some(ledger));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no justification"));
    }

    #[test]
    fn unknown_tag_in_code_fires() {
        let src = "// lint:unwarp-ok — typo\nfn f() {}\n";
        let diags = run(&[("crates/dist/src/a.rs", src)], None);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown waiver tag"));
    }

    #[test]
    fn unknown_tag_in_ledger_fires() {
        let ledger = "- `crates/dist/src/a.rs` lint:unwarp-ok — typo\n";
        let diags = run(&[("crates/dist/src/a.rs", "fn f() {}\n")], Some(ledger));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown waiver tag"));
    }

    #[test]
    fn doc_comments_and_strings_do_not_need_registration() {
        let src = "//! Mentions lint:unwrap-ok in docs.\nfn f() { let s = \"lint:spawn-ok\"; }\n";
        assert!(run(&[("crates/dist/src/a.rs", src)], None).is_empty());
    }

    #[test]
    fn test_code_waivers_need_no_registration() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    // lint:unwrap-ok — test only\n    fn t() {}\n}\n";
        assert!(run(&[("crates/dist/src/a.rs", src)], None).is_empty());
    }

    #[test]
    fn one_entry_covers_many_sites_in_a_file() {
        let src = "fn a(g0: &G) {\n    // lint:single-rhs-ok — one\n    g0.apply(x);\n}\nfn b(g0: &G) {\n    // lint:single-rhs-ok — two\n    g0.apply(y);\n}\n";
        let ledger =
            "- `crates/dist/src/a.rs` lint:single-rhs-ok — both call sites are warm-start probes\n";
        assert!(run(&[("crates/dist/src/a.rs", src)], Some(ledger)).is_empty());
    }

    #[test]
    fn malformed_entry_fires() {
        let ledger = "- lint:single-rhs-ok missing path backticks\n";
        let diags = run(&[], Some(ledger));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("malformed"));
    }

    #[test]
    fn known_tags_cover_the_catalog() {
        let tags = known_waiver_tags();
        assert!(tags.contains(&"lint:single-rhs-ok"));
        assert!(tags.contains(&"lint:atomic-ok"));
        assert!(tags.contains(&"lint:tag-ok"));
        assert!(tags.contains(&"lint:backend-ok"));
        assert_eq!(tags.len(), 10);
    }
}
