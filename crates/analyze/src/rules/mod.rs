//! Rule dispatch: runs every rule over a [`Workspace`] and returns the
//! sorted diagnostic list.

mod atomics;
mod local;
mod reduce;
mod tags;
mod waivers;

use crate::diag::{sort_diags, Diag};
use crate::workspace::Workspace;

pub use waivers::known_waiver_tags;

/// Runs all rules (R1–R13) over the workspace.
pub fn check_workspace(ws: &Workspace) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in &ws.files {
        local::r1_safety_comments(f, &mut diags);
        local::r3_relaxed_orderings(f, &mut diags);
        local::r4_thread_spawn(f, &mut diags);
        local::r5_unwrap_on_fault_path(f, &mut diags);
        local::r6_instant_outside_obs(f, &mut diags);
        local::r7_unchecked_comm(f, &mut diags);
        local::r8_single_rhs_apply(f, &mut diags);
        local::r13_backend_seam(f, &mut diags);
    }
    local::r2_unsafe_fn_attr(ws, &mut diags);
    atomics::r9_atomic_pairing(ws, &mut diags);
    reduce::r10_reduction_discipline(ws, &mut diags);
    tags::r11_tag_protocol(ws, &mut diags);
    waivers::r12_waiver_ledger(ws, &mut diags);
    sort_diags(&mut diags);
    diags
}
