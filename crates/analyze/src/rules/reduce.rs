//! R10: deterministic-reduction discipline on the hot paths.
//!
//! The PR-5 thread-invariance guarantee (bit-identical output at any
//! `FFW_THREADS`) holds because every floating-point reduction in the
//! compute crates is either chunk-ordered (`Pool::map_reduce` folds
//! partials in chunk order) or writes disjoint slots. The idiom that
//! silently breaks it is the first-come-first-served merge: workers taking
//! a lock and accumulating into a shared accumulator (`*acc.lock() += x`),
//! whose result depends on which thread arrives first — float addition is
//! not associative, so the answer changes with scheduling.
//!
//! Two token patterns are flagged in `crates/par`, `crates/mlfma` and
//! `crates/dist` non-test code:
//!
//! 1. a `.lock()` call followed in the same statement by a compound
//!    accumulation (`+=`, `-=`, `*=`) or an `add_assign` call;
//! 2. a `fetch_add`/`fetch_update` whose arguments go through `to_bits`
//!    (the float-as-bits atomic accumulator idiom).
//!
//! Waive a justified use (e.g. an accumulator that is provably
//! commutative-exact, like integer counters behind a float-typed API) with
//! `// lint:reduce-ok`.

use crate::diag::{rule_info, Diag};
use crate::rules::local::code_tokens;
use crate::workspace::Workspace;

const HOT_PATHS: [&str; 3] = ["crates/par/src/", "crates/mlfma/src/", "crates/dist/src/"];
const COMPOUND_OPS: [&str; 3] = ["+=", "-=", "*="];

/// R10 over the whole workspace.
pub fn r10_reduction_discipline(ws: &Workspace, out: &mut Vec<Diag>) {
    let info = rule_info("R10");
    for f in &ws.files {
        if !HOT_PATHS.iter().any(|p| f.rel_path.starts_with(p)) {
            continue;
        }
        let code = code_tokens(f);
        let mut i = 0;
        while i + 3 < code.len() {
            // Pattern 1: `.lock()` … (same statement) … `+=` / `add_assign`.
            if code[i].is_punct(".")
                && code[i + 1].is_ident("lock")
                && code[i + 2].is_punct("(")
                && code[i + 3].is_punct(")")
            {
                let mut j = i + 4;
                while j < code.len() {
                    let t = code[j];
                    if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                        break;
                    }
                    let compound = COMPOUND_OPS.iter().any(|op| t.is_punct(op));
                    let add_assign =
                        t.is_punct(".") && j + 1 < code.len() && code[j + 1].is_ident("add_assign");
                    if compound || add_assign {
                        let li = (t.line as usize) - 1;
                        if !f.is_test_line(li) && !f.index.waived(li, "lint:reduce-ok") {
                            out.push(Diag {
                                code: info.code,
                                rule: info.rule,
                                file: f.rel_path.clone(),
                                line: t.line,
                                col: t.col,
                                message: "accumulation into a lock-guarded shared accumulator — \
                                          merge order depends on thread scheduling, breaking the \
                                          thread-invariance guarantee; use `Pool::map_reduce` \
                                          (chunk-ordered fold) or disjoint slots, or waive with \
                                          `// lint:reduce-ok`"
                                    .into(),
                            });
                        }
                        break;
                    }
                    j += 1;
                }
            }
            // Pattern 2: `fetch_add(…to_bits…)` — float accumulation through
            // an integer atomic.
            if code[i].is_punct(".")
                && (code[i + 1].is_ident("fetch_add") || code[i + 1].is_ident("fetch_update"))
                && code[i + 2].is_punct("(")
            {
                let mut depth = 0usize;
                let mut j = i + 2;
                while j < code.len() {
                    if code[j].is_punct("(") {
                        depth += 1;
                    } else if code[j].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if code[j].is_ident("to_bits") {
                        let t = code[i + 1];
                        let li = (t.line as usize) - 1;
                        if !f.is_test_line(li) && !f.index.waived(li, "lint:reduce-ok") {
                            out.push(Diag {
                                code: info.code,
                                rule: info.rule,
                                file: f.rel_path.clone(),
                                line: t.line,
                                col: t.col,
                                message: "float accumulation through an integer atomic \
                                          (`to_bits` inside `fetch_add`) — accumulation order \
                                          depends on thread scheduling; use a chunk-ordered \
                                          reduction, or waive with `// lint:reduce-ok`"
                                    .into(),
                            });
                        }
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn run(path: &str, src: &str) -> Vec<Diag> {
        let ws = Workspace::from_memory(&[(path, src)], None);
        let mut out = Vec::new();
        r10_reduction_discipline(&ws, &mut out);
        out
    }

    #[test]
    fn lock_then_compound_assign_fires() {
        let src = "fn merge(acc: &Mutex<f64>, x: f64) { *acc.lock() += x; }\n";
        let diags = run("crates/mlfma/src/engine.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("thread-invariance"));
    }

    #[test]
    fn lock_without_accumulation_is_fine() {
        let src = "fn set(slot: &Mutex<Option<f64>>, x: f64) { *slot.lock() = Some(x); }\n";
        assert!(run("crates/par/src/lib.rs", src).is_empty());
    }

    #[test]
    fn accumulation_without_lock_is_fine() {
        let src = "fn f(acc: &mut f64, x: f64) { *acc += x; }\n";
        assert!(run("crates/mlfma/src/engine.rs", src).is_empty());
    }

    #[test]
    fn statement_boundary_ends_the_window() {
        let src =
            "fn f(m: &Mutex<V>) { let g = m.lock(); drop(g); }\nfn g(a: &mut f64) { *a += 1.0; }\n";
        assert!(run("crates/dist/src/engine.rs", src).is_empty());
    }

    #[test]
    fn float_bits_fetch_add_fires() {
        let src =
            "fn acc(a: &AtomicU64, v: f64) { a.fetch_add(v.to_bits(), Ordering::Relaxed); }\n";
        assert_eq!(run("crates/mlfma/src/engine.rs", src).len(), 1);
    }

    #[test]
    fn out_of_scope_crate_is_ignored() {
        let src = "fn merge(acc: &Mutex<f64>, x: f64) { *acc.lock() += x; }\n";
        assert!(run("crates/obs/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let src = "// lint:reduce-ok — integer-exact accumulation\nfn merge(acc: &Mutex<u64>, x: u64) { *acc.lock() += x; }\n";
        assert!(run("crates/par/src/lib.rs", src).is_empty());
    }
}
