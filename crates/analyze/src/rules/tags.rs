//! R11: static message-tag protocol extraction.
//!
//! The PR-1 trace validator proves at *runtime* that no message leaks and
//! no reserved tag is used — but only on the schedules a test happens to
//! run. R11 is the compile-time complement: it collects every
//! `send*`/`recv*` call's tag expression across the workspace `src` trees
//! and checks the protocol shape statically:
//!
//! * every tag (keyed by the `TAG_*` constant it references, or its literal
//!   value) must have at least one send site **and** one receive site —
//!   a tag with only one side is a protocol hole that deadlocks or leaks;
//! * no tag constant or literal tag may set the reserved collective bit
//!   (read from `ffw-check`'s `RESERVED_BIT` declaration, so the two layers
//!   can never drift apart);
//! * two different `TAG_*` constants must not share a value (a silent
//!   cross-protocol collision the mailbox cannot detect).
//!
//! Channel endpoints are excluded by arity: mailbox sends carry
//! `(dst, tag, payload)` and receives `(src, tag)`, while channel
//! `send(v)`/`recv()` have no tag position. Calls whose tag expression is
//! symbolic (a plain parameter like `tag`) are generic forwarders and are
//! skipped. Waive an intentionally one-sided call (e.g. a deliberate
//! deadlock demo) with `// lint:tag-ok`.

use std::collections::BTreeMap;

use crate::diag::{rule_info, Diag};
use crate::lexer::{Tok, TokKind};
use crate::rules::local::code_tokens;
use crate::workspace::{SourceFile, Workspace};

const SEND_METHODS: [&str; 3] = ["send", "send_checked", "send_checked_laned"];
const RECV_METHODS: [&str; 4] = ["recv", "recv_checked", "recv_checked_laned", "try_recv"];

/// Fallback when `ffw-check` is absent (fixture workspaces).
const DEFAULT_RESERVED_BIT: u64 = 0x8000_0000;

struct CallSite {
    file: String,
    line: u32,
    col: u32,
    waived: bool,
}

#[derive(Default)]
struct TagUse {
    sends: Vec<CallSite>,
    recvs: Vec<CallSite>,
}

struct ConstDecl {
    value: u64,
    file: String,
    line: u32,
    col: u32,
}

/// Splits the argument tokens of the call whose `(` is at `code[open]`
/// into top-level comma-separated slices. Returns `None` when the call is
/// unterminated.
fn call_args<'t>(code: &[&'t Tok], open: usize) -> Option<Vec<Vec<&'t Tok>>> {
    let mut depth = 0usize;
    let mut args: Vec<Vec<&Tok>> = vec![Vec::new()];
    for t in &code[open..] {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if depth == 0 {
                return None;
            }
            depth -= 1;
            if depth == 0 {
                if args.last().is_some_and(Vec::is_empty) {
                    args.pop();
                }
                return Some(args);
            }
        } else if depth == 1 && t.is_punct(",") {
            args.push(Vec::new());
            continue;
        }
        if depth >= 1 {
            args.last_mut().expect("non-empty").push(t);
        }
    }
    None
}

/// Canonical key of a tag expression: the `TAG_*` constant it references,
/// or `literal:N` for a bare integer, or `None` for symbolic expressions.
fn tag_key(expr: &[&Tok]) -> Option<String> {
    for t in expr {
        if t.kind == TokKind::Ident && t.text.starts_with("TAG_") {
            return Some(t.text.clone());
        }
    }
    if expr.len() == 1 {
        if let TokKind::Int(Some(v)) = expr[0].kind {
            return Some(format!("literal:{v}"));
        }
    }
    None
}

/// Reads `const RESERVED_BIT: u32 = …;` out of the `ffw-check` sources.
fn reserved_bit(ws: &Workspace) -> u64 {
    for f in &ws.files {
        if !f.rel_path.starts_with("crates/check/") {
            continue;
        }
        if let Some((_, v)) = const_decls(f)
            .into_iter()
            .find(|(n, _)| n == "RESERVED_BIT")
        {
            return v.value;
        }
    }
    DEFAULT_RESERVED_BIT
}

/// Extracts `const NAME: … = <int>;` declarations from a file.
fn const_decls(f: &SourceFile) -> Vec<(String, ConstDecl)> {
    let code = code_tokens(f);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("const") || i + 2 >= code.len() {
            continue;
        }
        let name_tok = code[i + 1];
        if name_tok.kind != TokKind::Ident || !code[i + 2].is_punct(":") {
            continue;
        }
        // Scan to the `=`, then require an integer literal and `;`.
        let mut j = i + 3;
        while j < code.len() && !code[j].is_punct("=") && !code[j].is_punct(";") {
            j += 1;
        }
        if j + 2 < code.len() && code[j].is_punct("=") && code[j + 2].is_punct(";") {
            if let TokKind::Int(Some(v)) = code[j + 1].kind {
                out.push((
                    name_tok.text.clone(),
                    ConstDecl {
                        value: v,
                        file: f.rel_path.clone(),
                        line: name_tok.line,
                        col: name_tok.col,
                    },
                ));
            }
        }
    }
    out
}

/// R11 over the whole workspace.
pub fn r11_tag_protocol(ws: &Workspace, out: &mut Vec<Diag>) {
    let info = rule_info("R11");
    let reserved = reserved_bit(ws);
    let mut uses: BTreeMap<String, TagUse> = BTreeMap::new();
    let mut tag_consts: BTreeMap<String, ConstDecl> = BTreeMap::new();

    for f in &ws.files {
        if f.member_dir != "crates" || !f.in_src() {
            continue;
        }
        // Tag constant declarations (reserved bit + collisions).
        for (name, decl) in const_decls(f) {
            if !name.starts_with("TAG_") {
                continue;
            }
            if decl.value & reserved != 0 {
                out.push(Diag {
                    code: info.code,
                    rule: info.rule,
                    file: decl.file.clone(),
                    line: decl.line,
                    col: decl.col,
                    message: format!(
                        "tag constant `{name}` = {:#x} sets the reserved collective bit \
                         ({reserved:#x}, from ffw-check) — user tags must stay below it",
                        decl.value
                    ),
                });
            }
            if let Some(prev) = tag_consts.get(&name) {
                // Same name re-declared (e.g. in a sibling module) with the
                // same value is the same protocol; different values drift.
                if prev.value != decl.value {
                    out.push(Diag {
                        code: info.code,
                        rule: info.rule,
                        file: decl.file.clone(),
                        line: decl.line,
                        col: decl.col,
                        message: format!(
                            "tag constant `{name}` re-declared with value {:#x}, but {} \
                             declares it as {:#x} — the two protocols have drifted",
                            decl.value, prev.file, prev.value
                        ),
                    });
                }
            } else {
                for (other, od) in &tag_consts {
                    if od.value == decl.value {
                        out.push(Diag {
                            code: info.code,
                            rule: info.rule,
                            file: decl.file.clone(),
                            line: decl.line,
                            col: decl.col,
                            message: format!(
                                "tag constant `{name}` = {:#x} collides with `{other}` \
                                 ({}) — distinct protocols must use distinct tag values",
                                decl.value, od.file
                            ),
                        });
                    }
                }
                tag_consts.insert(name, decl);
            }
        }
        // Call sites.
        let code = code_tokens(f);
        for i in 0..code.len() {
            if !code[i].is_punct(".") || i + 2 >= code.len() || !code[i + 2].is_punct("(") {
                continue;
            }
            let m = &code[i + 1];
            let is_send = SEND_METHODS.iter().any(|s| m.is_ident(s));
            let is_recv = RECV_METHODS.iter().any(|s| m.is_ident(s));
            if !is_send && !is_recv {
                continue;
            }
            let li = (m.line as usize) - 1;
            if f.is_test_line(li) {
                continue;
            }
            let Some(args) = call_args(&code, i + 2) else {
                continue;
            };
            // Arity separates mailbox calls from channel endpoints.
            if (is_send && args.len() < 3) || (is_recv && args.len() < 2) {
                continue;
            }
            let Some(key) = tag_key(&args[1]) else {
                continue;
            };
            // Literal tags get the reserved-bit check at the call site.
            if let Some(v) = key
                .strip_prefix("literal:")
                .and_then(|s| s.parse::<u64>().ok())
            {
                if v & reserved != 0 {
                    out.push(Diag {
                        code: info.code,
                        rule: info.rule,
                        file: f.rel_path.clone(),
                        line: m.line,
                        col: m.col,
                        message: format!(
                            "literal tag {v:#x} sets the reserved collective bit \
                             ({reserved:#x}, from ffw-check)"
                        ),
                    });
                }
            }
            let site = CallSite {
                file: f.rel_path.clone(),
                line: m.line,
                col: m.col,
                waived: f.index.waived(li, "lint:tag-ok"),
            };
            let entry = uses.entry(key).or_default();
            if is_send {
                entry.sends.push(site);
            } else {
                entry.recvs.push(site);
            }
        }
    }

    // Pairing: every tag needs both a sender and a receiver.
    for (key, u) in uses {
        let pretty = key
            .strip_prefix("literal:")
            .map_or(key.clone(), |v| format!("tag {v}"));
        if u.sends.is_empty() {
            for s in u.recvs.iter().filter(|s| !s.waived) {
                out.push(Diag {
                    code: info.code,
                    rule: info.rule,
                    file: s.file.clone(),
                    line: s.line,
                    col: s.col,
                    message: format!(
                        "`{pretty}` is received here but never sent anywhere in the \
                         workspace — a receive with no sender deadlocks; add the send side \
                         or waive with `// lint:tag-ok`"
                    ),
                });
            }
        } else if u.recvs.is_empty() {
            for s in u.sends.iter().filter(|s| !s.waived) {
                out.push(Diag {
                    code: info.code,
                    rule: info.rule,
                    file: s.file.clone(),
                    line: s.line,
                    col: s.col,
                    message: format!(
                        "`{pretty}` is sent here but never received anywhere in the \
                         workspace — an unreceived send is a guaranteed message leak; add \
                         the receive side or waive with `// lint:tag-ok`"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Diag> {
        let ws = Workspace::from_memory(files, None);
        let mut out = Vec::new();
        r11_tag_protocol(&ws, &mut out);
        out
    }

    const CHECK: (&str, &str) = (
        "crates/check/src/trace.rs",
        "const RESERVED_BIT: u32 = 0x8000_0000;\n",
    );

    #[test]
    fn paired_tag_across_files_is_clean() {
        let a = "const TAG_HALO: u32 = 0x100;\nfn s(c: &C) { c.send_checked(1, TAG_HALO, p)?; }\n";
        let b = "fn r(c: &C) { let m = c.recv_checked(0, TAG_HALO)?; }\n";
        assert!(run(&[CHECK, ("crates/d/src/a.rs", a), ("crates/d/src/b.rs", b)]).is_empty());
    }

    #[test]
    fn send_without_recv_fires() {
        let a = "const TAG_X: u32 = 0x7;\nfn s(c: &C) { c.send_checked(1, TAG_X, p)?; }\n";
        let diags = run(&[CHECK, ("crates/d/src/a.rs", a)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("never received"));
    }

    #[test]
    fn recv_without_send_fires() {
        let a = "fn r(c: &C) { let m = c.recv_checked(0, TAG_GHOST)?; }\n";
        let diags = run(&[CHECK, ("crates/d/src/a.rs", a)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("never sent"));
    }

    #[test]
    fn reserved_bit_comes_from_ffw_check() {
        // A stricter reserved mask in ffw-check must propagate.
        let check = (
            "crates/check/src/trace.rs",
            "const RESERVED_BIT: u32 = 0x100;\n",
        );
        let a = "const TAG_HALO: u32 = 0x100;\nfn s(c: &C) { c.send_checked(1, TAG_HALO, p)?; }\nfn r(c: &C) { let m = c.recv_checked(0, TAG_HALO)?; }\n";
        let diags = run(&[check, ("crates/d/src/a.rs", a)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("reserved collective bit"));
    }

    #[test]
    fn value_collision_between_distinct_names_fires() {
        let a = "const TAG_A: u32 = 0x100;\nconst TAG_B: u32 = 0x100;\nfn s(c: &C) { c.send_checked(1, TAG_A, p)?; c.send_checked(1, TAG_B, q)?; }\nfn r(c: &C) { c.recv_checked(0, TAG_A)?; c.recv_checked(0, TAG_B)?; }\n";
        let diags = run(&[CHECK, ("crates/d/src/a.rs", a)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("collides"));
    }

    #[test]
    fn channel_endpoints_are_excluded_by_arity() {
        let a = "fn f(tx: &Sender<J>, rx: &Receiver<J>) { tx.send(job); let j = rx.recv(); let t = rx.try_recv(); }\n";
        assert!(run(&[CHECK, ("crates/par/src/a.rs", a)]).is_empty());
    }

    #[test]
    fn symbolic_forwarders_are_skipped() {
        let a = "fn fwd(c: &C, tag: u32) { c.send_checked(1, tag, p)?; }\n";
        assert!(run(&[CHECK, ("crates/mpi/src/a.rs", a)]).is_empty());
    }

    #[test]
    fn derived_tag_expressions_key_on_the_constant() {
        let a = "const TAG_LVL: u32 = 0x110;\nfn s(c: &C, li: usize) { c.send_checked(1, TAG_LVL + li as u32, p)?; }\nfn r(c: &C, li: usize) { c.recv_checked(0, TAG_LVL + li as u32)?; }\n";
        assert!(run(&[CHECK, ("crates/d/src/a.rs", a)]).is_empty());
    }

    #[test]
    fn literal_tags_pair_and_check_reserved() {
        let ok = "fn f(c: &C) { c.send(1, 7, p); c.recv(0, 7); }\n";
        assert!(run(&[CHECK, ("crates/m/src/a.rs", ok)]).is_empty());
        let bad = "fn f(c: &C) { c.send(1, 0x8000_0001, p); c.recv(0, 0x8000_0001); }\n";
        let diags = run(&[CHECK, ("crates/m/src/a.rs", bad)]);
        assert_eq!(diags.len(), 2, "reserved literal flagged at both sites");
    }

    #[test]
    fn waiver_suppresses_one_sided_tag() {
        let a = "fn demo(c: &C) {\n    // deliberate deadlock demo: lint:tag-ok\n    let m = c.recv_checked(0, TAG_NEVER)?;\n}\n";
        assert!(run(&[CHECK, ("crates/d/src/a.rs", a)]).is_empty());
    }

    #[test]
    fn examples_and_tests_are_out_of_scope() {
        let a = "fn demo(c: &C) { let m = c.recv(0, 7); }\n";
        assert!(run(&[CHECK, ("crates/mpi/examples/demo.rs", a)]).is_empty());
        assert!(run(&[CHECK, ("crates/mpi/tests/t.rs", a)]).is_empty());
    }
}
