//! R1–R8: the original `xtask` lint rules, re-implemented on the token
//! stream. Verdicts are identical on all the old engine's fixtures; the
//! difference is that string interiors, char literals and nested block
//! comments can no longer produce false positives (or mask true
//! positives), and `#[cfg(test)]` exemption is brace-matched instead of
//! assuming the test module is the file's tail.

use crate::diag::{rule_info, Diag};
use crate::lexer::Tok;
use crate::workspace::{SourceFile, Workspace};

/// Atomics implementing the completion/panic protocol (R3).
const GUARDED_ATOMICS: [&str; 2] = ["chunks_done", "panicked"];

/// Receiver names the workspace uses for the MLFMA operator (R8).
const SINGLE_RHS_RECEIVERS: [&str; 3] = ["g0", "engine", "eng"];

fn diag(rule: &'static str, f: &SourceFile, line: u32, col: u32, message: String) -> Diag {
    let info = rule_info(rule);
    Diag {
        code: info.code,
        rule: info.rule,
        file: f.rel_path.clone(),
        line,
        col,
        message,
    }
}

/// Non-comment tokens of a file.
pub(crate) fn code_tokens(f: &SourceFile) -> Vec<&Tok> {
    f.tokens.iter().filter(|t| !t.is_comment()).collect()
}

/// R1: every line introducing `unsafe` is covered by a SAFETY comment —
/// in the contiguous comment/attribute block above, or within the three
/// preceding lines for mid-function blocks with intervening setup code.
pub fn r1_safety_comments(f: &SourceFile, out: &mut Vec<Diag>) {
    let mut seen_lines = Vec::new();
    for t in &f.tokens {
        if t.is_ident("unsafe") {
            let li = (t.line as usize) - 1;
            if seen_lines.last() != Some(&li) {
                seen_lines.push(li);
            }
        }
    }
    for li in seen_lines {
        let mut covered = false;
        let mut j = li;
        while j > 0 && f.index.is_comment_or_attr(j - 1) {
            j -= 1;
            if f.index.comments[j].contains("SAFETY") {
                covered = true;
                break;
            }
        }
        if !covered {
            covered = (li.saturating_sub(3)..li).any(|k| f.index.comments[k].contains("SAFETY"));
        }
        if !covered {
            out.push(diag(
                "R1",
                f,
                li as u32 + 1,
                1,
                "`unsafe` without a `// SAFETY:` comment above it".into(),
            ));
        }
    }
}

/// R2: any crate containing `unsafe` must carry
/// `#![deny(unsafe_op_in_unsafe_fn)]` on its root. Unlike the old
/// single-file check, this aggregates over the whole crate, so `unsafe` in
/// a non-root module also triggers the requirement.
pub fn r2_unsafe_fn_attr(ws: &Workspace, out: &mut Vec<Diag>) {
    use std::collections::BTreeMap;
    // crate key = first two path segments (`crates/par`), or one for
    // single-segment members (`xtask`).
    let crate_key = |path: &str| -> String {
        let segs: Vec<&str> = path.split('/').collect();
        if segs.len() >= 3 && (segs[0] == "crates" || segs[0] == "third_party") {
            format!("{}/{}", segs[0], segs[1])
        } else {
            segs[0].to_string()
        }
    };
    let mut unsafe_site: BTreeMap<String, (&SourceFile, u32)> = BTreeMap::new();
    let mut root_ok: BTreeMap<String, bool> = BTreeMap::new();
    for f in &ws.files {
        let key = crate_key(&f.rel_path);
        if let Some(t) = f.tokens.iter().find(|t| t.is_ident("unsafe")) {
            unsafe_site.entry(key.clone()).or_insert((f, t.line));
        }
        let is_root = f.rel_path.ends_with("src/lib.rs") || f.rel_path.ends_with("src/main.rs");
        if is_root {
            let has_attr = has_deny_attr(&f.tokens);
            let e = root_ok.entry(key).or_insert(false);
            *e = *e || has_attr;
        }
    }
    for (key, (f, line)) in unsafe_site {
        if !root_ok.get(&key).copied().unwrap_or(false) {
            out.push(diag(
                "R2",
                f,
                line,
                1,
                format!(
                    "crate `{key}` contains `unsafe` but its root is missing \
                     #![deny(unsafe_op_in_unsafe_fn)]"
                ),
            ));
        }
    }
}

fn has_deny_attr(tokens: &[Tok]) -> bool {
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    code.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("deny")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_op_in_unsafe_fn")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}

/// R3: no `Ordering::Relaxed` on the completion/panic-flag atomics.
pub fn r3_relaxed_orderings(f: &SourceFile, out: &mut Vec<Diag>) {
    let mut lines_with_relaxed = std::collections::BTreeSet::new();
    for t in &f.tokens {
        if t.is_ident("Relaxed") {
            lines_with_relaxed.insert((t.line as usize) - 1);
        }
    }
    for li in lines_with_relaxed {
        let guarded = f
            .tokens
            .iter()
            .any(|t| (t.line as usize) - 1 == li && GUARDED_ATOMICS.iter().any(|a| t.is_ident(a)));
        if guarded && !f.index.waived(li, "lint:relaxed-ok") {
            out.push(diag(
                "R3",
                f,
                li as u32 + 1,
                1,
                "Ordering::Relaxed on a completion/panic-flag atomic (needs acquire/release; \
                 waive with `// lint:relaxed-ok` if justified)"
                    .into(),
            ));
        }
    }
}

/// R4: `thread::spawn` only inside the substrate crates.
pub fn r4_thread_spawn(f: &SourceFile, out: &mut Vec<Diag>) {
    if f.member_dir != "crates"
        || f.rel_path.starts_with("crates/par/")
        || f.rel_path.starts_with("crates/mpi/")
        || f.is_test_file
    {
        return;
    }
    let code = code_tokens(f);
    for w in code.windows(3) {
        if w[0].is_ident("thread") && w[1].is_punct("::") && w[2].is_ident("spawn") {
            let li = (w[0].line as usize) - 1;
            if !f.is_test_line(li) && !f.index.waived(li, "lint:spawn-ok") {
                out.push(diag(
                    "R4",
                    f,
                    w[0].line,
                    w[0].col,
                    "direct thread::spawn outside ffw-par/ffw-mpi — route concurrency through \
                     the substrate crates so the checkers see it; waive with `// lint:spawn-ok`"
                        .into(),
                ));
            }
        }
    }
}

/// R5: no `.unwrap()` in the fault-tolerant crates' non-test code.
pub fn r5_unwrap_on_fault_path(f: &SourceFile, out: &mut Vec<Diag>) {
    if !(f.rel_path.starts_with("crates/dist/src/") || f.rel_path.starts_with("crates/mpi/src/")) {
        return;
    }
    let code = code_tokens(f);
    for w in code.windows(3) {
        if w[0].is_punct(".") && w[1].is_ident("unwrap") && w[2].is_punct("(") {
            let li = (w[1].line as usize) - 1;
            if !f.is_test_line(li) && !f.index.waived(li, "lint:unwrap-ok") {
                out.push(diag(
                    "R5",
                    f,
                    w[1].line,
                    w[1].col,
                    "`.unwrap()` on the fault-tolerant path — propagate a typed FaultError (`?`) \
                     or make the panic explicit with `unwrap_or_else`/`expect`; waive with \
                     `// lint:unwrap-ok`"
                        .into(),
                ));
            }
        }
    }
}

/// R6: `std::time::Instant` only inside `crates/obs/`.
pub fn r6_instant_outside_obs(f: &SourceFile, out: &mut Vec<Diag>) {
    if f.member_dir != "crates" || f.rel_path.starts_with("crates/obs/") || f.is_test_file {
        return;
    }
    for t in &f.tokens {
        if t.is_ident("Instant") {
            let li = (t.line as usize) - 1;
            if !f.is_test_line(li) && !f.index.waived(li, "lint:instant-ok") {
                out.push(diag(
                    "R6",
                    f,
                    t.line,
                    t.col,
                    "`std::time::Instant` outside ffw-obs — use `ffw_obs::Stopwatch`/\
                     `monotonic_ns` so timing goes through the observability layer; waive with \
                     `// lint:instant-ok`"
                        .into(),
                ));
            }
        }
    }
}

/// R7: no raw `.send(` / `.recv(` in `crates/dist/src` non-test code.
pub fn r7_unchecked_comm(f: &SourceFile, out: &mut Vec<Diag>) {
    if !f.rel_path.starts_with("crates/dist/src/") {
        return;
    }
    let code = code_tokens(f);
    for w in code.windows(3) {
        if w[0].is_punct(".")
            && (w[1].is_ident("send") || w[1].is_ident("recv"))
            && w[2].is_punct("(")
        {
            let li = (w[1].line as usize) - 1;
            if !f.is_test_line(li) && !f.index.waived(li, "lint:unchecked-ok") {
                out.push(diag(
                    "R7",
                    f,
                    w[1].line,
                    w[1].col,
                    "raw `.send(`/`.recv(` in ffw-dist — use `send_checked`/`recv_checked` (or \
                     the `_laned` ABFT variants) so faults propagate as typed errors; waive with \
                     `// lint:unchecked-ok`"
                        .into(),
                ));
            }
        }
    }
}

/// R8: no single-RHS Green's operator applies on the inversion hot path.
pub fn r8_single_rhs_apply(f: &SourceFile, out: &mut Vec<Diag>) {
    if !(f.rel_path.starts_with("crates/inverse/src/")
        || f.rel_path.starts_with("crates/dist/src/"))
    {
        return;
    }
    let code = code_tokens(f);
    for w in code.windows(4) {
        let recv_ok = SINGLE_RHS_RECEIVERS.iter().any(|r| w[0].is_ident(r));
        if recv_ok
            && w[1].is_punct(".")
            && (w[2].is_ident("apply") || w[2].is_ident("try_apply"))
            && w[3].is_punct("(")
        {
            let li = (w[2].line as usize) - 1;
            if !f.is_test_line(li) && !f.index.waived(li, "lint:single-rhs-ok") {
                out.push(diag(
                    "R8",
                    f,
                    w[2].line,
                    w[2].col,
                    "single-RHS Green's operator apply on the inversion hot path — batch through \
                     `apply_block`/`try_apply_block` (or the block solvers) so traversals and \
                     messages are fused; waive a scalar building block with \
                     `// lint:single-rhs-ok`"
                        .into(),
                ));
            }
        }
    }
}

/// R13: no code outside `crates/solver/` names BiCGStab to perform a solve.
///
/// The forward-solver choice is config ([`BackendChoice`] through the
/// `ForwardBackend` trait), not a code path: a caller that invokes a
/// `*bicgstab*` function directly has hard-wired one engine and silently
/// bypasses `--backend`. Definitions and re-exports stay legal (the token
/// before the identifier being `fn`, or no `(` after it); only *call sites*
/// are flagged. Krylov implementation internals that legitimately live
/// outside the solver crate (the distributed solvers) are waived with
/// `// lint:backend-ok`.
pub fn r13_backend_seam(f: &SourceFile, out: &mut Vec<Diag>) {
    if f.member_dir != "crates" || f.rel_path.starts_with("crates/solver/") || f.is_test_file {
        return;
    }
    let code = code_tokens(f);
    for i in 0..code.len() {
        let t = code[i];
        if !(t.kind == crate::lexer::TokKind::Ident && t.text.to_lowercase().contains("bicgstab")) {
            continue;
        }
        // call site = identifier immediately followed by `(`…
        let is_call = code.get(i + 1).is_some_and(|n| n.is_punct("("));
        // …that is not the name in a `fn` definition.
        let is_def = i > 0 && code[i - 1].is_ident("fn");
        if !is_call || is_def {
            continue;
        }
        let li = (t.line as usize) - 1;
        if !f.is_test_line(li) && !f.index.waived(li, "lint:backend-ok") {
            out.push(diag(
                "R13",
                f,
                t.line,
                t.col,
                format!(
                    "direct `{}` call outside crates/solver — forward solves go through the \
                     `ForwardBackend` trait (`make_backend`) so `--backend` covers them; waive a \
                     solver-internal building block with `// lint:backend-ok`",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(path: &str, src: &str, rule: fn(&SourceFile, &mut Vec<Diag>)) -> Vec<Diag> {
        let f = SourceFile::new(path, src);
        let mut out = Vec::new();
        rule(&f, &mut out);
        out
    }

    #[test]
    fn r1_string_containing_unsafe_is_ignored() {
        // The textual engine's masking heuristic would also pass this, but
        // only the lexer survives a multi-line string.
        let src = "let s = \"multi\nunsafe in a string\nline\";\n";
        assert!(run_one("f.rs", src, r1_safety_comments).is_empty());
    }

    #[test]
    fn r1_one_diag_per_line_even_with_two_unsafe_tokens() {
        let src = "fn f() { unsafe { g() }; unsafe { h() } }\n";
        assert_eq!(run_one("f.rs", src, r1_safety_comments).len(), 1);
    }

    #[test]
    fn r3_relaxed_in_raw_string_is_ignored() {
        let src = "let doc = r\"chunks_done uses Ordering::Relaxed\";\n";
        assert!(run_one("f.rs", src, r3_relaxed_orderings).is_empty());
    }

    #[test]
    fn r4_spawn_after_test_module_is_caught() {
        // The old tail-of-file heuristic would have exempted this.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live() { std::thread::spawn(|| {}); }\n";
        let diags = run_one("crates/dist/src/x.rs", src, r4_thread_spawn);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn r7_multiline_call_is_caught() {
        let src = "comm\n    .send(1, TAG, payload);\n";
        let diags = run_one("crates/dist/src/x.rs", src, r7_unchecked_comm);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }
}
