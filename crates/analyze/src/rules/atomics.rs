//! R9: cross-file atomic-ordering pairing.
//!
//! A `store(_, Release)` (or `SeqCst`) on a named atomic flag publishes
//! state; if no corresponding `load(Acquire)`-class read of the *same name*
//! exists anywhere in the workspace, the release fence is advertising a
//! protocol nobody consumes — which nearly always means the consumer reads
//! the flag `Relaxed` and the happens-before edge the store was written for
//! does not exist (exactly the class of bug that silently breaks the
//! bit-identical-resume and thread-invariance guarantees).
//!
//! Keying is by field/static *name* (`panicked`, `ENABLED`), matching the
//! workspace convention that a protocol flag has one name everywhere. The
//! pairing side accepts `load`, `swap`, `compare_exchange[_weak]`,
//! `fetch_*` with Acquire/AcqRel/SeqCst ordering, in non-test code of any
//! member crate.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{rule_info, Diag};
use crate::lexer::Tok;
use crate::rules::local::code_tokens;
use crate::workspace::Workspace;

const ORDERINGS: [&str; 5] = ["Relaxed", "Release", "Acquire", "AcqRel", "SeqCst"];

/// Read-modify-write methods that can carry acquire semantics.
const RMW_METHODS: [&str; 10] = [
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
];

struct StoreSite {
    file: String,
    line: u32,
    col: u32,
    ordering: String,
}

/// Extracts the flag name behind a `.method(` call at `code[dot]` (the
/// index of the `.`): the identifier before the dot, skipping one level of
/// `[index]` subscripts (`suspects[rank].store` → `suspects`).
fn receiver_name(code: &[&Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut i = dot - 1;
    if code[i].is_punct("]") {
        let mut depth = 0usize;
        loop {
            if code[i].is_punct("]") {
                depth += 1;
            } else if code[i].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
    if matches!(code[i].kind, crate::lexer::TokKind::Ident) {
        Some(code[i].text.clone())
    } else {
        None
    }
}

/// Collects the ordering identifiers inside the call whose `(` is at
/// `code[open]`, up to the matching `)`. Returns the last one (atomic APIs
/// put the ordering last; `compare_exchange` returns the success ordering
/// plus failure ordering — both are collected).
fn call_orderings(code: &[&Tok], open: usize) -> Vec<String> {
    let mut depth = 0usize;
    let mut found = Vec::new();
    for t in &code[open..] {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if ORDERINGS.iter().any(|o| t.is_ident(o)) {
            found.push(t.text.clone());
        }
    }
    found
}

/// R9 over the whole workspace.
pub fn r9_atomic_pairing(ws: &Workspace, out: &mut Vec<Diag>) {
    let info = rule_info("R9");
    let mut release_stores: BTreeMap<String, Vec<StoreSite>> = BTreeMap::new();
    let mut acquire_reads: BTreeSet<String> = BTreeSet::new();

    for f in &ws.files {
        if f.member_dir != "crates" {
            continue;
        }
        let code = code_tokens(f);
        for i in 0..code.len() {
            if !code[i].is_punct(".") || i + 2 >= code.len() || !code[i + 2].is_punct("(") {
                continue;
            }
            let m = &code[i + 1];
            let li = (m.line as usize) - 1;
            if f.is_test_line(li) {
                continue;
            }
            let Some(name) = receiver_name(&code, i) else {
                continue;
            };
            let ords = call_orderings(&code, i + 2);
            if m.is_ident("store") {
                if ords.iter().any(|o| o == "Release" || o == "SeqCst") {
                    release_stores.entry(name).or_default().push(StoreSite {
                        file: f.rel_path.clone(),
                        line: m.line,
                        col: m.col,
                        ordering: ords.last().cloned().unwrap_or_default(),
                    });
                }
            } else if m.is_ident("load") {
                if ords.iter().any(|o| o == "Acquire" || o == "SeqCst") {
                    acquire_reads.insert(name);
                }
            } else if RMW_METHODS.iter().any(|r| m.is_ident(r))
                && ords
                    .iter()
                    .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
            {
                acquire_reads.insert(name);
            }
        }
    }

    for (name, sites) in release_stores {
        if acquire_reads.contains(&name) {
            continue;
        }
        for s in sites {
            // Per-site waiver check needs the file's index back.
            let waived = ws
                .files
                .iter()
                .find(|f| f.rel_path == s.file)
                .is_some_and(|f| f.index.waived((s.line as usize) - 1, "lint:atomic-ok"));
            if waived {
                continue;
            }
            out.push(Diag {
                code: info.code,
                rule: info.rule,
                file: s.file.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "`{name}.store(_, Ordering::{})` has no matching acquire-class load of \
                     `{name}` anywhere in the workspace — the release fence publishes nothing; \
                     pair it with `load(Acquire)`/`SeqCst` (or an acquire RMW), or waive with \
                     `// lint:atomic-ok`",
                    s.ordering
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Diag> {
        let ws = Workspace::from_memory(files, None);
        let mut out = Vec::new();
        r9_atomic_pairing(&ws, &mut out);
        out
    }

    #[test]
    fn unpaired_release_store_fires_cross_file() {
        let a = "fn pub_side(f: &std::sync::atomic::AtomicBool) { f.flag.store(true, Ordering::Release); }\n";
        let b = "fn consumer(f: &F) { let _ = f.flag.load(Ordering::Relaxed); }\n";
        let diags = run(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("flag"));
    }

    #[test]
    fn acquire_load_in_another_file_pairs() {
        let a = "fn p(s: &S) { s.flag.store(true, Ordering::Release); }\n";
        let b = "fn c(s: &S) { while !s.flag.load(Ordering::Acquire) {} }\n";
        assert!(run(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]).is_empty());
    }

    #[test]
    fn seqcst_pairs_both_sides_and_subscripts_are_skipped() {
        let a = "fn p(s: &S, r: usize) { s.beats[r].store(1, Ordering::SeqCst); }\n";
        let b = "fn c(s: &S, r: usize) { let _ = s.beats[r].load(Ordering::SeqCst); }\n";
        assert!(run(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]).is_empty());
    }

    #[test]
    fn acquire_rmw_pairs() {
        let a = "fn p(s: &S) { s.done.store(true, Ordering::Release); }\n";
        let b = "fn c(s: &S) { let _ = s.done.swap(false, Ordering::AcqRel); }\n";
        assert!(run(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]).is_empty());
    }

    #[test]
    fn relaxed_store_needs_no_pairing() {
        let a = "fn p(s: &S) { s.counter.store(0, Ordering::Relaxed); }\n";
        assert!(run(&[("crates/a/src/lib.rs", a)]).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let a = "// lint:atomic-ok — single-threaded init, no consumer yet\ns.flag.store(true, Ordering::Release);\n";
        assert!(run(&[("crates/a/src/lib.rs", a)]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let a = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t(s: &S) { s.flag.store(true, Ordering::Release); }\n}\n";
        assert!(run(&[("crates/a/src/lib.rs", a)]).is_empty());
    }
}
