//! `ffw-analyze` CLI.
//!
//! ```text
//! ffw-analyze check [--root DIR] [--json PATH]   # exit 1 on any diagnostic
//! ffw-analyze rules                              # print the rule catalog
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ffw_analyze::{analyze_root, json, RULES};

fn usage() -> ExitCode {
    eprintln!("usage: ffw-analyze check [--root DIR] [--json PATH] | ffw-analyze rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for r in &RULES {
                let waiver = if r.waiver.is_empty() {
                    String::new()
                } else {
                    format!("  (waiver: // {})", r.waiver)
                };
                println!("{}/{:4} {}{}", r.code, r.rule, r.summary, waiver);
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root = PathBuf::from(".");
            let mut json_path: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--root" => match it.next() {
                        Some(v) => root = PathBuf::from(v),
                        None => return usage(),
                    },
                    "--json" => match it.next() {
                        Some(v) => json_path = Some(PathBuf::from(v)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            // When invoked via `cargo run` the cwd is the workspace root;
            // fall back to walking up to the directory holding Cargo.toml
            // with a [workspace] table if the default root has none.
            if root.as_os_str() == "." {
                let mut probe = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
                loop {
                    let manifest = probe.join("Cargo.toml");
                    if std::fs::read_to_string(&manifest).is_ok_and(|m| m.contains("[workspace]")) {
                        root = probe;
                        break;
                    }
                    if !probe.pop() {
                        break;
                    }
                }
            }
            let (diags, files_scanned) = match analyze_root(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "ffw-analyze: cannot read workspace at {}: {e}",
                        root.display()
                    );
                    return ExitCode::from(2);
                }
            };
            if let Some(p) = json_path {
                let report = json::report(&diags, files_scanned);
                if let Err(e) = std::fs::write(&p, report) {
                    eprintln!("ffw-analyze: cannot write {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
            for d in &diags {
                eprintln!("{}", d.render());
            }
            if diags.is_empty() {
                eprintln!(
                    "ffw-analyze: {files_scanned} files clean ({} rules)",
                    RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("ffw-analyze: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
