//! ffw-analyze — token-level static analyzer for the ffw workspace.
//!
//! The workspace's discipline rules (SAFETY comments, ordering hygiene,
//! checked communication, multi-RHS hot paths, …) started life as textual
//! lints inside `xtask`. This crate re-implements them on a real token
//! stream — a hand-written Rust lexer that understands strings, raw
//! strings, char literals and nested block comments — which removes the
//! masking false-positive class entirely, and adds the cross-file rules
//! that textual scanning could never express:
//!
//! | code  | rule | scope |
//! |-------|------|-------|
//! | FFW001 | R1  | SAFETY comment above every `unsafe` |
//! | FFW002 | R2  | `#![deny(unsafe_op_in_unsafe_fn)]` in unsafe crates |
//! | FFW003 | R3  | no `Relaxed` on completion/panic flags |
//! | FFW004 | R4  | `thread::spawn` confined to ffw-par/ffw-mpi |
//! | FFW005 | R5  | no `.unwrap()` on the fault-tolerant path |
//! | FFW006 | R6  | `Instant` only inside ffw-obs |
//! | FFW007 | R7  | checked communication only in ffw-dist |
//! | FFW008 | R8  | no single-RHS operator applies on the hot path |
//! | FFW009 | R9  | release stores need workspace-wide acquire loads |
//! | FFW010 | R10 | no scheduling-order-dependent float reductions |
//! | FFW011 | R11 | message tags: paired, reserved-bit-free, collision-free |
//! | FFW012 | R12 | waiver ledger: registered, justified, not stale |
//!
//! Diagnostics carry file/line/column spans and stable codes; `xtask lint`
//! is a thin wrapper over [`check_workspace`], and CI consumes the JSON
//! report (`ffw-analyze -- check --json report.json`).

pub mod diag;
pub mod index;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::{Diag, RuleInfo, RULES};
pub use rules::{check_workspace, known_waiver_tags};
pub use workspace::{SourceFile, Workspace};

use std::path::Path;

/// Walks the workspace at `root` and runs every rule. Returns the sorted
/// diagnostic list and the number of files scanned.
pub fn analyze_root(root: &Path) -> std::io::Result<(Vec<Diag>, usize)> {
    let ws = Workspace::from_root(root)?;
    let n = ws.files.len();
    Ok((check_workspace(&ws), n))
}
