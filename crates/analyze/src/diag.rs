//! Diagnostics and the stable rule catalog.
//!
//! Every rule has a stable machine code (`FFW001`…`FFW013`) that tooling
//! can match on, plus the historical `R`-number the workspace docs use.
//! Diagnostic ordering is deterministic: file, then line, then column, then
//! code — so reports diff cleanly across runs.

/// One diagnostic: a rule violation anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Stable machine code, e.g. `FFW003`.
    pub code: &'static str,
    /// Historical rule name, e.g. `R3`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (1 when the rule is line-granular).
    pub col: u32,
    /// Human-readable message, including the waiver hint where one exists.
    pub message: String,
}

impl Diag {
    /// Renders as `file:line:col: [CODE/RN] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}/{}] {}",
            self.file, self.line, self.col, self.code, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the canonical (file, line, col, code) order.
pub fn sort_diags(diags: &mut [Diag]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.code).cmp(&(b.file.as_str(), b.line, b.col, b.code))
    });
}

/// Catalog entry for one rule.
pub struct RuleInfo {
    /// Stable machine code.
    pub code: &'static str,
    /// Historical rule name.
    pub rule: &'static str,
    /// Waiver tag recognized in plain comments, empty if the rule has none.
    pub waiver: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalog, in rule order.
pub const RULES: [RuleInfo; 13] = [
    RuleInfo {
        code: "FFW001",
        rule: "R1",
        waiver: "",
        summary: "every `unsafe` introduction needs a SAFETY comment above it",
    },
    RuleInfo {
        code: "FFW002",
        rule: "R2",
        waiver: "",
        summary: "crates containing `unsafe` must #![deny(unsafe_op_in_unsafe_fn)] at the root",
    },
    RuleInfo {
        code: "FFW003",
        rule: "R3",
        waiver: "lint:relaxed-ok",
        summary: "no Ordering::Relaxed on completion/panic-flag atomics",
    },
    RuleInfo {
        code: "FFW004",
        rule: "R4",
        waiver: "lint:spawn-ok",
        summary: "thread::spawn confined to ffw-par/ffw-mpi",
    },
    RuleInfo {
        code: "FFW005",
        rule: "R5",
        waiver: "lint:unwrap-ok",
        summary: "no .unwrap() on the fault-tolerant path (ffw-dist/ffw-mpi src)",
    },
    RuleInfo {
        code: "FFW006",
        rule: "R6",
        waiver: "lint:instant-ok",
        summary: "std::time::Instant only inside ffw-obs",
    },
    RuleInfo {
        code: "FFW007",
        rule: "R7",
        waiver: "lint:unchecked-ok",
        summary: "no raw .send(/.recv( in ffw-dist src — use the checked paths",
    },
    RuleInfo {
        code: "FFW008",
        rule: "R8",
        waiver: "lint:single-rhs-ok",
        summary: "no single-RHS operator applies on the inversion hot path",
    },
    RuleInfo {
        code: "FFW009",
        rule: "R9",
        waiver: "lint:atomic-ok",
        summary: "every Release/SeqCst store on a named flag needs a matching acquire load \
                  somewhere in the workspace",
    },
    RuleInfo {
        code: "FFW010",
        rule: "R10",
        waiver: "lint:reduce-ok",
        summary: "no scheduling-order-dependent accumulation in hot-path crates",
    },
    RuleInfo {
        code: "FFW011",
        rule: "R11",
        waiver: "lint:tag-ok",
        summary: "every message tag has a sender and a receiver, and never the reserved bit",
    },
    RuleInfo {
        code: "FFW012",
        rule: "R12",
        waiver: "",
        summary: "every waiver is registered in WAIVERS.md and every ledger entry is live",
    },
    RuleInfo {
        code: "FFW013",
        rule: "R13",
        waiver: "lint:backend-ok",
        summary: "no direct BiCGStab call outside crates/solver — forward solves go through \
                  the ForwardBackend trait",
    },
];

/// Looks up a rule by its historical name.
pub fn rule_info(rule: &str) -> &'static RuleInfo {
    RULES
        .iter()
        .find(|r| r.rule == rule)
        .expect("unknown rule name")
}
