//! Workspace discovery and the analyzer's unit of work.
//!
//! The walker is driven by the root `Cargo.toml`'s `[workspace] members`
//! list (globs expanded), not a hard-coded directory list, so adding a new
//! member crate automatically brings it under analysis. Files can also be
//! supplied in memory, which is how the fixture corpus exercises every rule
//! without touching disk.

use std::path::{Path, PathBuf};

use crate::index::FileIndex;
use crate::lexer::{lex, Tok};

/// One analyzed source file: token stream plus the line-indexed view.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// First path segment: `crates`, `third_party`, `xtask`, ….
    pub member_dir: String,
    /// True for files under a `tests/` or `benches/` directory (whole-file
    /// test exemption; `#[cfg(test)]` regions are tracked per line).
    pub is_test_file: bool,
    /// Lexed tokens.
    pub tokens: Vec<Tok>,
    /// Line-indexed view.
    pub index: FileIndex,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn new(rel_path: &str, text: &str) -> SourceFile {
        let rel_path = rel_path.replace('\\', "/");
        let tokens = lex(text);
        let n_lines = text.lines().count().max(1);
        let index = FileIndex::build(&tokens, n_lines);
        let member_dir = rel_path.split('/').next().unwrap_or("").to_string();
        let is_test_file = rel_path.contains("/tests/")
            || rel_path.contains("/benches/")
            || rel_path.starts_with("tests/")
            || rel_path.starts_with("benches/");
        SourceFile {
            rel_path,
            member_dir,
            is_test_file,
            tokens,
            index,
        }
    }

    /// True when the 0-based line is test code: the file lives in a test
    /// tree, or the line is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, li: usize) -> bool {
        self.is_test_file || self.index.is_test.get(li).copied().unwrap_or(false)
    }

    /// True for files under a `src/` directory (the non-test compilation
    /// surface of a crate — excludes examples and benches).
    pub fn in_src(&self) -> bool {
        self.rel_path.contains("/src/")
    }
}

/// A whole workspace ready for analysis.
pub struct Workspace {
    /// Display root.
    pub root: PathBuf,
    /// All source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// `WAIVERS.md` content, if present.
    pub ledger: Option<String>,
}

impl Workspace {
    /// Walks the workspace at `root`, reading the member list from the root
    /// `Cargo.toml`.
    pub fn from_root(root: &Path) -> std::io::Result<Workspace> {
        let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
        let mut files = Vec::new();
        let mut members = workspace_members(&manifest);
        // The root manifest may also define a package (the `ffw` facade
        // re-export); its own source trees are members too.
        if manifest.lines().any(|l| l.trim() == "[package]") {
            for dir in ["src", "tests", "examples", "benches"] {
                if root.join(dir).is_dir() {
                    members.push(dir.to_string());
                }
            }
        }
        for member in members {
            for path in rust_files(&root.join(&member)) {
                let text = std::fs::read_to_string(&path)?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::new(&rel, &text));
            }
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let ledger = std::fs::read_to_string(root.join("WAIVERS.md")).ok();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            ledger,
        })
    }

    /// Builds a workspace from in-memory `(path, text)` pairs — the fixture
    /// corpus entry point.
    pub fn from_memory(files: &[(&str, &str)], ledger: Option<&str>) -> Workspace {
        let mut files: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::new(p, t)).collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: PathBuf::from("<memory>"),
            files,
            ledger: ledger.map(str::to_string),
        }
    }
}

/// Extracts the `members` array from the root manifest's `[workspace]`
/// table and expands one-level `*` globs against the filesystem-free parse
/// (the caller expands against disk). Returned entries are directory paths
/// relative to the root; glob entries keep their `*`.
fn manifest_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
            continue;
        }
        if !in_workspace {
            continue;
        }
        let rest = if let Some(r) = line.strip_prefix("members") {
            in_members = true;
            r.trim_start().trim_start_matches('=')
        } else if in_members {
            line
        } else {
            continue;
        };
        for part in rest.split(',') {
            let p = part
                .trim()
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .trim_matches('"');
            if !p.is_empty() {
                members.push(p.to_string());
            }
        }
        if rest.contains(']') {
            in_members = false;
        }
    }
    members
}

/// Expands the manifest's member globs against the filesystem.
fn workspace_members(manifest: &str) -> Vec<String> {
    // The expansion needs the root; the caller joins, so expansion happens
    // lazily in `from_root` via this closure-free two-step: entries with a
    // trailing `/*` are expanded there.
    manifest_members(manifest)
}

fn rust_files(member: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    // `crates/*`-style globs: expand the last segment.
    if member
        .file_name()
        .is_some_and(|n| n.to_string_lossy() == "*")
    {
        if let Some(parent) = member.parent() {
            if let Ok(entries) = std::fs::read_dir(parent) {
                let mut dirs: Vec<PathBuf> = entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.is_dir())
                    .collect();
                dirs.sort();
                for d in dirs {
                    out.extend(rust_files(&d));
                }
            }
        }
        return out;
    }
    let mut stack = vec![member.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_single_line() {
        let m = "[workspace]\nmembers = [\"crates/*\", \"third_party/*\", \"xtask\"]\n";
        assert_eq!(manifest_members(m), ["crates/*", "third_party/*", "xtask"]);
    }

    #[test]
    fn members_parse_multi_line() {
        let m = "[workspace]\nmembers = [\n  \"crates/*\", # comment\n  \"xtask\",\n]\nresolver = \"2\"\n";
        assert_eq!(manifest_members(m), ["crates/*", "xtask"]);
    }

    #[test]
    fn members_ignores_other_tables() {
        let m = "[package]\nname = \"x\"\n[workspace]\nmembers = [\"a\"]\n[dependencies]\nmembers = [\"nope\"]\n";
        assert_eq!(manifest_members(m), ["a"]);
    }

    #[test]
    fn source_file_classification() {
        let f = SourceFile::new("crates/dist/src/ft.rs", "fn x() {}\n");
        assert_eq!(f.member_dir, "crates");
        assert!(!f.is_test_file);
        assert!(f.in_src());
        let t = SourceFile::new("crates/dist/tests/chaos.rs", "fn x() {}\n");
        assert!(t.is_test_file);
        assert!(!t.in_src());
        let b = SourceFile::new("crates/bench/benches/substrate.rs", "fn x() {}\n");
        assert!(b.is_test_file);
        let e = SourceFile::new("crates/mpi/examples/demo.rs", "fn x() {}\n");
        assert!(!e.is_test_file);
        assert!(!e.in_src());
    }

    #[test]
    fn root_package_trees_classify() {
        // The root `ffw` facade package: `tests/` at the workspace root is
        // test code, `src/lib.rs` is not.
        assert!(SourceFile::new("tests/forward_physics.rs", "fn x() {}\n").is_test_file);
        assert!(!SourceFile::new("src/lib.rs", "fn x() {}\n").is_test_file);
    }
}
