//! Zero-dependency JSON report writer.
//!
//! The report schema is versioned (`"schema": "ffw-analyze/1"`) so CI
//! consumers can evolve independently of the tool. Output is deterministic:
//! diagnostics arrive pre-sorted and key order is fixed.

use crate::diag::{Diag, RULES};

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report: tool metadata, the rule catalog, and every
/// diagnostic with its span.
pub fn report(diags: &[Diag], files_scanned: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"ffw-analyze/1\",\n");
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"diagnostic_count\": {},\n", diags.len()));
    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"code\": \"{}\", \"rule\": \"{}\", \"waiver\": \"{}\", \"summary\": \"{}\"}}{}\n",
            r.code,
            r.rule,
            esc(r.waiver),
            esc(r.summary),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"code\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"message\": \"{}\"}}{}\n",
            d.code,
            d.rule,
            esc(&d.file),
            d.line,
            d.col,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_shape() {
        let diags = vec![Diag {
            code: "FFW003",
            rule: "R3",
            file: "crates/par/src/lib.rs".into(),
            line: 7,
            col: 9,
            message: "msg with \"quotes\"".into(),
        }];
        let r = report(&diags, 42);
        assert!(r.contains("\"schema\": \"ffw-analyze/1\""));
        assert!(r.contains("\"files_scanned\": 42"));
        assert!(r.contains("\"diagnostic_count\": 1"));
        assert!(r.contains("\"line\": 7"));
        assert!(r.contains("msg with \\\"quotes\\\""));
        // 13 catalog entries present.
        assert_eq!(r.matches("\"summary\"").count(), 13);
    }

    #[test]
    fn empty_report_is_valid() {
        let r = report(&[], 0);
        assert!(r.contains("\"diagnostics\": [\n  ]"));
    }
}
