//! Per-line view derived from the token stream.
//!
//! The original `xtask` lints were line-oriented, and most rule conditions
//! ("a `SAFETY` comment in the contiguous comment block above", "waiver on
//! the same or previous line") are genuinely properties of *lines*. The
//! index reconstructs that view from the lexer's tokens, which removes the
//! whole `mask_code` false-positive class: string interiors (including
//! multi-line and raw strings), char literals and nested block comments can
//! never leak into the masked code text, and doc comments are separated
//! from plain comments so a waiver can only be registered by a real
//! `// lint:…-ok` comment.

use crate::lexer::{Tok, TokKind};

/// Line-indexed view of one source file (all vectors are `n_lines` long,
/// index 0 is line 1).
pub struct FileIndex {
    /// Code text per line: token texts placed at their true columns,
    /// literal interiors blanked (a `"` marks where a string was), comments
    /// stripped entirely.
    pub masked: Vec<String>,
    /// All comment text per line (doc and plain), with delimiters.
    pub comments: Vec<String>,
    /// Only plain (non-doc) comment text per line — the only place waivers
    /// are recognized.
    pub plain_comments: Vec<String>,
    /// True for lines inside a `#[cfg(test)]` item (token-level brace
    /// matching, so a test module in the middle of a file does not exempt
    /// the code after it).
    pub is_test: Vec<bool>,
}

impl FileIndex {
    /// Builds the index for a file with `n_lines` physical lines.
    pub fn build(tokens: &[Tok], n_lines: usize) -> FileIndex {
        let mut masked = vec![String::new(); n_lines];
        let mut comments = vec![String::new(); n_lines];
        let mut plain_comments = vec![String::new(); n_lines];

        for t in tokens {
            let li = (t.line as usize).saturating_sub(1);
            if li >= n_lines {
                continue;
            }
            match &t.kind {
                TokKind::Comment { doc, .. } => {
                    // Distribute multi-line comment text across its lines.
                    for (k, part) in t.text.split('\n').enumerate() {
                        let l = li + k;
                        if l >= n_lines {
                            break;
                        }
                        push_part(&mut comments[l], part);
                        if !doc {
                            push_part(&mut plain_comments[l], part);
                        }
                    }
                }
                TokKind::Str => {
                    // A quote at the start column marks the literal; the
                    // interior is blanked so rules can never match into it.
                    place(&mut masked[li], t.col, "\"");
                }
                TokKind::Char => {
                    place(&mut masked[li], t.col, "'");
                }
                _ => {
                    // Single-line tokens (idents, puncts, numbers,
                    // lifetimes) are placed at their true column.
                    place(&mut masked[li], t.col, &t.text);
                }
            }
        }

        let is_test = test_lines(tokens, n_lines);
        FileIndex {
            masked,
            comments,
            plain_comments,
            is_test,
        }
    }

    /// True if the line (0-based) is blank, comment-only, or an attribute —
    /// the lines R1's upward walk steps through.
    pub fn is_comment_or_attr(&self, li: usize) -> bool {
        let code = self.masked[li].trim_start();
        code.is_empty() || code.starts_with("#[") || code.starts_with("#!")
    }

    /// True if a waiver comment with the given tag (e.g. `lint:relaxed-ok`)
    /// covers the 0-based line: a *plain* comment on the same or previous
    /// line.
    pub fn waived(&self, li: usize, tag: &str) -> bool {
        self.plain_comments[li].contains(tag)
            || (li > 0 && self.plain_comments[li - 1].contains(tag))
    }
}

/// Appends comment text to a line's comment accumulator.
fn push_part(acc: &mut String, part: &str) {
    if !acc.is_empty() {
        acc.push(' ');
    }
    acc.push_str(part);
}

/// Writes `text` into `line` starting at 1-based character column `col`,
/// padding with spaces. Multi-line token texts only place their first line
/// (the rest of a multi-line literal is blanked by construction).
fn place(line: &mut String, col: u32, text: &str) {
    let col = (col as usize).saturating_sub(1);
    let cur: Vec<char> = line.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(col + text.len());
    out.extend_from_slice(&cur);
    while out.len() < col {
        out.push(' ');
    }
    for c in text.chars().take_while(|&c| c != '\n') {
        if out.len() <= col + 1000 {
            out.push(c);
        }
    }
    *line = out.into_iter().collect();
}

/// Marks lines covered by `#[cfg(test)]` items. After the attribute
/// (skipping any further attributes), the item extends to the matching `}`
/// of its first brace, or to the `;` of a braceless item.
fn test_lines(tokens: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut flags = vec![false; n_lines];
    let code: Vec<(usize, &Tok)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut i = 0;
    while i + 6 < code.len() {
        let w = &code[i..i + 7];
        let is_cfg_test = w[0].1.is_punct("#")
            && w[1].1.is_punct("[")
            && w[2].1.is_ident("cfg")
            && w[3].1.is_punct("(")
            && w[4].1.is_ident("test")
            && w[5].1.is_punct(")")
            && w[6].1.is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = w[0].1.line as usize;
        // Skip any further attributes, then find the item's extent.
        let mut j = i + 7;
        while j + 1 < code.len() && code[j].1.is_punct("#") && code[j + 1].1.is_punct("[") {
            // Skip to the matching `]`.
            let mut depth = 0usize;
            j += 1;
            while j < code.len() {
                if code[j].1.is_punct("[") {
                    depth += 1;
                } else if code[j].1.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the first `{` (brace-matched item) or `;` (braceless).
        let mut end_line = n_lines; // unterminated: to EOF
        let mut k = j;
        while k < code.len() {
            if code[k].1.is_punct(";") {
                end_line = code[k].1.line as usize;
                break;
            }
            if code[k].1.is_punct("{") {
                let mut depth = 0usize;
                while k < code.len() {
                    if code[k].1.is_punct("{") {
                        depth += 1;
                    } else if code[k].1.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            end_line = code[k].1.line as usize;
                            break;
                        }
                    }
                    k += 1;
                }
                if k == code.len() {
                    end_line = n_lines;
                }
                break;
            }
            k += 1;
        }
        for l in start_line..=end_line.min(n_lines) {
            flags[l - 1] = true;
        }
        i += 7;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        FileIndex::build(&lex(src), src.lines().count().max(1))
    }

    #[test]
    fn masking_blanks_strings_and_strips_comments() {
        let idx = index("let s = \"g0.apply(x)\"; // lint:single-rhs-ok note\ncall();\n");
        assert!(!idx.masked[0].contains("apply"));
        assert!(idx.masked[0].contains('"'));
        assert!(!idx.masked[0].contains("lint:"));
        assert!(idx.plain_comments[0].contains("lint:single-rhs-ok"));
        assert_eq!(idx.masked[1].trim(), "call();");
    }

    #[test]
    fn multiline_string_interior_is_blank() {
        let idx = index("let s = \"first\n.send(1, 2, x)\nlast\";\nreal.send(1, 2, x);\n");
        assert!(!idx.masked[1].contains(".send("));
        assert!(idx.masked[3].contains(".send("));
    }

    #[test]
    fn doc_comments_do_not_register_waivers() {
        let idx = index("//! doc mentioning lint:unwrap-ok\n// real lint:unwrap-ok\n");
        assert!(!idx.plain_comments[0].contains("lint:unwrap-ok"));
        assert!(idx.comments[0].contains("lint:unwrap-ok"));
        assert!(idx.plain_comments[1].contains("lint:unwrap-ok"));
    }

    #[test]
    fn cfg_test_module_is_bounded() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        let idx = index(src);
        assert!(!idx.is_test[0]);
        assert!(idx.is_test[1]);
        assert!(idx.is_test[3]);
        assert!(idx.is_test[4]);
        assert!(!idx.is_test[5], "code after the test module is not test");
    }

    #[test]
    fn cfg_test_with_extra_attr_and_braceless_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod helpers {\n fn x() {}\n}\n#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let idx = index(src);
        assert!(idx.is_test[0] && idx.is_test[2] && idx.is_test[4]);
        assert!(idx.is_test[5] && idx.is_test[6]);
        assert!(!idx.is_test[7]);
    }

    #[test]
    fn unterminated_cfg_test_runs_to_eof() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n";
        let idx = index(src);
        assert!(idx.is_test[3]);
    }

    #[test]
    fn comment_or_attr_walk_lines() {
        let idx = index("// c\n#[derive(Debug)]\n\nstruct X;\n");
        assert!(idx.is_comment_or_attr(0));
        assert!(idx.is_comment_or_attr(1));
        assert!(idx.is_comment_or_attr(2));
        assert!(!idx.is_comment_or_attr(3));
    }

    #[test]
    fn waiver_same_or_previous_line() {
        let idx = index("// lint:relaxed-ok justified\nx.load(Relaxed);\ny.load(Relaxed);\n");
        assert!(idx.waived(1, "lint:relaxed-ok"));
        assert!(!idx.waived(2, "lint:relaxed-ok"));
    }
}
