//! A from-scratch Rust lexer producing a flat token stream with
//! file/line/column spans.
//!
//! This is deliberately *not* a full Rust grammar — the rules only need the
//! token boundaries the textual engine could not see: string literal
//! interiors (including raw strings with arbitrary `#` fences and byte
//! strings), character literals vs. lifetimes, nested block comments, and
//! doc vs. plain comments. Everything the rules match (`.unwrap(`,
//! `thread::spawn`, `Ordering::Release`, tag expressions) is a short token
//! sequence, so a lossless stream of `Ident`/`Punct`/`Literal`/`Comment`
//! tokens with positions is exactly enough.

/// What a token is. `Int` carries the parsed value when the literal is a
/// plain integer (decimal / hex / octal / binary, `_` separators, numeric
/// suffix) — the tag-protocol rule needs the values to check the reserved
/// bit.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (the rules treat keywords as idents).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal, with its parsed value when it fits `u64`.
    Int(Option<u64>),
    /// Float literal.
    Float,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A comment. `doc` distinguishes `///`/`//!`/`/**`/`/*!` from plain
    /// `//`/`/* */` — waivers must be plain comments so that *documenting*
    /// a waiver tag never registers one.
    Comment {
        /// True for doc comments.
        doc: bool,
        /// True for block (`/* */`) comments.
        block: bool,
    },
    /// Punctuation / operator, possibly multi-character (`::`, `+=`, `..`).
    Punct,
}

/// One token with its text and 1-based start position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Exact source text (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
    /// 1-based line of the last character.
    pub end_line: u32,
    /// 1-based column (in characters) of the last character.
    pub end_col: u32,
}

impl Tok {
    /// True if this is an identifier with the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is punctuation with the given text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for any comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment { .. })
    }
}

/// Multi-character operators, longest first so the match is maximal.
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses an integer literal's value: `0x`/`0o`/`0b` prefixes, `_`
/// separators, and a trailing type suffix (`u32`, `usize`, …) are handled.
pub fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix: the first char that is not a digit of `radix`.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// are closed at end of file (the rules tolerate a truncated final token).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.i;
        let kind = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur);
            TokKind::Str
        } else if c == 'r' && matches!(cur.peek(1), Some('"') | Some('#')) {
            match lex_raw_string_or_ident(&mut cur) {
                Some(k) => k,
                None => lex_ident(&mut cur),
            }
        } else if c == 'b' && matches!(cur.peek(1), Some('"') | Some('\'') | Some('r')) {
            match lex_byte_literal(&mut cur) {
                Some(k) => k,
                None => lex_ident(&mut cur),
            }
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        let text: String = cur.chars[start..cur.i].iter().collect();
        // Position of the last character consumed (newline-aware).
        let (end_line, end_col) = if cur.col > 1 {
            (cur.line, cur.col - 1)
        } else {
            (cur.line.saturating_sub(1), 1)
        };
        let kind = match kind {
            TokKind::Int(_) => TokKind::Int(parse_int(&text)),
            k => k,
        };
        toks.push(Tok {
            kind,
            text,
            line,
            col,
            end_line,
            end_col,
        });
    }
    toks
}

fn lex_line_comment(cur: &mut Cursor) -> TokKind {
    // `///` (but not `////…`) and `//!` are doc comments.
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some('!'), _) => true,
        (Some('/'), Some('/')) => false,
        (Some('/'), _) => true,
        _ => false,
    };
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokKind::Comment { doc, block: false }
}

fn lex_block_comment(cur: &mut Cursor) -> TokKind {
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some('!'), _) => true,
        // `/**/` is an empty plain comment, `/**x` is doc.
        (Some('*'), Some('/')) => false,
        (Some('*'), _) => true,
        _ => false,
    };
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
    TokKind::Comment { doc, block: true }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening '"'
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// `r"…"`, `r#"…"#`, … or a raw identifier `r#ident`. Returns `None` when
/// the `r` turns out to start a plain identifier.
fn lex_raw_string_or_ident(cur: &mut Cursor) -> Option<TokKind> {
    let mut hashes = 0usize;
    while cur.peek(1 + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(1 + hashes) {
        Some('"') => {
            cur.bump(); // 'r'
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // '"'
            consume_raw_string_body(cur, hashes);
            Some(TokKind::Str)
        }
        Some(c) if hashes == 1 && is_ident_start(c) => {
            // Raw identifier `r#ident`.
            cur.bump();
            cur.bump();
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            Some(TokKind::Ident)
        }
        _ => None,
    }
}

fn consume_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

/// `b"…"`, `b'…'`, `br"…"`, `br#"…"#`. Returns `None` when the `b` starts a
/// plain identifier.
fn lex_byte_literal(cur: &mut Cursor) -> Option<TokKind> {
    match cur.peek(1) {
        Some('"') => {
            cur.bump();
            lex_string(cur);
            Some(TokKind::Str)
        }
        Some('\'') => {
            cur.bump();
            consume_char_body(cur);
            Some(TokKind::Char)
        }
        Some('r') => {
            let mut hashes = 0usize;
            while cur.peek(2 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(2 + hashes) == Some('"') {
                cur.bump(); // 'b'
                cur.bump(); // 'r'
                for _ in 0..hashes {
                    cur.bump();
                }
                cur.bump(); // '"'
                consume_raw_string_body(cur, hashes);
                Some(TokKind::Str)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn consume_char_body(cur: &mut Cursor) {
    cur.bump(); // opening '\''
    if cur.bump() == Some('\\') {
        // Escape: one char, or `u{…}` for unicode escapes.
        if cur.bump() == Some('u') && cur.peek(0) == Some('{') {
            while let Some(c) = cur.bump() {
                if c == '}' {
                    break;
                }
            }
        }
    }
    if cur.peek(0) == Some('\'') {
        cur.bump();
    }
}

/// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A quote followed by an
/// identifier char is a char literal only when the *next* char closes it.
fn lex_char_or_lifetime(cur: &mut Cursor) -> TokKind {
    match cur.peek(1) {
        Some(c) if is_ident_start(c) && cur.peek(2) != Some('\'') => {
            cur.bump(); // '\''
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokKind::Lifetime
        }
        _ => {
            consume_char_body(cur);
            TokKind::Char
        }
    }
}

fn lex_ident(cur: &mut Cursor) -> TokKind {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokKind::Ident
}

fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    // Leading digits (any radix — `parse_int` sorts the prefix out later).
    while cur
        .peek(0)
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        // A type/exponent letter can be followed by `+`/`-` only in
        // exponents; handled below. Consume the alphanumeric run.
        cur.bump();
    }
    // Fractional part: a '.' followed by a digit (not `..`, not `.method()`).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump(); // '.'
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            cur.bump();
        }
    }
    // Exponent sign: `1e-5` — the alnum run above stops at '-'.
    if matches!(cur.peek(0), Some('+') | Some('-')) {
        // Only continue when the previous char was an exponent 'e'/'E'.
        let prev = cur.chars.get(cur.i.wrapping_sub(1)).copied();
        if matches!(prev, Some('e') | Some('E')) && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            float = true;
            cur.bump();
            while cur
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                cur.bump();
            }
        }
    }
    // A trailing `.5`-style fraction marks a float even without more digits:
    // `1.` (rare) — leave as int; the rules never care.
    if float {
        TokKind::Float
    } else {
        TokKind::Int(None)
    }
}

fn lex_punct(cur: &mut Cursor) -> TokKind {
    for m in MULTI_PUNCT {
        let mut ok = true;
        for (k, mc) in m.chars().enumerate() {
            if cur.peek(k) != Some(mc) {
                ok = false;
                break;
            }
        }
        if ok {
            for _ in 0..m.len() {
                cur.bump();
            }
            return TokKind::Punct;
        }
    }
    cur.bump();
    TokKind::Punct
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("self.x.store(true, Ordering::Release);");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            [
                "self", ".", "x", ".", "store", "(", "true", ",", "Ordering", "::", "Release", ")",
                ";"
            ]
        );
    }

    #[test]
    fn string_interiors_are_single_tokens() {
        let ts = kinds(r#"panic!("call .send( correctly");"#);
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains(".send(")));
        // No Punct/Ident tokens from inside the string.
        assert!(!ts.iter().any(|(k, s)| *k == TokKind::Ident && s == "send"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let ts = kinds(r##"let s = r#"has "quotes" and \ no escapes"#; x"##);
        assert!(matches!(ts[3].0, TokKind::Str));
        assert!(ts.last().unwrap().1 == "x");
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(ts.len(), 3);
        assert!(
            ts[1].0
                == TokKind::Comment {
                    doc: false,
                    block: true
                }
        );
        assert!(ts[1].1.contains("inner"));
        assert_eq!(ts[2].1, "b");
    }

    #[test]
    fn char_vs_lifetime() {
        let ts = kinds("let c = 'a'; fn f<'a>(x: &'a str) { let q = '\\''; }");
        let chars: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(chars, ["'a'", "'\\''"]);
        let lifetimes: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn doc_vs_plain_comments() {
        let ts = lex("/// doc\n//! inner\n// plain\n//// many slashes\n/** docblock */\n/*! inner block */\n/* plain block */\n/**/");
        let docs: Vec<bool> = ts
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Comment { doc, .. } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, [true, true, false, false, true, true, false, false]);
    }

    #[test]
    fn int_values() {
        assert_eq!(parse_int("0x8000_0000"), Some(0x8000_0000));
        assert_eq!(parse_int("0x100"), Some(0x100));
        assert_eq!(parse_int("42u32"), Some(42));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("1_000_000"), Some(1_000_000));
        let ts = lex("const T: u32 = 0x110;");
        let v = ts
            .iter()
            .find_map(|t| match t.kind {
                TokKind::Int(v) => Some(v),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, Some(0x110));
    }

    #[test]
    fn floats_and_ranges() {
        let ts = kinds("for i in 0..10 { let x = 1.5e-3; let y = v[0].re; }");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokKind::Float && s == "1.5e-3"));
        assert!(ts.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
        // `v[0].re` keeps the int and the field access separate.
        assert!(ts
            .iter()
            .any(|(k, s)| matches!(k, TokKind::Int(_)) && s == "0"));
        assert!(ts.iter().any(|(k, s)| *k == TokKind::Ident && s == "re"));
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let ts = lex("ab\n  cd");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
        assert_eq!((ts[1].end_line, ts[1].end_col), (2, 4));
    }

    #[test]
    fn multiline_string_spans() {
        let ts = lex("let s = \"line one\nline two\";\nnext");
        let s = &ts[3];
        assert_eq!(s.kind, TokKind::Str);
        assert_eq!(s.line, 1);
        assert_eq!(s.end_line, 2);
        let next = ts.last().unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn byte_literals() {
        let ts = kinds("let a = b\"bytes\"; let c = b'\\n'; let r = br#\"raw\"#;");
        let strs = ts.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(ts.iter().any(|(k, _)| *k == TokKind::Char));
    }
}
