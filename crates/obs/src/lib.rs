//! # ffw-obs
//!
//! Runtime observability for the FFW-Tomo workspace: the *measuring*
//! counterpart to `ffw-perf`'s cost *models*. The paper's whole evaluation is
//! per-stage timing and communication breakdowns (aggregation / translation /
//! disaggregation / near-field, comm-vs-compute, Figs. 9-13, Tables 3-4);
//! this crate is the layer every such number flows through.
//!
//! Three primitives, all behind one global recorder:
//!
//! * **Spans** ([`span`]) — hierarchical scoped timers. Nesting follows the
//!   call stack per thread; durations aggregate by slash-joined path
//!   (`reconstruct/dbim/iter`), so repeated scopes fold into count + total.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — named values with
//!   cheap atomic hot-path recording. Counters are monotonic `u64`, gauges
//!   are last-write-wins `f64`, histograms are log2-bucketed `u64` samples.
//! * **Traces** ([`series_push`], [`event`]) — append-only numeric series
//!   (solver residual histories) and timestamped annotations (checkpoint
//!   writes, restarts, breakdowns).
//!
//! The recorder is **off by default**: every entry point checks one relaxed
//! atomic load and becomes a no-op, so instrumented hot paths cost nothing
//! measurable until a driver opts in with [`set_enabled`]. Snapshots
//! ([`snapshot`]) serialize to JSON / JSONL ([`Snapshot::to_json`],
//! [`Snapshot::to_jsonl`]) and render as a text profile
//! ([`Snapshot::render_profile`]).
//!
//! This crate is dependency-free by design (it sits below every other crate
//! in the workspace, including the substrate crates) and is the only crate
//! allowed to touch `std::time::Instant` — xtask lint R6 enforces that all
//! timing goes through [`Stopwatch`] / spans so it is aggregated here.

#![warn(missing_docs)]

mod clock;
mod export;
mod metrics;
mod report;
mod span;

pub use clock::{monotonic_ns, Stopwatch};
pub use export::{EventRow, HistogramRow, Snapshot, SpanRow};
pub use metrics::{counter, event, gauge, histogram, series_push, Counter, Gauge, Histogram};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the global recorder on or off. Off (the default) makes every
/// recording entry point a no-op after one atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether the global recorder is currently on.
///
/// The acquire load pairs with the release store in [`set_enabled`], so a
/// thread that observes the recorder as on also observes everything the
/// enabling thread wrote before flipping the flag.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Takes a consistent snapshot of everything recorded so far.
pub fn snapshot() -> Snapshot {
    export::take_snapshot()
}

/// Clears all recorded data: counters/gauges/histograms are zeroed in place
/// (cached [`Counter`]/[`Gauge`]/[`Histogram`] handles stay valid), spans,
/// series and events are dropped. Used by benches between measured runs.
pub fn reset() {
    metrics::reset_registry();
    span::reset_spans();
}

/// Serializes tests that toggle [`set_enabled`] or call [`reset`]: the
/// recorder is process-global, so concurrent tests would race otherwise.
#[cfg(test)]
pub(crate) fn tests_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = tests_lock();
        reset();
        set_enabled(false);
        {
            let _g = span("not-recorded");
            counter("test.lib.counter").add(5);
            series_push("test.lib.series", 1.0);
            event("test.lib.event", "detail");
        }
        let snap = snapshot();
        assert!(snap.spans.iter().all(|s| s.path != "not-recorded"));
        // handle creation registers the name, but no value is recorded
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test.lib.counter")
            .expect("registered");
        assert_eq!(c.1, 0);
        assert!(snap.series.iter().all(|(n, _)| n != "test.lib.series"));
        assert!(snap.events.iter().all(|e| e.name != "test.lib.event"));
    }
}
