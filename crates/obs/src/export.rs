//! Snapshots and serialization (JSON / JSONL).
//!
//! The JSON schema (`ffw-obs/1`, documented in DESIGN.md section 9) is
//! emitted with a hand-rolled writer: this crate sits below everything else
//! in the workspace and stays dependency-free. Keys are sorted (the registry
//! is BTreeMap-backed) so output is diffable.

use crate::metrics::{registry, HIST_BUCKETS};
use crate::span::span_table;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::Ordering;

/// One aggregated span path.
#[derive(Clone, Debug)]
pub struct SpanRow {
    /// Slash-joined path (`reconstruct/dbim/iter`).
    pub path: String,
    /// Number of completed executions.
    pub count: u64,
    /// Sum of execution durations (CPU-time across threads, ns).
    pub total_ns: u64,
    /// Shortest execution (ns).
    pub min_ns: u64,
    /// Longest execution (ns).
    pub max_ns: u64,
}

/// One histogram: non-empty log2 buckets as `(lower_bound, count)`.
#[derive(Clone, Debug)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets: (inclusive lower bound of the bucket, count).
    pub buckets: Vec<(u64, u64)>,
}

/// One timestamped event.
#[derive(Clone, Debug)]
pub struct EventRow {
    /// Nanoseconds since the process-wide monotonic epoch.
    pub t_ns: u64,
    /// Event name (dotted, like metrics).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

/// A consistent copy of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanRow>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRow>,
    /// Numeric series, sorted by name.
    pub series: Vec<(String, Vec<f64>)>,
    /// Events in record order.
    pub events: Vec<EventRow>,
}

fn lock<'a, T>(m: &'a std::sync::Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn take_snapshot() -> Snapshot {
    let r = registry();
    let spans = lock(span_table())
        .iter()
        .map(|(path, s)| SpanRow {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: if s.count == 0 { 0 } else { s.min_ns },
            max_ns: s.max_ns,
        })
        .collect();
    let counters = lock(&r.counters)
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect();
    let gauges = lock(&r.gauges)
        .iter()
        .map(|(n, g)| (n.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect();
    let histograms = lock(&r.histograms)
        .iter()
        .map(|(n, h)| HistogramRow {
            name: n.clone(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            buckets: (0..HIST_BUCKETS)
                .filter_map(|i| {
                    let c = h.buckets[i].load(Ordering::Relaxed);
                    (c > 0).then(|| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
                })
                .collect(),
        })
        .collect();
    let series = lock(&r.series)
        .iter()
        .map(|(n, v)| (n.clone(), v.clone()))
        .collect();
    let events = lock(&r.events)
        .iter()
        .map(|(t, n, d)| EventRow {
            t_ns: *t,
            name: n.clone(),
            detail: d.clone(),
        })
        .collect();
    Snapshot {
        spans,
        counters,
        gauges,
        histograms,
        series,
        events,
    }
}

/// Escapes a string for a JSON string literal (quotes not included).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (`null` for NaN/infinite).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // bare integers like `3` are valid JSON numbers; keep them as-is
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// Serializes the snapshot as one pretty-ish JSON document
    /// (schema `ffw-obs/1`).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"schema\": \"ffw-obs/1\",\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"path\": \"");
            esc(&s.path, &mut o);
            let _ = write!(
                o,
                "\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            );
        }
        o.push_str("\n  ],\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    \"");
            esc(n, &mut o);
            let _ = write!(o, "\": {v}");
        }
        o.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    \"");
            esc(n, &mut o);
            o.push_str("\": ");
            json_f64(*v, &mut o);
        }
        o.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    \"");
            esc(&h.name, &mut o);
            let _ = write!(
                o,
                "\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                let _ = write!(o, "[{lo}, {c}]");
            }
            o.push_str("]}");
        }
        o.push_str("\n  },\n  \"series\": {");
        for (i, (n, vals)) in self.series.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    \"");
            esc(n, &mut o);
            o.push_str("\": [");
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                json_f64(*v, &mut o);
            }
            o.push(']');
        }
        o.push_str("\n  },\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(o, "    {{\"t_ns\": {}, \"name\": \"", e.t_ns);
            esc(&e.name, &mut o);
            o.push_str("\", \"detail\": \"");
            esc(&e.detail, &mut o);
            o.push_str("\"}");
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Serializes the snapshot as JSONL: one self-describing object per line
    /// (`{"kind": "span" | "counter" | ..., ...}`), append-friendly for log
    /// collectors.
    pub fn to_jsonl(&self) -> String {
        let mut o = String::with_capacity(4096);
        for s in &self.spans {
            o.push_str("{\"kind\": \"span\", \"path\": \"");
            esc(&s.path, &mut o);
            let _ = writeln!(
                o,
                "\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            );
        }
        for (n, v) in &self.counters {
            o.push_str("{\"kind\": \"counter\", \"name\": \"");
            esc(n, &mut o);
            let _ = writeln!(o, "\", \"value\": {v}}}");
        }
        for (n, v) in &self.gauges {
            o.push_str("{\"kind\": \"gauge\", \"name\": \"");
            esc(n, &mut o);
            o.push_str("\", \"value\": ");
            json_f64(*v, &mut o);
            o.push_str("}\n");
        }
        for (n, vals) in &self.series {
            o.push_str("{\"kind\": \"series\", \"name\": \"");
            esc(n, &mut o);
            o.push_str("\", \"values\": [");
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                json_f64(*v, &mut o);
            }
            o.push_str("]}\n");
        }
        for e in &self.events {
            let _ = write!(
                o,
                "{{\"kind\": \"event\", \"t_ns\": {}, \"name\": \"",
                e.t_ns
            );
            esc(&e.name, &mut o);
            o.push_str("\", \"detail\": \"");
            esc(&e.detail, &mut o);
            o.push_str("\"}\n");
        }
        o
    }

    /// Writes [`Snapshot::to_json`] to `path` (`.jsonl` extension selects
    /// the JSONL form).
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            self.to_jsonl()
        } else {
            self.to_json()
        };
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {

    /// Minimal structural JSON validator: objects/arrays/strings/numbers/
    /// literals, enough to prove the hand-rolled writer emits valid JSON.
    fn validate_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        fn ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?; // key (validated as a value: must be string)
                        ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => {
                    *i += 1;
                    while *i < b.len() {
                        match b[*i] {
                            b'\\' => *i += 2,
                            b'"' => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => *i += 1,
                        }
                    }
                    Err("unterminated string".into())
                }
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    while *i < b.len()
                        && (b[*i].is_ascii_digit()
                            || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                _ => {
                    for lit in ["true", "false", "null"] {
                        if s_from(b, *i).starts_with(lit) {
                            *i += lit.len();
                            return Ok(());
                        }
                    }
                    Err(format!("unexpected token at {i}"))
                }
            }
        }
        fn s_from(b: &[u8], i: usize) -> &str {
            std::str::from_utf8(&b[i..]).unwrap_or("")
        }
        value(b, &mut i)?;
        ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at {i}"));
        }
        Ok(())
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let _guard = crate::tests_lock();
        crate::reset();
        crate::set_enabled(true);
        {
            let _root = crate::span("test-export-root");
            let _leaf = crate::span("leaf \"quoted\"");
        }
        crate::counter("test.export.counter").add(7);
        crate::gauge("test.export.gauge").set(1.5);
        crate::gauge("test.export.nan").set(f64::NAN);
        crate::histogram("test.export.hist").record(100);
        crate::series_push("test.export.series", 0.25);
        crate::event("test.export.event", "line1\nline2");
        crate::set_enabled(false);

        let snap = crate::snapshot();
        let json = snap.to_json();
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"test.export.counter\": 7"));
        assert!(json.contains("test-export-root/leaf \\\"quoted\\\""));
        assert!(json.contains("\"test.export.nan\": null"));

        for line in snap.to_jsonl().lines() {
            validate_json(line).unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
        }
    }

    #[test]
    fn write_to_selects_format_by_extension() {
        let _guard = crate::tests_lock();
        crate::reset();
        crate::set_enabled(true);
        crate::counter("test.export.file").inc();
        crate::set_enabled(false);
        let snap = crate::snapshot();
        let dir = std::env::temp_dir();
        let j = dir.join("ffw-obs-test.json");
        let l = dir.join("ffw-obs-test.jsonl");
        snap.write_to(&j).expect("write json");
        snap.write_to(&l).expect("write jsonl");
        let json = std::fs::read_to_string(&j).expect("read");
        assert!(json.starts_with('{'));
        let jsonl = std::fs::read_to_string(&l).expect("read");
        assert!(jsonl.lines().all(|ln| ln.starts_with('{')));
        let _ = std::fs::remove_file(j);
        let _ = std::fs::remove_file(l);
    }
}
