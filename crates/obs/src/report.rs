//! Text profile rendering: an indented, flamegraph-style view of the span
//! tree, largest subtree first, printed by `ffw-reconstruct --profile`.

use crate::export::{Snapshot, SpanRow};
use std::collections::BTreeMap;
use std::fmt::Write as _;

struct Node<'a> {
    row: Option<&'a SpanRow>,
    children: BTreeMap<&'a str, Node<'a>>,
}

impl<'a> Node<'a> {
    fn new() -> Self {
        Node {
            row: None,
            children: BTreeMap::new(),
        }
    }

    fn total_ns(&self) -> u64 {
        self.row
            .map(|r| r.total_ns)
            .unwrap_or_else(|| self.children.values().map(|c| c.total_ns()).sum())
    }
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:8.3} s ")
    } else if s >= 1e-3 {
        format!("{:8.3} ms", s * 1e3)
    } else {
        format!("{:8.3} us", s * 1e6)
    }
}

fn render_node(name: &str, node: &Node<'_>, depth: usize, root_total: u64, out: &mut String) {
    let total = node.total_ns();
    let share = if root_total > 0 {
        100.0 * total as f64 / root_total as f64
    } else {
        0.0
    };
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    let count = node.row.map(|r| r.count).unwrap_or(0);
    let _ = writeln!(out, "{label:<40} {} {share:5.1}%  x{count}", fmt_ns(total));
    // children sorted by total time, largest first
    let mut kids: Vec<(&str, &Node<'_>)> = node.children.iter().map(|(k, v)| (*k, v)).collect();
    kids.sort_by_key(|(_, n)| std::cmp::Reverse(n.total_ns()));
    // self time, when the children don't account for everything
    if node.row.is_some() && !kids.is_empty() {
        let child_sum: u64 = kids.iter().map(|(_, n)| n.total_ns()).sum();
        let self_ns = total.saturating_sub(child_sum);
        if total > 0 && self_ns as f64 / total as f64 > 0.02 {
            let self_share = if root_total > 0 {
                100.0 * self_ns as f64 / root_total as f64
            } else {
                0.0
            };
            let label = format!("{indent}  (self)");
            let _ = writeln!(out, "{label:<40} {} {self_share:5.1}%", fmt_ns(self_ns));
        }
    }
    for (k, child) in kids {
        render_node(k, child, depth + 1, root_total, out);
    }
}

impl Snapshot {
    /// Renders the span tree as an indented text profile. Durations are CPU
    /// time summed across threads; percentages are relative to the total of
    /// all root spans.
    pub fn render_profile(&self) -> String {
        let mut root = Node::new();
        for row in &self.spans {
            let mut node = &mut root;
            for part in row.path.split('/') {
                node = node.children.entry(part).or_insert_with(Node::new);
            }
            node.row = Some(row);
        }
        let root_total: u64 = root.children.values().map(|c| c.total_ns()).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span profile (CPU time summed over threads; total {})",
            fmt_ns(root_total).trim()
        );
        let mut tops: Vec<(&str, &Node<'_>)> = root.children.iter().map(|(k, v)| (*k, v)).collect();
        tops.sort_by_key(|(_, n)| std::cmp::Reverse(n.total_ns()));
        for (k, child) in tops {
            render_node(k, child, 1, root_total, &mut out);
        }
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::export::{Snapshot, SpanRow};

    #[test]
    fn profile_renders_tree_with_shares() {
        let snap = Snapshot {
            spans: vec![
                SpanRow {
                    path: "run".into(),
                    count: 1,
                    total_ns: 1_000_000_000,
                    min_ns: 1_000_000_000,
                    max_ns: 1_000_000_000,
                },
                SpanRow {
                    path: "run/solve".into(),
                    count: 4,
                    total_ns: 750_000_000,
                    min_ns: 100,
                    max_ns: 500_000_000,
                },
                SpanRow {
                    path: "run/io".into(),
                    count: 2,
                    total_ns: 150_000_000,
                    min_ns: 100,
                    max_ns: 100_000_000,
                },
            ],
            ..Default::default()
        };
        let text = snap.render_profile();
        assert!(text.contains("run"), "{text}");
        assert!(text.contains("solve"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("(self)"), "{text}");
        // solve (larger) is listed before io
        let solve_at = text.find("solve").expect("solve");
        let io_at = text.find("io").expect("io");
        assert!(solve_at < io_at, "{text}");
    }

    #[test]
    fn empty_profile_does_not_panic() {
        let text = Snapshot::default().render_profile();
        assert!(text.contains("no spans recorded"));
    }
}
