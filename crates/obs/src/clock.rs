//! The workspace's single monotonic-clock access point.
//!
//! Everything in `crates/` that wants wall time goes through [`Stopwatch`]
//! or [`monotonic_ns`]; lint rule R6 (`ffw-analyze`) bans
//! `std::time::Instant` elsewhere so no timing can bypass the observability
//! layer.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide epoch: all [`monotonic_ns`] readings are relative to the
/// first call, so event timestamps from different threads share one origin.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide monotonic epoch.
pub fn monotonic_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// A monotonic stopwatch — the replacement for ad-hoc `Instant::now()`
/// pairs in benches and examples.
///
/// ```
/// let sw = ffw_obs::Stopwatch::start();
/// // ... work ...
/// println!("took {:.3} s", sw.elapsed_secs());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Elapsed time as a [`std::time::Duration`] (handy for `{:.1?}`).
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Nanoseconds elapsed since start.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Returns the elapsed seconds and restarts the stopwatch.
    pub fn lap_secs(&mut self) -> f64 {
        let s = self.elapsed_secs();
        self.started = Instant::now();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_nonnegative() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_ns() < 60_000_000_000, "sane magnitude");
    }

    #[test]
    fn lap_restarts() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = sw.lap_secs();
        assert!(first > 0.0);
        assert!(sw.elapsed_secs() <= first + 1.0);
    }
}
