//! Hierarchical scoped spans.
//!
//! A span is a timed scope: [`span("name")`](span) returns a guard, and the
//! elapsed time is recorded when the guard drops. Nesting follows the call
//! stack of each thread (a thread-local stack of names), and recording
//! aggregates by the slash-joined path — every execution of
//! `reconstruct/dbim/iter` folds into one row with a count, total, min and
//! max. Aggregation is global and thread-safe, so spans recorded on
//! different ranks/threads with the same path merge (their *total* is CPU
//! time summed over threads, not wall time — the profile renderer labels it
//! as such).

use crate::clock::monotonic_ns;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Clone, Default)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
    pub(crate) min_ns: u64,
    pub(crate) max_ns: u64,
}

pub(crate) fn span_table() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

pub(crate) fn reset_spans() {
    span_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

thread_local! {
    /// This thread's stack of open span names.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its duration under the path captured at entry when
/// dropped. Obtain via [`span`].
pub struct SpanGuard {
    /// `None` when the recorder was off at entry (fully inert guard).
    open: Option<OpenSpan>,
}

struct OpenSpan {
    path: String,
    start_ns: u64,
}

/// Opens a span named `name`, nested under the spans currently open on this
/// thread. While the recorder is off this returns an inert guard and costs
/// one atomic load.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { open: None };
    }
    let name = name.into();
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.clone()
        } else {
            let mut p = String::with_capacity(
                stack.iter().map(|s| s.len() + 1).sum::<usize>() + name.len(),
            );
            for part in stack.iter() {
                p.push_str(part);
                p.push('/');
            }
            p.push_str(&name);
            p
        };
        stack.push(name);
        path
    });
    SpanGuard {
        open: Some(OpenSpan {
            path,
            start_ns: monotonic_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let elapsed = monotonic_ns().saturating_sub(open.start_ns);
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut table = span_table().lock().unwrap_or_else(|e| e.into_inner());
        let stat = table.entry(open.path).or_insert(SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += elapsed;
        stat.min_ns = stat.min_ns.min(elapsed);
        stat.max_ns = stat.max_ns.max(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths_and_aggregates() {
        let _guard = crate::tests_lock();
        crate::reset();
        crate::set_enabled(true);
        for _ in 0..3 {
            let _outer = span("test-span-outer");
            let _inner = span("test-span-inner");
        }
        {
            // a sibling root span
            let _other = span("test-span-other");
        }
        crate::set_enabled(false);
        let snap = crate::snapshot();
        let get = |p: &str| {
            snap.spans
                .iter()
                .find(|s| s.path == p)
                .unwrap_or_else(|| panic!("span {p} missing"))
                .clone()
        };
        assert_eq!(get("test-span-outer").count, 3);
        let inner = get("test-span-outer/test-span-inner");
        assert_eq!(inner.count, 3);
        assert!(inner.total_ns <= get("test-span-outer").total_ns);
        assert_eq!(get("test-span-other").count, 1);
    }

    #[test]
    fn guard_survives_disable_mid_span() {
        let _guard = crate::tests_lock();
        crate::reset();
        crate::set_enabled(true);
        let g = span("test-span-midflight");
        crate::set_enabled(false);
        drop(g); // still records: the span was open when the recorder was on
        let snap = crate::snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "test-span-midflight"));
    }

    #[test]
    fn stack_is_per_thread() {
        let _guard = crate::tests_lock();
        crate::reset();
        crate::set_enabled(true);
        let _outer = span("test-span-main-thread");
        std::thread::spawn(|| {
            // a fresh thread has an empty stack: this is a root span, not a
            // child of test-span-main-thread
            let _g = span("test-span-worker");
        })
        .join()
        .expect("worker");
        crate::set_enabled(false);
        let snap = crate::snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "test-span-worker"));
        assert!(!snap
            .spans
            .iter()
            .any(|s| s.path.contains("test-span-main-thread/test-span-worker")));
    }
}
