//! The metrics registry: counters, gauges, histograms, series, events.
//!
//! Naming scheme (DESIGN.md section 9): dotted lowercase
//! `component.metric[.qualifier]` — `mlfma.flops.translate`,
//! `mpi.bytes.rank3`, `solver.bicgstab.iters`. Registration is lazy: the
//! first [`counter`]/[`gauge`]/[`histogram`] call for a name creates it, and
//! the returned handle records lock-free thereafter, so hot paths look up
//! once and cache the handle.

use crate::clock::monotonic_ns;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets in a [`Histogram`]: bucket `i` holds samples `v`
/// with `2^(i-1) <= v < 2^i` (bucket 0 holds `v == 0`).
pub(crate) const HIST_BUCKETS: usize = 65;

pub(crate) struct HistogramInner {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>, // f64 bits
    pub(crate) histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    pub(crate) series: Mutex<BTreeMap<String, Vec<f64>>>,
    pub(crate) events: Mutex<Vec<(u64, String, String)>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        series: Mutex::new(BTreeMap::new()),
        events: Mutex::new(Vec::new()),
    })
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // The registry holds no user code while locked, so a poisoned lock can
    // only mean a panic inside this module; recover the data regardless.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Zeroes counters/gauges/histograms in place (cached handles stay valid)
/// and drops all series and events.
pub(crate) fn reset_registry() {
    let r = registry();
    for c in lock(&r.counters).values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in lock(&r.gauges).values() {
        g.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
    for h in lock(&r.histograms).values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
    }
    lock(&r.series).clear();
    lock(&r.events).clear();
}

/// A monotonic `u64` counter handle. Cheap to clone; `add` is one relaxed
/// `fetch_add` when the recorder is on.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter (no-op while the recorder is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Returns (creating if needed) the counter registered under `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = lock(&registry().counters);
    Counter(Arc::clone(map.entry(name.to_string()).or_default()))
}

/// A last-write-wins `f64` gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge (no-op while the recorder is off).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge via a compare-exchange
    /// loop, so concurrent adjustments — e.g. queue-depth increments from
    /// several admission threads — never lose updates (no-op while the
    /// recorder is off).
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Returns (creating if needed) the gauge registered under `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock(&registry().gauges);
    Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
}

/// A log2-bucketed `u64` histogram handle (65 buckets: zero plus one per
/// power of two). Recording is three relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample (no-op while the recorder is off).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let b = bucket_of(v);
        self.0.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// Bucket index for value `v`: 0 for 0, else `64 - leading_zeros(v)`.
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Returns (creating if needed) the histogram registered under `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = lock(&registry().histograms);
    Histogram(Arc::clone(map.entry(name.to_string()).or_insert_with(
        || {
            Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })
        },
    )))
}

/// Appends `v` to the named series (e.g. a per-iteration residual history).
/// No-op while the recorder is off.
pub fn series_push(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&registry().series)
        .entry(name.to_string())
        .or_default()
        .push(v);
}

/// Records a timestamped event (checkpoint written, solver breakdown,
/// rank death...). No-op while the recorder is off.
pub fn event(name: &str, detail: &str) {
    if !crate::enabled() {
        return;
    }
    lock(&registry().events).push((monotonic_ns(), name.to_string(), detail.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let _guard = crate::tests_lock();
        crate::set_enabled(true);
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), before + 4);
        // same name -> same underlying cell
        assert_eq!(counter("test.metrics.counter").get(), before + 4);

        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram("test.metrics.hist");
        let n0 = h.count();
        h.record(0);
        h.record(1);
        h.record(1023);
        assert_eq!(h.count(), n0 + 3);
        crate::set_enabled(false);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn series_and_events_record_in_order() {
        let _guard = crate::tests_lock();
        crate::set_enabled(true);
        series_push("test.metrics.series", 1.0);
        series_push("test.metrics.series", 0.5);
        event("test.metrics.event", "first");
        let snap = crate::snapshot();
        let s = snap
            .series
            .iter()
            .find(|(n, _)| n == "test.metrics.series")
            .expect("series present");
        assert_eq!(s.1, vec![1.0, 0.5]);
        assert!(snap.events.iter().any(|e| e.name == "test.metrics.event"));
        crate::set_enabled(false);
    }
}
