//! # ffw-geometry
//!
//! Geometric substrate of the FFW-Tomo inverse-scattering solver: the square
//! imaging domain with its `lambda/10` pixel grid, Morton (Z-order) indexing,
//! the MLFMA quad-tree cluster hierarchy (leaf = `0.8 lambda` = 8x8 pixels,
//! 16 sub-trees at the top computed level), and transmitter/receiver arrays.

#![warn(missing_docs)]

pub mod domain;
pub mod morton;
pub mod point;
pub mod quadtree;
pub mod transducer;

pub use domain::{Domain, PIXELS_PER_WAVELENGTH};
pub use morton::{morton_child_pos, morton_decode, morton_encode, morton_parent};
pub use point::{pt, Point2};
pub use quadtree::{Offset, QuadTree, LEAF_PIXELS, LEAF_SIDE, NEAR_OFFSETS, TOP_LEVEL};
pub use transducer::TransducerArray;
