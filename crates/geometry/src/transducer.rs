//! Transmitter and receiver arrays (the paper's Fig. 3 setup).
//!
//! Transmitters and receivers are modeled as points (Dirac deltas, Section
//! VI-A) placed on a circle around the imaging domain — the full ring for the
//! standard experiments, or a limited arc for the Fig. 2 limited-angle study.

use crate::point::Point2;

/// A set of point transducers (transmitters or receivers).
#[derive(Clone, Debug)]
pub struct TransducerArray {
    positions: Vec<Point2>,
}

impl TransducerArray {
    /// `count` transducers uniformly spaced on the full circle of `radius`
    /// centered at the origin, starting at angle 0.
    pub fn ring(count: usize, radius: f64) -> Self {
        Self::arc(count, radius, 0.0, 2.0 * std::f64::consts::PI)
    }

    /// `count` transducers uniformly spaced on an arc of angular width `span`
    /// starting at `start` (radians). For a full circle the endpoint is
    /// excluded; for a partial arc both endpoints are included.
    pub fn arc(count: usize, radius: f64, start: f64, span: f64) -> Self {
        assert!(count >= 1);
        assert!(radius > 0.0);
        let full = (span - 2.0 * std::f64::consts::PI).abs() < 1e-12;
        let denom = if full { count } else { (count - 1).max(1) };
        let positions = (0..count)
            .map(|i| {
                let theta = start + span * i as f64 / denom as f64;
                Point2::unit(theta) * radius
            })
            .collect();
        TransducerArray { positions }
    }

    /// Builds from explicit positions.
    pub fn from_positions(positions: Vec<Point2>) -> Self {
        assert!(!positions.is_empty());
        TransducerArray { positions }
    }

    /// Number of transducers.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the array is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of transducer `i`.
    pub fn position(&self, i: usize) -> Point2 {
        self.positions[i]
    }

    /// All positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Minimum distance from any transducer to the origin.
    pub fn min_radius(&self) -> f64 {
        self.positions
            .iter()
            .map(|p| p.norm())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_uniform_and_excludes_endpoint() {
        let a = TransducerArray::ring(8, 2.0);
        assert_eq!(a.len(), 8);
        for i in 0..8 {
            assert!((a.position(i).norm() - 2.0).abs() < 1e-14);
        }
        // first at angle 0, no duplicate at 2 pi
        assert!((a.position(0).x - 2.0).abs() < 1e-14);
        let d01 = a.position(0).dist(a.position(1));
        let d70 = a.position(7).dist(a.position(0));
        assert!(
            (d01 - d70).abs() < 1e-12,
            "uniform spacing incl. wraparound"
        );
    }

    #[test]
    fn limited_arc_includes_both_endpoints() {
        let a = TransducerArray::arc(5, 1.0, 0.0, std::f64::consts::FRAC_PI_2);
        assert!((a.position(0).angle()).abs() < 1e-14);
        assert!((a.position(4).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
        assert!((a.min_radius() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn single_transducer_arc() {
        let a = TransducerArray::arc(1, 3.0, 1.0, 0.5);
        assert_eq!(a.len(), 1);
        assert!((a.position(0).angle() - 1.0).abs() < 1e-14);
    }
}
