//! 2-D Morton (Z-order) index encoding.
//!
//! The paper uses Morton indexing "to ensure that spatially close clusters are
//! also close in memory" and so that parent/child clusters across levels land
//! on the same node under the sub-tree partitioning (Section IV-A). A
//! contiguous Morton range at the top computed level *is* a set of complete
//! sub-trees, which is exactly how `ffw-dist` assigns clusters to ranks.

/// Interleaves the low 16 bits of `v` with zeros: `abcd -> 0a0b0c0d`.
#[inline]
fn spread16(v: u32) -> u32 {
    let mut x = v & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Inverse of [`spread16`].
#[inline]
fn compact16(v: u32) -> u32 {
    let mut x = v & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x
}

/// Encodes grid coordinates (each < 2^16) into a Morton code.
/// `x` occupies even bits, `y` odd bits.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u32 {
    debug_assert!(x < 0x1_0000 && y < 0x1_0000);
    spread16(x) | (spread16(y) << 1)
}

/// Decodes a Morton code into `(x, y)`.
#[inline]
pub fn morton_decode(m: u32) -> (u32, u32) {
    (compact16(m), compact16(m >> 1))
}

/// Morton code of the parent cluster one level up.
#[inline]
pub fn morton_parent(m: u32) -> u32 {
    m >> 2
}

/// Child position (0..4) of a cluster within its parent, in Morton order:
/// 0 = (even x, even y), 1 = (odd x, even y), 2 = (even x, odd y), 3 = both odd.
#[inline]
pub fn morton_child_pos(m: u32) -> u32 {
    m & 0b11
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_codes() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
        assert_eq!(morton_encode(2, 3), 0b1110);
    }

    #[test]
    fn parent_child_relationship() {
        let m = morton_encode(5, 6);
        assert_eq!(morton_parent(m), morton_encode(2, 3));
        assert_eq!(morton_child_pos(m), 1); // x=5 odd, y=6 even -> position 1
    }

    #[test]
    fn child_pos_matches_parity() {
        for (x, y) in [(4u32, 4u32), (5, 4), (4, 5), (5, 5)] {
            let pos = morton_child_pos(morton_encode(x, y));
            assert_eq!(pos, (x & 1) | ((y & 1) << 1));
        }
    }

    proptest! {
        #[test]
        fn roundtrip(x in 0u32..65536, y in 0u32..65536) {
            let (dx, dy) = morton_decode(morton_encode(x, y));
            prop_assert_eq!((dx, dy), (x, y));
        }

        #[test]
        fn parent_is_coordinate_halving(x in 0u32..65536, y in 0u32..65536) {
            let p = morton_parent(morton_encode(x, y));
            prop_assert_eq!(morton_decode(p), (x / 2, y / 2));
        }

        #[test]
        fn locality_within_quad(x in 0u32..32768, y in 0u32..32768) {
            // The four children of any parent are contiguous in Morton order.
            let base = morton_encode(2 * x, 2 * y);
            let codes = [
                morton_encode(2 * x, 2 * y),
                morton_encode(2 * x + 1, 2 * y),
                morton_encode(2 * x, 2 * y + 1),
                morton_encode(2 * x + 1, 2 * y + 1),
            ];
            for (i, c) in codes.iter().enumerate() {
                prop_assert_eq!(*c, base + i as u32);
            }
        }
    }
}
