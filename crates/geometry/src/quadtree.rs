//! The MLFMA quad-tree cluster hierarchy over the pixel grid.
//!
//! Levels are numbered so that level `l` has `2^l x 2^l` clusters. The paper's
//! configuration (Section V-C): leaf clusters of `0.8 lambda` hold `8 x 8 = 64`
//! pixels; the highest *computed* level is level 2 (the `4 x 4 = 16` clusters
//! whose sub-trees are the unit of distributed-memory partitioning — "up to 16
//! processes" in Section IV-A). A `102.4 lambda` domain (1024^2 px) has leaf
//! level 7, i.e. the paper's "eight levels" counting 0..=7.
//!
//! Pixels are stored in *tree order*: leaves in Morton order, row-major within
//! a leaf. All solver vectors use this layout; conversion permutations to/from
//! row-major grid order are provided.

use crate::domain::Domain;
use crate::morton::{morton_decode, morton_encode};
use crate::point::{pt, Point2};

/// Pixels per leaf-cluster side (leaf = 0.8 lambda at lambda/10 pixels).
pub const LEAF_SIDE: usize = 8;
/// Pixels per leaf cluster.
pub const LEAF_PIXELS: usize = LEAF_SIDE * LEAF_SIDE;
/// The highest computed level: 4 x 4 = 16 clusters, the paper's sub-tree roots.
pub const TOP_LEVEL: u8 = 2;

/// Relative cluster offset `(dx, dy)` used to classify near-field and
/// translation operator types.
pub type Offset = (i8, i8);

/// The 9 near-field offsets (self + 8 adjacent), in row-major order.
pub const NEAR_OFFSETS: [Offset; 9] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (0, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Quad-tree geometry for a square pixel grid.
#[derive(Clone, Debug)]
pub struct QuadTree {
    n_side_px: usize,
    leaf_level: u8,
    side: f64,
}

impl QuadTree {
    /// Builds the tree for a domain. The pixel grid side must be
    /// `LEAF_SIDE * 2^m` with `m >= TOP_LEVEL` (so at least 32 x 32 pixels).
    pub fn new(domain: &Domain) -> Self {
        let n = domain.n_side();
        assert!(
            n.is_multiple_of(LEAF_SIDE) && (n / LEAF_SIDE).is_power_of_two(),
            "grid side {n} must be LEAF_SIDE * 2^m"
        );
        let leaves_per_side = n / LEAF_SIDE;
        let leaf_level = leaves_per_side.trailing_zeros() as u8;
        assert!(
            leaf_level >= TOP_LEVEL,
            "need at least {} leaves per side (grid >= {} px), got {}",
            1 << TOP_LEVEL,
            LEAF_SIDE << TOP_LEVEL,
            leaves_per_side
        );
        QuadTree {
            n_side_px: n,
            leaf_level,
            side: domain.side(),
        }
    }

    /// Level index of the leaf clusters.
    pub fn leaf_level(&self) -> u8 {
        self.leaf_level
    }

    /// Computed levels, top (coarsest) first: `TOP_LEVEL..=leaf_level`.
    pub fn levels(&self) -> impl DoubleEndedIterator<Item = u8> {
        TOP_LEVEL..=self.leaf_level
    }

    /// Number of tree levels counted the paper's way (levels 0..=leaf).
    pub fn depth(&self) -> usize {
        self.leaf_level as usize + 1
    }

    /// Clusters per side at `level`.
    pub fn clusters_per_side(&self, level: u8) -> usize {
        1usize << level
    }

    /// Total clusters at `level`.
    pub fn n_clusters(&self, level: u8) -> usize {
        1usize << (2 * level)
    }

    /// Number of leaf clusters.
    pub fn n_leaves(&self) -> usize {
        self.n_clusters(self.leaf_level)
    }

    /// Total number of pixels.
    pub fn n_pixels(&self) -> usize {
        self.n_side_px * self.n_side_px
    }

    /// Cluster side length at `level`.
    pub fn cluster_width(&self, level: u8) -> f64 {
        self.side / self.clusters_per_side(level) as f64
    }

    /// Center of the cluster with Morton index `m` at `level` (domain centered
    /// at the origin).
    pub fn cluster_center(&self, level: u8, m: u32) -> Point2 {
        let (ix, iy) = morton_decode(m);
        let w = self.cluster_width(level);
        let half = 0.5 * self.side;
        pt((ix as f64 + 0.5) * w - half, (iy as f64 + 0.5) * w - half)
    }

    /// Tree-order index of the pixel at grid coordinates `(px, py)`:
    /// leaves in Morton order, row-major inside each leaf.
    #[inline]
    pub fn pixel_tree_index(&self, px: usize, py: usize) -> usize {
        debug_assert!(px < self.n_side_px && py < self.n_side_px);
        let leaf = morton_encode((px / LEAF_SIDE) as u32, (py / LEAF_SIDE) as u32) as usize;
        leaf * LEAF_PIXELS + (py % LEAF_SIDE) * LEAF_SIDE + (px % LEAF_SIDE)
    }

    /// Inverse of [`Self::pixel_tree_index`].
    #[inline]
    pub fn pixel_grid_coords(&self, tree_idx: usize) -> (usize, usize) {
        let leaf = (tree_idx / LEAF_PIXELS) as u32;
        let local = tree_idx % LEAF_PIXELS;
        let (lx, ly) = morton_decode(leaf);
        (
            lx as usize * LEAF_SIDE + local % LEAF_SIDE,
            ly as usize * LEAF_SIDE + local / LEAF_SIDE,
        )
    }

    /// Physical center of the pixel with the given tree-order index.
    pub fn pixel_center_tree(&self, domain: &Domain, tree_idx: usize) -> Point2 {
        let (px, py) = self.pixel_grid_coords(tree_idx);
        domain.pixel_center(px, py)
    }

    /// Permutation `perm[grid_rm_index] = tree_index`.
    pub fn grid_to_tree_perm(&self) -> Vec<u32> {
        let n = self.n_side_px;
        let mut perm = vec![0u32; n * n];
        for py in 0..n {
            for px in 0..n {
                perm[py * n + px] = self.pixel_tree_index(px, py) as u32;
            }
        }
        perm
    }

    /// Reorders a grid row-major vector into tree order.
    pub fn to_tree_order<T: Copy + Default>(&self, grid: &[T]) -> Vec<T> {
        assert_eq!(grid.len(), self.n_pixels());
        let n = self.n_side_px;
        let mut out = vec![T::default(); grid.len()];
        for py in 0..n {
            for px in 0..n {
                out[self.pixel_tree_index(px, py)] = grid[py * n + px];
            }
        }
        out
    }

    /// Reorders a tree-order vector back to grid row-major order.
    pub fn to_grid_order<T: Copy + Default>(&self, tree: &[T]) -> Vec<T> {
        assert_eq!(tree.len(), self.n_pixels());
        let n = self.n_side_px;
        let mut out = vec![T::default(); tree.len()];
        for py in 0..n {
            for px in 0..n {
                out[py * n + px] = tree[self.pixel_tree_index(px, py)];
            }
        }
        out
    }

    /// All translation-operator offset types that can occur at any level:
    /// `max(|dx|, |dy|) in {2, 3}` — exactly the paper's 40 types (Table I).
    pub fn all_interaction_offsets() -> Vec<Offset> {
        let mut v = Vec::with_capacity(40);
        for dy in -3i8..=3 {
            for dx in -3i8..=3 {
                if dx.abs().max(dy.abs()) >= 2 {
                    v.push((dx, dy));
                }
            }
        }
        debug_assert_eq!(v.len(), 40);
        v
    }

    /// Interaction-list offsets for a cluster with coordinate parities
    /// `(px, py)` at a level *below* the top: children of the parent's
    /// neighbours that are not the cluster's own neighbours (up to 27, the
    /// paper's `6x6 - 9`).
    pub fn interaction_offsets_for_parity(px: u32, py: u32) -> Vec<Offset> {
        let ok = |p: u32, d: i8| -> bool {
            // parent displacement floor((p+d)/2) - 0 must be in [-1, 1]
            let t = p as i32 + d as i32;
            let parent = t.div_euclid(2);
            (-1..=1).contains(&parent)
        };
        let mut v = Vec::with_capacity(27);
        for dy in -3i8..=3 {
            for dx in -3i8..=3 {
                if dx.abs().max(dy.abs()) >= 2 && ok(px & 1, dx) && ok(py & 1, dy) {
                    v.push((dx, dy));
                }
            }
        }
        debug_assert_eq!(v.len(), 27);
        v
    }

    /// Iterates the far-field interaction list of cluster `(ix, iy)` at
    /// `level`: yields `(src_ix, src_iy, offset)` for each source cluster that
    /// translates *into* this cluster. At the top computed level, all
    /// non-adjacent clusters interact; below it, the parity rule applies.
    pub fn interaction_list(&self, level: u8, ix: usize, iy: usize) -> Vec<(usize, usize, Offset)> {
        let n = self.clusters_per_side(level) as i64;
        let offsets = if level == TOP_LEVEL {
            Self::all_interaction_offsets()
        } else {
            Self::interaction_offsets_for_parity(ix as u32, iy as u32)
        };
        let mut out = Vec::with_capacity(offsets.len());
        for (dx, dy) in offsets {
            let sx = ix as i64 + dx as i64;
            let sy = iy as i64 + dy as i64;
            if sx >= 0 && sx < n && sy >= 0 && sy < n {
                out.push((sx as usize, sy as usize, (dx, dy)));
            }
        }
        out
    }

    /// Near-field neighbour list of leaf cluster `(ix, iy)`: in-bounds subset
    /// of the 9 offsets, as `(src_ix, src_iy, offset)`.
    pub fn near_list(&self, ix: usize, iy: usize) -> Vec<(usize, usize, Offset)> {
        let n = self.clusters_per_side(self.leaf_level) as i64;
        let mut out = Vec::with_capacity(9);
        for (dx, dy) in NEAR_OFFSETS {
            let sx = ix as i64 + dx as i64;
            let sy = iy as i64 + dy as i64;
            if sx >= 0 && sx < n && sy >= 0 && sy < n {
                out.push((sx as usize, sy as usize, (dx, dy)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tree(n_px: usize) -> QuadTree {
        QuadTree::new(&Domain::new(n_px, 1.0))
    }

    #[test]
    fn paper_level_counts() {
        // 1024 px (102.4 lambda): leaves per side = 128 -> leaf level 7,
        // "a quad-tree structure with eight levels" (paper Section V-C).
        let t = tree(1024);
        assert_eq!(t.leaf_level(), 7);
        assert_eq!(t.depth(), 8);
        assert_eq!(t.n_clusters(TOP_LEVEL), 16); // 16 sub-trees (Section IV-A)
        assert_eq!(t.n_leaves(), 128 * 128);
        assert_eq!(t.levels().count(), 6); // computed levels 2..=7
    }

    #[test]
    fn cluster_geometry() {
        let t = tree(64); // 6.4 lambda, leaf level 3
        assert_eq!(t.leaf_level(), 3);
        assert!(
            (t.cluster_width(3) - 0.8).abs() < 1e-12,
            "0.8 lambda leaves"
        );
        // Cluster (0,0) center at top level: -D/2 + w/2 in both coords.
        let c = t.cluster_center(2, 0);
        assert!((c.x - (-3.2 + 0.8)).abs() < 1e-12);
        assert!((c.y - (-3.2 + 0.8)).abs() < 1e-12);
    }

    #[test]
    fn tree_index_roundtrip() {
        let t = tree(32);
        let mut seen = HashSet::new();
        for py in 0..32 {
            for px in 0..32 {
                let idx = t.pixel_tree_index(px, py);
                assert!(idx < t.n_pixels());
                assert!(seen.insert(idx), "bijective");
                assert_eq!(t.pixel_grid_coords(idx), (px, py));
            }
        }
    }

    #[test]
    fn tree_order_groups_leaves_contiguously() {
        let t = tree(32);
        // Pixels of leaf (0,0) occupy tree indices 0..64.
        for py in 0..LEAF_SIDE {
            for px in 0..LEAF_SIDE {
                assert!(t.pixel_tree_index(px, py) < LEAF_PIXELS);
            }
        }
        // All leaves share the same internal (row-major) pixel layout.
        let a = t.pixel_tree_index(3, 5) % LEAF_PIXELS;
        let b = t.pixel_tree_index(8 + 3, 16 + 5) % LEAF_PIXELS;
        assert_eq!(a, b);
    }

    #[test]
    fn order_conversions_invert() {
        let t = tree(32);
        let grid: Vec<u32> = (0..t.n_pixels() as u32).collect();
        let tr = t.to_tree_order(&grid);
        let back = t.to_grid_order(&tr);
        assert_eq!(grid, back);
        let perm = t.grid_to_tree_perm();
        for (g, &p) in perm.iter().enumerate() {
            assert_eq!(tr[p as usize], grid[g]);
        }
    }

    #[test]
    fn forty_offset_types_and_27_partners() {
        assert_eq!(QuadTree::all_interaction_offsets().len(), 40);
        for (px, py) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
            assert_eq!(
                QuadTree::interaction_offsets_for_parity(px, py).len(),
                27,
                "parity ({px},{py})"
            );
        }
        // The union over parities is exactly the 40 types.
        let mut union = HashSet::new();
        for (px, py) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
            union.extend(QuadTree::interaction_offsets_for_parity(px, py));
        }
        assert_eq!(union.len(), 40);
    }

    /// Every cluster pair is covered exactly once: either leaf-adjacent (near
    /// field) or in the interaction list of exactly one ancestor level.
    #[test]
    fn interaction_lists_tile_all_pairs_exactly_once() {
        let t = tree(64); // leaf level 3: levels 2,3
        let leaf_n = t.clusters_per_side(t.leaf_level());
        for ay in 0..leaf_n {
            for ax in 0..leaf_n {
                for by in 0..leaf_n {
                    for bx in 0..leaf_n {
                        let adjacent = (ax as i64 - bx as i64).abs() <= 1
                            && (ay as i64 - by as i64).abs() <= 1;
                        // count coverage over levels
                        let mut covered = 0;
                        let (mut cax, mut cay, mut cbx, mut cby) = (ax, ay, bx, by);
                        for level in t.levels().rev() {
                            if t.interaction_list(level, cax, cay)
                                .iter()
                                .any(|&(sx, sy, _)| (sx, sy) == (cbx, cby))
                            {
                                covered += 1;
                            }
                            let _ = level;
                            cax /= 2;
                            cay /= 2;
                            cbx /= 2;
                            cby /= 2;
                        }
                        if adjacent {
                            assert_eq!(covered, 0, "adjacent pair must be near-field only");
                        } else {
                            assert_eq!(
                                covered, 1,
                                "pair ({ax},{ay})-({bx},{by}) covered {covered} times"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn near_list_boundary_clipping() {
        let t = tree(32);
        assert_eq!(t.near_list(0, 0).len(), 4);
        assert_eq!(t.near_list(1, 1).len(), 9);
        let n = t.clusters_per_side(t.leaf_level()) - 1;
        assert_eq!(t.near_list(n, n).len(), 4);
        assert_eq!(t.near_list(n, 1).len(), 6);
    }

    #[test]
    #[should_panic(expected = "must be LEAF_SIDE")]
    fn rejects_bad_grid() {
        tree(48);
    }
}
