//! The square imaging domain and its pixel discretization.
//!
//! The paper's setup (Fig. 3): a square domain `V` of side `D`, discretized
//! into `N` square pixels of side `lambda / 10` centered at the origin.

use crate::point::{pt, Point2};

/// Pixels per wavelength used throughout the paper (Section III-A).
pub const PIXELS_PER_WAVELENGTH: usize = 10;

/// A square imaging domain with a regular pixel grid, centered at the origin.
#[derive(Clone, Debug, PartialEq)]
pub struct Domain {
    n_side: usize,
    wavelength: f64,
    pixel: f64,
}

impl Domain {
    /// Creates a domain of `n_side x n_side` pixels for the given wavelength,
    /// with the paper's lambda/10 pixel size.
    ///
    /// `n_side` must be a multiple of the MLFMA leaf size (8) for tree
    /// construction; the domain itself only requires `n_side >= 1`.
    pub fn new(n_side: usize, wavelength: f64) -> Self {
        assert!(n_side >= 1);
        assert!(wavelength > 0.0);
        Domain {
            n_side,
            wavelength,
            pixel: wavelength / PIXELS_PER_WAVELENGTH as f64,
        }
    }

    /// Domain whose side is `side_lambda` wavelengths (e.g. 102.4 -> 1024 px).
    pub fn from_side_lambda(side_lambda: f64, wavelength: f64) -> Self {
        let n = (side_lambda * PIXELS_PER_WAVELENGTH as f64).round() as usize;
        Domain::new(n, wavelength)
    }

    /// Domain with an explicit pixel size, decoupled from the wavelength —
    /// used by the multi-frequency reconstruction, where one physical grid
    /// (sized `lambda/10` at the *highest* frequency) is shared by all
    /// frequencies. The pixel size must still resolve the field
    /// (`pixel <= lambda/10` recommended).
    pub fn with_pixel_size(n_side: usize, wavelength: f64, pixel: f64) -> Self {
        assert!(n_side >= 1);
        assert!(wavelength > 0.0 && pixel > 0.0);
        Domain {
            n_side,
            wavelength,
            pixel,
        }
    }

    /// Pixels per side.
    pub fn n_side(&self) -> usize {
        self.n_side
    }

    /// Total number of pixels `N`.
    pub fn n_pixels(&self) -> usize {
        self.n_side * self.n_side
    }

    /// Illumination wavelength in free space.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Background wavenumber `k0 = 2 pi / lambda`.
    pub fn k0(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.wavelength
    }

    /// Pixel side length (`lambda / 10`).
    pub fn pixel_size(&self) -> f64 {
        self.pixel
    }

    /// Physical side length `D` of the domain.
    pub fn side(&self) -> f64 {
        self.pixel * self.n_side as f64
    }

    /// Side length in wavelengths.
    pub fn side_lambda(&self) -> f64 {
        self.side() / self.wavelength
    }

    /// Radius of the equal-area disk replacing each square pixel in the
    /// collocation discretization: `pi a^2 = pixel^2`.
    pub fn equivalent_radius(&self) -> f64 {
        self.pixel / std::f64::consts::PI.sqrt()
    }

    /// Center position of pixel `(ix, iy)` (column, row), domain centered at
    /// the origin.
    #[inline]
    pub fn pixel_center(&self, ix: usize, iy: usize) -> Point2 {
        debug_assert!(ix < self.n_side && iy < self.n_side);
        let half = 0.5 * self.side();
        pt(
            (ix as f64 + 0.5) * self.pixel - half,
            (iy as f64 + 0.5) * self.pixel - half,
        )
    }

    /// Pixel center by row-major grid index `iy * n_side + ix`.
    #[inline]
    pub fn pixel_center_rm(&self, idx: usize) -> Point2 {
        self.pixel_center(idx % self.n_side, idx / self.n_side)
    }

    /// Radius of the smallest origin-centered circle containing the domain.
    pub fn bounding_radius(&self) -> f64 {
        0.5 * self.side() * std::f64::consts::SQRT_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        // 102.4 lambda x 102.4 lambda -> 1024^2 = 1M unknowns (paper Section V-C)
        let d = Domain::from_side_lambda(102.4, 1.0);
        assert_eq!(d.n_side(), 1024);
        assert_eq!(d.n_pixels(), 1 << 20);
        assert!((d.side_lambda() - 102.4).abs() < 1e-12);
        // 204.8 lambda -> 4M (Fig 13), 409.6 lambda -> 16M (Table III)
        assert_eq!(Domain::from_side_lambda(204.8, 1.0).n_pixels(), 1 << 22);
        assert_eq!(Domain::from_side_lambda(409.6, 1.0).n_pixels(), 1 << 24);
    }

    #[test]
    fn geometry_is_centered() {
        let d = Domain::new(4, 2.0);
        assert!((d.pixel_size() - 0.2).abs() < 1e-15);
        let c00 = d.pixel_center(0, 0);
        let c33 = d.pixel_center(3, 3);
        assert!((c00 + c33).norm() < 1e-15, "symmetric about origin");
        assert!((c00.x - (-0.3)).abs() < 1e-15);
        // neighbouring pixel centers are one pixel apart
        let c10 = d.pixel_center(1, 0);
        assert!((c10.x - c00.x - d.pixel_size()).abs() < 1e-15);
        assert_eq!(d.pixel_center_rm(5), d.pixel_center(1, 1));
    }

    #[test]
    fn k0_and_equivalent_radius() {
        let d = Domain::new(8, 1.0);
        assert!((d.k0() - 2.0 * std::f64::consts::PI).abs() < 1e-14);
        let a = d.equivalent_radius();
        assert!((std::f64::consts::PI * a * a - d.pixel_size().powi(2)).abs() < 1e-15);
        assert!((d.bounding_radius() - 0.4 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
