//! Minimal 2-D point/vector type.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the 2-D imaging plane, in physical units
/// (wavelengths scaled by the configured wavelength).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// Shorthand constructor for [`Point2`].
#[inline(always)]
pub const fn pt(x: f64, y: f64) -> Point2 {
    Point2 { x, y }
}

impl Point2 {
    /// Origin.
    pub const ZERO: Point2 = pt(0.0, 0.0);

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, o: Point2) -> f64 {
        (self.x - o.x).hypot(self.y - o.y)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Point2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// Polar angle in (-pi, pi].
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at the given angle.
    #[inline]
    pub fn unit(theta: f64) -> Point2 {
        let (s, c) = theta.sin_cos();
        pt(c, s)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, o: Point2) -> Point2 {
        pt(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, o: Point2) -> Point2 {
        pt(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, s: f64) -> Point2 {
        pt(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, s: f64) -> Point2 {
        pt(self.x / s, self.y / s)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        pt(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let a = pt(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dist(Point2::ZERO), 5.0);
        assert_eq!(a.dot(pt(1.0, 1.0)), 7.0);
        assert_eq!((a - a).norm(), 0.0);
        assert_eq!((a * 2.0).x, 6.0);
        assert_eq!((a / 2.0).y, 2.0);
        assert_eq!((-a).x, -3.0);
    }

    #[test]
    fn unit_and_angle() {
        let u = Point2::unit(std::f64::consts::FRAC_PI_2);
        assert!((u.x).abs() < 1e-15 && (u.y - 1.0).abs() < 1e-15);
        assert!((pt(0.0, 2.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }
}
