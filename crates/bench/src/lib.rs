//! # ffw-bench
//!
//! Experiment harnesses: one binary per table/figure of the paper (see
//! DESIGN.md section 3 for the index), plus Criterion micro-benchmarks.
//! Each binary prints the paper's reported values next to the reproduced
//! ones and writes a machine-readable JSON record under `results/`.

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

/// Writes an experiment record as pretty JSON under `results/<name>.json`
/// (workspace root), creating the directory if needed. Returns the path.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let mut dir = std::env::var("FFW_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir)?;
    dir.push(format!("{name}.json"));
    let mut f = std::fs::File::create(&dir)?;
    let s = serde_json::to_string_pretty(value).expect("serializable");
    f.write_all(s.as_bytes())?;
    writeln!(f)?;
    Ok(dir)
}

/// Renders a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Parses `--quick` / `--full` / `--size N` style flags shared by the
/// experiment binaries.
pub struct Args {
    /// Reduced problem sizes for smoke runs.
    pub quick: bool,
    /// Larger (paper-shaped) problem sizes.
    pub full: bool,
}

impl Args {
    /// Parses from `std::env::args`.
    pub fn parse() -> Args {
        let mut a = Args {
            quick: false,
            full: false,
        };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => a.quick = true,
                "--full" => a.full = true,
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        std::env::set_var(
            "FFW_RESULTS_DIR",
            std::env::temp_dir().join("ffw-test-results"),
        );
        let path = write_json("unit_test", &vec![1, 2, 3]).expect("write");
        let s = std::fs::read_to_string(path).expect("read");
        assert!(s.contains('1') && s.contains('3'));
    }
}
