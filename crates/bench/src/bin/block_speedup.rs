//! Block multi-RHS speedup harness: the tentpole measurement for the fused
//! `apply_block` path, compared against the committed `BENCH_pr5.json` at
//! the workspace root.
//!
//! Two legs on the pinned 32×32 workload:
//!
//! * **apply leg** — one fused width-8 `MlfmaEngine::apply_block` panel vs
//!   the same 8 columns applied one `apply` at a time (median of reps).
//!   The fused traversal loads each translation/aggregation operator once
//!   per panel instead of once per column, which is where the speedup
//!   comes from; per-column arithmetic is identical, so the harness also
//!   verifies every column of the panel against its own single-RHS apply
//!   (must agree to <= 1e-12).
//! * **DBIM leg** — the full serial reconstruction (8 transmitters,
//!   2 outer iterations) at `--batch 8` vs `--batch 1`, as end-to-end
//!   context.
//!
//! Default mode measures, writes the fresh record to
//! `results/BENCH_pr5.json`, and gates: the apply-leg speedup must be at
//! least [`SPEEDUP_FLOOR`] and the worst per-column relative difference at
//! most [`COLUMN_TOL`]. Both gates are ratios/accuracies of the same
//! in-process run, so they are stable across machines (absolute wall times
//! are recorded but never gated). `--write-baseline` (over)writes the
//! committed `BENCH_pr5.json` at the workspace root.

use ffw_geometry::Domain;
use ffw_inverse::DbimConfig;
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Panel width of the fused leg (matches the DBIM default batch cap).
const WIDTH: usize = 8;
/// Repetitions per timed leg; the median is reported.
const REPS: usize = 9;
/// Minimum accepted fused-vs-single apply speedup (the gate).
const SPEEDUP_FLOOR: f64 = 1.3;
/// Maximum accepted per-column drift of the fused panel (the gate).
const COLUMN_TOL: f64 = 1e-12;

/// The committed record; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct BlockBenchRecord {
    schema: String,
    width: u64,
    reps: u64,
    /// Median seconds for `WIDTH` sequential single-RHS applies.
    secs_single_applies: f64,
    /// Median seconds for one fused `WIDTH`-wide `apply_block`.
    secs_block_apply: f64,
    /// `secs_single_applies / secs_block_apply` — the headline number.
    apply_speedup: f64,
    /// Worst per-column relative difference of the fused panel vs its own
    /// single-RHS applies.
    max_column_rel_diff: f64,
    /// End-to-end context: full serial DBIM (8 tx, 2 iterations).
    secs_dbim_batch1: f64,
    secs_dbim_batch8: f64,
    dbim_speedup: f64,
}

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            ffw_numerics::c64(a, b)
        })
        .collect()
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times the apply leg and verifies the panel column-by-column.
fn measure_apply() -> (f64, f64, f64) {
    let domain = Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let eng = MlfmaEngine::new(plan, Arc::new(Pool::new(4)));
    let n = eng.n();
    let xs: Vec<Vec<C64>> = (0..WIDTH).map(|b| random_x(n, 100 + b as u64)).collect();
    let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();

    // Warm up (operator caches, pool spin-up) before timing either leg.
    let mut ys = vec![vec![C64::ZERO; n]; WIDTH];
    eng.apply_block(&refs, &mut ys);
    let mut singles = vec![vec![C64::ZERO; n]; WIDTH];
    for (x, y) in xs.iter().zip(singles.iter_mut()) {
        eng.apply(x, y);
    }
    let max_col_rel_diff = ys
        .iter()
        .zip(&singles)
        .map(|(a, b)| rel_diff(a, b))
        .fold(0.0f64, f64::max);

    let secs_single = median(
        (0..REPS)
            .map(|_| {
                let sw = ffw_obs::Stopwatch::start();
                for (x, y) in xs.iter().zip(singles.iter_mut()) {
                    eng.apply(x, y);
                }
                sw.elapsed_secs()
            })
            .collect(),
    );
    let secs_block = median(
        (0..REPS)
            .map(|_| {
                let sw = ffw_obs::Stopwatch::start();
                eng.apply_block(&refs, &mut ys);
                sw.elapsed_secs()
            })
            .collect(),
    );
    (secs_single, secs_block, max_col_rel_diff)
}

/// Times the full serial DBIM at the given batch width.
fn measure_dbim(batch: usize) -> f64 {
    let scene = SceneConfig::new(32, 8, 16);
    let recon = Reconstruction::new(&scene);
    let phantom = ffw_phantom::Cylinder {
        center: ffw_geometry::Point2::ZERO,
        radius: 0.25 * recon.domain().side(),
        contrast: 0.1,
    };
    let measured = recon.synthesize(&phantom);
    let cfg = DbimConfig {
        iterations: 2,
        batch: Some(batch),
        ..Default::default()
    };
    let sw = ffw_obs::Stopwatch::start();
    let _ = recon.run_dbim_with(&measured, &cfg).expect("dbim");
    sw.elapsed_secs()
}

fn measure() -> BlockBenchRecord {
    let (secs_single, secs_block, max_col_rel_diff) = measure_apply();
    let _warm = measure_dbim(1);
    let secs_dbim_batch1 = measure_dbim(1);
    let secs_dbim_batch8 = measure_dbim(8);
    BlockBenchRecord {
        schema: "ffw-bench-block-speedup/1".into(),
        width: WIDTH as u64,
        reps: REPS as u64,
        secs_single_applies: secs_single,
        secs_block_apply: secs_block,
        apply_speedup: secs_single / secs_block,
        max_column_rel_diff: max_col_rel_diff,
        secs_dbim_batch1,
        secs_dbim_batch8,
        dbim_speedup: secs_dbim_batch1 / secs_dbim_batch8,
    }
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr5.json")
}

fn print_record(r: &BlockBenchRecord) {
    println!(
        "apply: {WIDTH} singles {:.4}s vs fused panel {:.4}s = {:.2}x speedup \
         (median of {REPS}), worst column drift {:.2e}",
        r.secs_single_applies, r.secs_block_apply, r.apply_speedup, r.max_column_rel_diff
    );
    println!(
        "dbim (8 tx, 2 iters): batch 1 {:.2}s vs batch 8 {:.2}s = {:.2}x",
        r.secs_dbim_batch1, r.secs_dbim_batch8, r.dbim_speedup
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr5", &fresh).expect("write fresh record");
    let mut fails = Vec::new();
    if fresh.apply_speedup < SPEEDUP_FLOOR {
        fails.push(format!(
            "fused apply speedup {:.2}x is below the {SPEEDUP_FLOOR}x floor",
            fresh.apply_speedup
        ));
    }
    if fresh.max_column_rel_diff > COLUMN_TOL {
        fails.push(format!(
            "fused panel drifted from single-RHS: {:.2e} > {COLUMN_TOL:.0e}",
            fresh.max_column_rel_diff
        ));
    }
    if fails.is_empty() {
        println!("block speedup gate: OK");
    } else {
        eprintln!("block speedup gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
