//! Fig. 11: weak scaling across illuminations, real vs adjusted.

use ffw_bench::{print_table, write_json};
use ffw_perf::{calibrate, fig11, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    let series = fig11(&mut lib, scale);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.1}", p.seconds),
                format!("{:.1}%", 100.0 * p.efficiency),
                format!("{:.1}", p.adjusted_seconds.unwrap()),
                format!("{:.1}%", 100.0 * p.adjusted_efficiency.unwrap()),
            ]
        })
        .collect();
    print_table(
        "Fig 11: weak scaling across illuminations (one illumination per node)",
        &["nodes", "real s", "real eff", "adjusted s", "adjusted eff"],
        &rows,
    );
    println!("paper at 16x: real 77.2%, adjusted 89.9%");
    let chart = ffw_tomo::viz::write_svg_chart(
        format!(
            "{}/fig11.svg",
            std::env::var("FFW_RESULTS_DIR").unwrap_or_else(|_| "results".into())
        ),
        "Fig 11: weak scaling across illuminations",
        "nodes",
        "efficiency",
        true,
        &[
            ffw_tomo::viz::Series {
                label: "real",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.efficiency))
                    .collect(),
            },
            ffw_tomo::viz::Series {
                label: "adjusted",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.adjusted_efficiency.unwrap()))
                    .collect(),
            },
        ],
    );
    if let Ok(()) = chart {
        println!("wrote results/fig11.svg");
    }
    write_json("fig11", &series).expect("write results");
}
