//! Section V-B accuracy study: MLFMA matvec error relative to the naive
//! direct O(N^2) product, versus the accuracy parameters — plus the O(N) vs
//! O(N^2) timing crossover that motivates the whole algorithm.

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::{Domain, QuadTree};
use ffw_greens::{tree_positions, DirectG0, Kernel};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_obs::Stopwatch;
use ffw_par::Pool;
use serde::Serialize;
use std::sync::Arc;

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            c64(a, b)
        })
        .collect()
}

#[derive(Serialize)]
struct AccuracyPoint {
    digits: f64,
    band: usize,
    rel_error: f64,
}

#[derive(Serialize)]
struct TimingPoint {
    n: usize,
    mlfma_ms: f64,
    direct_ms: Option<f64>,
}

fn main() {
    let args = Args::parse();
    let pool = || Arc::new(Pool::new(Pool::global().n_threads()));

    // --- accuracy vs parameters (ablation: truncation digits + band width) ---
    let domain = Domain::new(64, 1.0);
    let tree = QuadTree::new(&domain);
    let positions = tree_positions(&domain, &tree);
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let x = random_x(domain.n_pixels(), 42);
    let mut y_ref = vec![C64::ZERO; x.len()];
    DirectG0::new(kernel, &positions).apply(&x, &mut y_ref);
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (digits, band) in [
        (3.0, 6usize),
        (5.0, 8),
        (6.0, 12),
        (7.0, 16),
        (8.0, 16),
        (10.0, 20),
    ] {
        let acc = Accuracy {
            digits,
            interp_order: band,
            ..Accuracy::default()
        };
        let plan = Arc::new(MlfmaPlan::new(&domain, acc));
        let eng = MlfmaEngine::new(plan, pool());
        let mut y = vec![C64::ZERO; x.len()];
        eng.apply(&x, &mut y);
        let err = rel_diff(&y, &y_ref);
        rows.push(vec![
            format!("{digits}"),
            band.to_string(),
            format!("{err:.2e}"),
        ]);
        points.push(AccuracyPoint {
            digits,
            band,
            rel_error: err,
        });
    }
    print_table(
        "MLFMA matvec error vs accuracy parameters (4,096 unknowns, vs direct O(N^2))",
        &["digits d0", "interp band", "relative error"],
        &rows,
    );
    println!("paper setting: \"at most 1e-5 error relative to naive direct multiplication\"");
    println!("default (d0=7, band=16) must land at or below 1e-5.");

    // --- O(N) vs O(N^2) timing ---
    let sizes: &[usize] = if args.quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256]
    };
    let mut timing = Vec::new();
    let mut rows = Vec::new();
    for &px in sizes {
        let domain = Domain::new(px, 1.0);
        let tree = QuadTree::new(&domain);
        let positions = tree_positions(&domain, &tree);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let n = domain.n_pixels();
        let x = random_x(n, 7);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
        let eng = MlfmaEngine::new(plan, pool());
        let mut y = vec![C64::ZERO; n];
        eng.apply(&x, &mut y); // warm up
        let reps = if n <= 4096 { 5 } else { 2 };
        let t0 = Stopwatch::start();
        for _ in 0..reps {
            eng.apply(&x, &mut y);
        }
        let mlfma_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let direct_ms = if n <= 4096 {
            let t0 = Stopwatch::start();
            DirectG0::new(kernel, &positions).apply(&x, &mut y);
            Some(t0.elapsed().as_secs_f64() * 1e3)
        } else {
            None
        };
        rows.push(vec![
            n.to_string(),
            format!("{mlfma_ms:.2}"),
            direct_ms.map_or("-".into(), |d| format!("{d:.1}")),
            format!("{:.4}", mlfma_ms / n as f64),
        ]);
        timing.push(TimingPoint {
            n,
            mlfma_ms,
            direct_ms,
        });
    }
    print_table(
        "MLFMA O(N) vs direct O(N^2) matvec time",
        &["N", "MLFMA ms", "direct ms", "MLFMA us/unknown"],
        &rows,
    );
    println!("the MLFMA us/unknown column must stay roughly flat (O(N) scaling).");
    write_json("accuracy", &(points, timing)).expect("write results");
}
