//! Fig. 2: limited-angle transmitters/receivers — capturing multiple
//! scattering is critical when single-scattering waves miss the detectors.

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::Point2;
use ffw_inverse::BornConfig;
use ffw_phantom::{image_rel_error, Annulus, Phantom};
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    setup: String,
    born_image_error: f64,
    dbim_image_error: f64,
}

fn main() {
    let args = Args::parse();
    let (px, n_tx, n_rx, iters) = if args.quick {
        (32, 8, 16, 5)
    } else if args.full {
        (128, 32, 64, 25)
    } else {
        (64, 16, 32, 12)
    };
    let contrast = 0.20;
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (label, arc) in [
        ("full ring", None),
        (
            "180-degree arc",
            Some((-std::f64::consts::FRAC_PI_2, std::f64::consts::PI)),
        ),
        (
            "90-degree arc",
            Some((-std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_2)),
        ),
    ] {
        let mut scene = SceneConfig::new(px, n_tx, n_rx);
        if let Some((s, w)) = arc {
            scene = scene.with_arc(s, w);
        }
        let recon = Reconstruction::new(&scene);
        let d = recon.domain().side();
        let truth = Annulus {
            center: Point2::ZERO,
            inner: 0.18 * d,
            outer: 0.30 * d,
            contrast,
        };
        let truth_raster = truth.rasterize(recon.domain());
        let measured = recon.synthesize(&truth);
        let dbim = recon.run_dbim(&measured, iters).expect("dbim");
        let dbim_err = image_rel_error(&recon.image(&dbim.object), &truth_raster);
        let born = recon.run_born(&measured, &BornConfig::default());
        let born_err = image_rel_error(&recon.image(&born.object), &truth_raster);
        rows.push(vec![
            label.to_string(),
            format!("{born_err:.3}"),
            format!("{dbim_err:.3}"),
            format!("{:.1}x", born_err / dbim_err),
        ]);
        records.push(Record {
            setup: label.to_string(),
            born_image_error: born_err,
            dbim_image_error: dbim_err,
        });
    }
    print_table(
        &format!("Fig 2: limited-angle vs full-ring, contrast {contrast} ({px}x{px} px)"),
        &[
            "transducers",
            "Born img err",
            "DBIM img err",
            "DBIM advantage",
        ],
        &rows,
    );
    println!("paper: qualitative — the nonlinear reconstruction must beat the linear one at");
    println!("every aperture, and the linear one must degrade to artifacts (error >= 1) as");
    println!("the aperture narrows; full far-side recovery needs paper-scale illumination");
    println!("counts (1,024 tx, 50 iterations) beyond this harness's default budget.");
    write_json("fig02", &records).expect("write results");
}
