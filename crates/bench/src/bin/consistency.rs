//! Section V-E consistency check (serial vs 2-D-parallel) and the Section
//! IV-B buffer-aggregation ablation, on the real message-passing runtime.

use ffw_bench::{print_table, write_json};
use ffw_dist::{dist_dbim, DistMlfma};
use ffw_geometry::{Domain, Point2, TransducerArray};
use ffw_inverse::{dbim, synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Record {
    matvec_diffs: Vec<(usize, f64)>,
    aggregation_messages: u64,
    no_aggregation_messages: u64,
    aggregation_bytes: u64,
    no_aggregation_bytes: u64,
    dbim_image_diff: f64,
}

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            c64(a, b)
        })
        .collect()
}

fn main() {
    let domain = Domain::new(64, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let n = plan.n_pixels();
    let x = random_x(n, 99);
    let serial = MlfmaEngine::new(Arc::clone(&plan), Arc::new(Pool::new(1)));
    let mut y_ref = vec![C64::ZERO; n];
    serial.apply(&x, &mut y_ref);

    // --- matvec consistency across rank counts ---
    let mut matvec_diffs = Vec::new();
    let mut rows = Vec::new();
    for n_ranks in [2usize, 4, 8, 16] {
        let per = n / n_ranks;
        let plan2 = Arc::clone(&plan);
        let xr = &x;
        let (slices, _) = ffw_mpi::run(n_ranks, move |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let r = comm.rank();
            let eng = DistMlfma::new(&comm, Arc::clone(&plan2), members, true);
            let mut y = vec![C64::ZERO; per];
            eng.apply(&xr[r * per..(r + 1) * per], &mut y);
            y
        });
        let y: Vec<C64> = slices.into_iter().flatten().collect();
        let d = rel_diff(&y, &y_ref);
        rows.push(vec![n_ranks.to_string(), format!("{d:.2e}")]);
        matvec_diffs.push((n_ranks, d));
    }
    print_table(
        "serial vs distributed MLFMA matvec (paper V-E analogue: CPU-vs-GPU 7.15e-13)",
        &["sub-tree ranks", "relative difference"],
        &rows,
    );

    // --- buffer aggregation ablation (paper Section IV-B) ---
    let mut msg_counts = [0u64; 2];
    let mut byte_counts = [0u64; 2];
    for (i, aggregate) in [true, false].into_iter().enumerate() {
        let per = n / 4;
        let plan2 = Arc::clone(&plan);
        let xr = &x;
        let (_, handle) = ffw_mpi::run(4, move |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let r = comm.rank();
            let eng = DistMlfma::new(&comm, Arc::clone(&plan2), members, aggregate);
            let mut y = vec![C64::ZERO; per];
            eng.apply(&xr[r * per..(r + 1) * per], &mut y);
        });
        msg_counts[i] = handle.stats().total_messages();
        byte_counts[i] = handle.stats().total_bytes();
    }
    print_table(
        "buffer aggregation ablation (4 sub-tree ranks, one matvec)",
        &["variant", "messages", "bytes"],
        &[
            vec![
                "aggregated".into(),
                msg_counts[0].to_string(),
                byte_counts[0].to_string(),
            ],
            vec![
                "per-cluster".into(),
                msg_counts[1].to_string(),
                byte_counts[1].to_string(),
            ],
        ],
    );
    println!("aggregation must cut the handshake count with unchanged payload bytes.");

    // --- full 2-D-parallel DBIM vs serial ---
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(12, ring),
    );
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.6,
        contrast: 0.05,
    };
    let tree = ffw_geometry::QuadTree::new(&domain);
    let object = object_from_contrast(&domain, &tree, &truth.rasterize(&domain));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());
    let cfg = DbimConfig {
        iterations: 3,
        ..Default::default()
    };
    let serial_result = dbim(&setup, &g0, &measured, &cfg).expect("dbim");
    let (groups, subtree) = (2usize, 2usize);
    let plan2 = Arc::clone(&plan);
    let setup_ref = &setup;
    let measured_ref = &measured;
    let cfg_ref = &cfg;
    let (results, _) = ffw_mpi::run(groups * subtree, move |comm| {
        dist_dbim(
            &comm,
            setup_ref,
            Arc::clone(&plan2),
            measured_ref,
            groups,
            subtree,
            cfg_ref,
        )
    });
    let mut image = vec![C64::ZERO; setup.n_pixels()];
    for r in results.iter().take(subtree) {
        image[r.pixel_range.clone()].copy_from_slice(&r.object_local);
    }
    let dbim_diff = rel_diff(&image, &serial_result.object);
    println!(
        "\n2-D-parallel DBIM (2 groups x 2 sub-trees) vs serial image difference: {dbim_diff:.2e}"
    );
    println!("(paper: 7.15e-13 between the CPU and GPU executions)");

    write_json(
        "consistency",
        &Record {
            matvec_diffs,
            aggregation_messages: msg_counts[0],
            no_aggregation_messages: msg_counts[1],
            aggregation_bytes: byte_counts[0],
            no_aggregation_bytes: byte_counts[1],
            dbim_image_diff: dbim_diff,
        },
    )
    .expect("write results");
}
