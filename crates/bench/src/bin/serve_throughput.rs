//! Service-throughput harness for `ffw-serve`: drive an in-process job
//! engine with a mixed multi-tenant queue and gate the two properties the
//! service is built around, compared against the committed `BENCH_pr7.json`
//! at the workspace root.
//!
//! The workload is `JOBS` reconstruction jobs spread across `GEOMETRIES`
//! distinct scene geometries (size/tx/rx triples), submitted back-to-back
//! the way a saturated tenant mix would arrive, and run on `WORKERS`
//! workers sharing one plan cache. Two gates, both machine-independent:
//!
//! * **completion** — every accepted job must reach `Done`; the admission
//!   queue is sized so nothing is shed.
//! * **plan dedup** — jobs sharing a geometry must share one immutable
//!   `MlfmaPlan`, so cache hits must be at least `JOBS - GEOMETRIES`
//!   (each distinct geometry pays exactly one build).
//!
//! Wall-clock throughput (jobs/s) is recorded for trend-watching but never
//! gated — it depends on the machine. `--write-baseline` (over)writes the
//! committed `BENCH_pr7.json` at the workspace root; the default mode
//! writes the fresh record to `results/BENCH_pr7.json` and gates.

use crossbeam_channel::unbounded;
use ffw_serve::json::Json;
use ffw_serve::{Engine, JobState, ServeConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Total jobs in the mixed queue.
const JOBS: usize = 12;
/// Distinct (size, tx, rx) geometries the jobs cycle through.
const GEOMETRIES: [(u32, u32, u32); 3] = [(32, 2, 4), (32, 4, 8), (64, 2, 4)];
/// Worker threads sharing the plan cache.
const WORKERS: usize = 4;

/// The committed record; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct ServeBenchRecord {
    schema: String,
    jobs: u64,
    geometries: u64,
    workers: u64,
    /// Submit of the first job to terminal state of the last.
    secs_total: f64,
    /// `jobs / secs_total` — recorded, never gated.
    jobs_per_sec: f64,
    jobs_completed: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
}

fn job_json(i: usize) -> Json {
    let (size, tx, rx) = GEOMETRIES[i % GEOMETRIES.len()];
    let phantom = if i.is_multiple_of(2) {
        "cylinder"
    } else {
        "annulus"
    };
    Json::parse(&format!(
        r#"{{"id":"job-{i}","size":{size},"tx":{tx},"rx":{rx},"iterations":1,"phantom":"{phantom}"}}"#
    ))
    .expect("job json")
}

fn measure() -> ServeBenchRecord {
    let dir = std::env::temp_dir().join(format!("ffw-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        workers: WORKERS,
        queue_capacity: JOBS,
        ..ServeConfig::new(dir.clone())
    };
    let engine = Engine::open(cfg).expect("open engine");

    let sw = ffw_obs::Stopwatch::start();
    let (reply_tx, reply_rx) = unbounded();
    for i in 0..JOBS {
        engine.submit(&job_json(i), reply_tx.clone());
    }
    drop(reply_tx);
    // Progress/terminal events share the reply channel with admission
    // acks, so count decisions (accepted/rejected), not raw lines.
    let mut accepted = 0;
    let mut decided = 0;
    while decided < JOBS {
        let line = reply_rx.recv().expect("admission reply");
        if line.contains(r#""ev":"accepted""#) {
            accepted += 1;
            decided += 1;
        } else if line.contains(r#""ev":"rejected""#) {
            decided += 1;
        }
    }
    assert_eq!(accepted, JOBS, "the queue is sized to accept every job");

    let mut completed = 0;
    for i in 0..JOBS {
        let id = format!("job-{i}");
        loop {
            match engine.job_state(&id) {
                Some(JobState::Done) => {
                    completed += 1;
                    break;
                }
                Some(JobState::Failed | JobState::Cancelled) => break,
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
    let secs_total = sw.elapsed_secs();
    engine.drain(false);
    engine.join();

    let rec = ServeBenchRecord {
        schema: "ffw-bench-serve-throughput/1".into(),
        jobs: JOBS as u64,
        geometries: GEOMETRIES.len() as u64,
        workers: WORKERS as u64,
        secs_total,
        jobs_per_sec: JOBS as f64 / secs_total,
        jobs_completed: completed,
        plan_cache_hits: engine.plan_cache_hits(),
        plan_cache_misses: engine.plan_cache_misses(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    rec
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr7.json")
}

fn print_record(r: &ServeBenchRecord) {
    println!(
        "serve: {} jobs over {} geometries on {} workers in {:.2}s = {:.1} jobs/s",
        r.jobs, r.geometries, r.workers, r.secs_total, r.jobs_per_sec
    );
    println!(
        "plan cache: {} hits / {} misses (floor: hits >= jobs - geometries = {})",
        r.plan_cache_hits,
        r.plan_cache_misses,
        r.jobs - r.geometries
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr7", &fresh).expect("write fresh record");
    let mut fails = Vec::new();
    if fresh.jobs_completed != fresh.jobs {
        fails.push(format!(
            "only {}/{} jobs completed",
            fresh.jobs_completed, fresh.jobs
        ));
    }
    let hit_floor = fresh.jobs - fresh.geometries;
    if fresh.plan_cache_hits < hit_floor {
        fails.push(format!(
            "plan cache hits {} below the dedup floor {hit_floor}",
            fresh.plan_cache_hits
        ));
    }
    if fresh.plan_cache_misses > fresh.geometries {
        fails.push(format!(
            "plan cache misses {} exceed the {} distinct geometries",
            fresh.plan_cache_misses, fresh.geometries
        ));
    }
    if fails.is_empty() {
        println!("serve throughput gate: OK");
    } else {
        eprintln!("serve throughput gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
