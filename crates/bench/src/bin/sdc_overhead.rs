//! Silent-data-corruption overhead gate: the cost of the PR-9 ABFT
//! checksum column, compared against the committed `BENCH_pr9.json` at the
//! workspace root.
//!
//! Every panel's right-hand sides fold into `VerifiedBlockOp`'s running
//! checksum column, and one extra checksum apply verifies the whole window
//! every `DEFAULT_VERIFY_PERIOD` panels — so the steady-state overhead is
//! one single-RHS apply plus O(nB) accumulation sweeps per window. On the
//! pinned 32×32 workload this harness times one window's worth of width-8
//! unverified `apply_block` panels against the same panels routed through
//! `VerifiedBlockOp` (applies alternate between the legs so noise cancels
//! out of the total-time ratio), and gates the ratio at
//! [`OVERHEAD_CEILING`].
//!
//! Default mode measures, writes the fresh record to
//! `results/BENCH_pr9.json`, and gates; `--write-baseline` (over)writes the
//! committed `BENCH_pr9.json` at the workspace root. The gate is a ratio of
//! two legs from the same in-process run, so it is stable across machines
//! (absolute wall times are recorded but never gated).

use ffw_geometry::Domain;
use ffw_inverse::MlfmaG0;
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_solver::{BlockLinOp, VerifiedBlockOp, VerifyConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Panel width of the unverified leg (matches the DBIM default batch cap).
const WIDTH: usize = 8;
/// Applies per timed rep — one full default checksum window, so every rep
/// pays exactly one amortized checksum apply.
const APPLIES_PER_REP: usize = ffw_solver::DEFAULT_VERIFY_PERIOD;
/// Windows timed per leg. Individual applies alternate between the two
/// legs (so drift slower than one ~2 ms apply hits both legs of a window
/// equally), each window yields its own verified/unverified ratio, and the
/// median across windows discards the occasional noise-burst outlier.
const REPS: usize = 40;
/// Maximum accepted verified/unverified apply time ratio (the gate).
const OVERHEAD_CEILING: f64 = 1.05;

/// The committed record; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct SdcBenchRecord {
    schema: String,
    width: u64,
    reps: u64,
    applies_per_rep: u64,
    /// Total seconds across all reps of unverified `WIDTH`-wide
    /// `apply_block` panels.
    secs_unverified: f64,
    /// Total seconds for the same panels through `VerifiedBlockOp`
    /// (every column folded into the running checksum, one amortized
    /// checksum apply per window).
    secs_verified: f64,
    /// Median across windows of that window's verified/unverified time
    /// ratio — the gated number.
    overhead_ratio: f64,
    /// Checksum mismatches seen on the clean workload (must be zero).
    false_positives: u64,
}

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            ffw_numerics::c64(a, b)
        })
        .collect()
}

fn measure() -> SdcBenchRecord {
    let domain = Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let eng = Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(4))));
    let n = eng.n();
    let g0 = MlfmaG0(Arc::clone(&eng));
    let xs: Vec<Vec<C64>> = (0..WIDTH).map(|b| random_x(n, 900 + b as u64)).collect();
    let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();

    let verified = VerifiedBlockOp::new(
        &g0,
        VerifyConfig::with_rel_tol(Accuracy::default().checksum_rel_tol()),
    );

    // Warm up (operator caches, pool spin-up) before timing either leg.
    let mut ys = vec![vec![C64::ZERO; n]; WIDTH];
    g0.apply_block(&refs, &mut ys);
    verified.apply_block(&refs, &mut ys);

    // Alternate single applies between the legs inside each window (noise
    // slower than one apply biases both legs equally), ratio each window,
    // and take the median window so a stray noise burst cannot tip the
    // gate. Every verified window still pays its amortized checksum apply
    // at the production cadence (once per `period` panels).
    let mut windows = Vec::with_capacity(REPS);
    let mut secs_unverified = 0.0;
    let mut secs_verified = 0.0;
    for _ in 0..REPS {
        let mut win_u = 0.0;
        let mut win_v = 0.0;
        for _ in 0..APPLIES_PER_REP {
            let sw = ffw_obs::Stopwatch::start();
            g0.apply_block(&refs, &mut ys);
            win_u += sw.elapsed_secs();
            let sw = ffw_obs::Stopwatch::start();
            verified.apply_block(&refs, &mut ys);
            win_v += sw.elapsed_secs();
        }
        windows.push(win_v / win_u);
        secs_unverified += win_u;
        secs_verified += win_v;
    }
    windows.sort_by(f64::total_cmp);
    let overhead_ratio = windows[windows.len() / 2];
    SdcBenchRecord {
        schema: "ffw-bench-sdc-overhead/1".into(),
        width: WIDTH as u64,
        reps: REPS as u64,
        applies_per_rep: APPLIES_PER_REP as u64,
        secs_unverified,
        secs_verified,
        overhead_ratio,
        false_positives: verified.detected(),
    }
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr9.json")
}

fn print_record(r: &SdcBenchRecord) {
    println!(
        "apply at B={WIDTH}: {APPLIES_PER_REP}x{REPS} unverified {:.4}s vs verified {:.4}s = \
         {:.1}% median-window overhead, {} clean-run checksum mismatches",
        r.secs_unverified,
        r.secs_verified,
        (r.overhead_ratio - 1.0) * 100.0,
        r.false_positives
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr9", &fresh).expect("write fresh record");
    let mut fails = Vec::new();
    if fresh.overhead_ratio > OVERHEAD_CEILING {
        fails.push(format!(
            "verified apply is {:.1}% over unverified (ceiling {:.0}%)",
            (fresh.overhead_ratio - 1.0) * 100.0,
            (OVERHEAD_CEILING - 1.0) * 100.0
        ));
    }
    if fresh.false_positives != 0 {
        fails.push(format!(
            "{} checksum mismatches on a clean workload",
            fresh.false_positives
        ));
    }
    if fails.is_empty() {
        println!("sdc overhead gate: OK");
    } else {
        eprintln!("sdc overhead gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
