//! Table I: the realized MLFMA operator census.

use ffw_bench::{print_table, write_json};
use ffw_geometry::Domain;
use ffw_mlfma::{Accuracy, MlfmaPlan};

fn main() {
    let plan = MlfmaPlan::new(&Domain::new(1024, 1.0), Accuracy::default());
    let c = plan.census();
    let rows = vec![
        vec![
            "Near-Field Interactions".into(),
            "Dense".into(),
            c.near_field_types.to_string(),
            "9".into(),
        ],
        vec![
            "Multipole Expansion".into(),
            "Dense".into(),
            c.expansion_types.to_string(),
            "1".into(),
        ],
        vec![
            "Interpolations".into(),
            "Band-Diagonal".into(),
            "1 per level pair".into(),
            "1".into(),
        ],
        vec![
            "Multipole Shiftings".into(),
            "Diagonal".into(),
            "4 per level".into(),
            "4".into(),
        ],
        vec![
            "Translations".into(),
            "Diagonal".into(),
            c.translation_types_per_level.to_string(),
            "40".into(),
        ],
        vec![
            "Local Shiftings".into(),
            "Diagonal".into(),
            "4 per level".into(),
            "4".into(),
        ],
        vec![
            "Anterpolations".into(),
            "Band-Diagonal".into(),
            "1 per level pair".into(),
            "1".into(),
        ],
        vec![
            "Local Expansions".into(),
            "Dense".into(),
            c.local_expansion_types.to_string(),
            "1".into(),
        ],
    ];
    print_table(
        "Table I: key MLFMA operators (102.4-lambda / 1M-unknown plan)",
        &["MLFMA Operator", "Structure", "# Types (realized)", "Paper"],
        &rows,
    );
    println!(
        "\nlevels: {} computed ({}..={}), depth {} (paper: eight levels for 1M unknowns)",
        plan.levels.len(),
        plan.levels[0].level,
        plan.levels.last().unwrap().level,
        plan.tree.depth()
    );
    for lp in &plan.levels {
        println!(
            "  level {}: {}x{} clusters of {:.1} lambda, L = {}, Q = {}",
            lp.level, lp.n_side, lp.n_side, lp.width, lp.l_trunc, lp.q
        );
    }
    let json = serde_json::json!({
        "near_field_types": c.near_field_types,
        "expansion_types": c.expansion_types,
        "interpolation_types": c.interpolation_types,
        "multipole_shift_types": c.multipole_shift_types,
        "translation_types_per_level": c.translation_types_per_level,
        "local_shift_types": c.local_shift_types,
        "anterpolation_types": c.anterpolation_types,
        "local_expansion_types": c.local_expansion_types,
    });
    write_json("table1", &json).expect("write results");
}
