//! Backend parity harness: the two forward engines (BiCGStab and the
//! convergent Born series) run the same pinned DBIM workload, and the
//! record pins what "interchangeable backends" means operationally:
//!
//! * **iteration counts are exact** — both engines are deterministic, so
//!   each backend's per-outer-iteration solver-iteration trace must match
//!   the committed baseline integer-for-integer; any drift means the
//!   engine's numerical behavior changed, gate or not;
//! * **residual endpoints agree to ±5%** against the committed baseline
//!   (slack for cross-platform libm differences only);
//! * **cross-backend reconstruction gap** stays under [`OBJECT_GAP_TOL`] in
//!   the same process — the end-to-end version of the differential
//!   cross-validation suite's field agreement.
//!
//! Default mode measures, writes the fresh record to
//! `results/BENCH_pr8.json`, and gates against the committed
//! `BENCH_pr8.json` at the workspace root. `--write-baseline` (over)writes
//! the committed baseline. Wall times are recorded, never gated.

use ffw_inverse::{BackendChoice, DbimConfig, DbimResult};
use ffw_serve::json::Json;
use ffw_solver::IterConfig;
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Pinned workload: 32×32 pixels, 4 transmitters, 8 receivers.
const SIZE: usize = 32;
const TX: usize = 4;
const RX: usize = 8;
/// Contrast 0.03 puts the Born-series contraction factor near 0.24 at this
/// geometry — far inside the admission bound even for mid-run overshoot.
const CONTRAST: f64 = 0.03;
const ITERATIONS: usize = 3;
/// Shared forward tolerance; two decades under the parity gate.
const FORWARD_TOL: f64 = 1e-10;
/// Maximum accepted cross-backend reconstruction gap (in-process gate).
const OBJECT_GAP_TOL: f64 = 1e-8;
/// Residual drift allowed against the committed baseline.
const RESIDUAL_DRIFT: f64 = 0.05;

/// One backend's run on the pinned workload.
#[derive(Serialize, Clone, Debug)]
struct BackendLeg {
    backend: String,
    /// Forward-solver iterations per DBIM outer iteration — gated exactly.
    solver_iters: Vec<u64>,
    /// Forward-class solves over the whole run — gated exactly.
    forward_solves: u64,
    /// Final relative measurement residual — gated to ±5% vs baseline.
    final_residual: f64,
    /// Wall seconds, recorded for context, never gated.
    secs: f64,
}

/// The committed record; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct ParityRecord {
    schema: String,
    size: u64,
    tx: u64,
    rx: u64,
    contrast: f64,
    iterations: u64,
    forward_tol: f64,
    bicgstab: BackendLeg,
    born_series: BackendLeg,
    /// Relative L2 gap between the two reconstructions (same process).
    object_gap: f64,
}

fn run_backend(
    recon: &Reconstruction,
    measured: &[Vec<ffw_numerics::C64>],
    backend: BackendChoice,
) -> (DbimResult, f64) {
    let cfg = DbimConfig {
        iterations: ITERATIONS,
        forward: IterConfig {
            tol: FORWARD_TOL,
            max_iters: 2000,
        },
        backend,
        ..Default::default()
    };
    let sw = ffw_obs::Stopwatch::start();
    let result = recon.run_dbim_with(measured, &cfg).expect("dbim");
    let secs = sw.elapsed_secs();
    (result, secs)
}

fn leg(backend: BackendChoice, result: &DbimResult, secs: f64) -> BackendLeg {
    BackendLeg {
        backend: backend.as_str().into(),
        solver_iters: result
            .history
            .iter()
            .map(|h| h.solver_iters as u64)
            .collect(),
        forward_solves: result.forward_solves as u64,
        final_residual: result.final_residual,
        secs,
    }
}

fn object_gap(a: &DbimResult, b: &DbimResult) -> f64 {
    let num: f64 = a
        .object
        .iter()
        .zip(&b.object)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.object.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn measure() -> ParityRecord {
    let scene = SceneConfig::new(SIZE, TX, RX);
    let recon = Reconstruction::new(&scene);
    let phantom = ffw_phantom::Cylinder {
        center: ffw_geometry::Point2::ZERO,
        radius: 0.25 * recon.domain().side(),
        contrast: CONTRAST,
    };
    let measured = recon.synthesize(&phantom);
    // Warm up the plan/pool once so neither leg pays first-run costs.
    let _ = run_backend(&recon, &measured, BackendChoice::Bicgstab);
    let (krylov, secs_k) = run_backend(&recon, &measured, BackendChoice::Bicgstab);
    let (born, secs_b) = run_backend(&recon, &measured, BackendChoice::BornSeries);
    ParityRecord {
        schema: "ffw-bench-backend-parity/1".into(),
        size: SIZE as u64,
        tx: TX as u64,
        rx: RX as u64,
        contrast: CONTRAST,
        iterations: ITERATIONS as u64,
        forward_tol: FORWARD_TOL,
        object_gap: object_gap(&born, &krylov),
        bicgstab: leg(BackendChoice::Bicgstab, &krylov, secs_k),
        born_series: leg(BackendChoice::BornSeries, &born, secs_b),
    }
}

/// Reads one backend leg back out of the committed baseline JSON (the
/// vendored serde stand-in serializes only, so parsing is by hand).
fn leg_from_json(root: &Json, key: &str) -> Result<BackendLeg, String> {
    let miss = |what: &str| format!("baseline missing {key}.{what}");
    let l = root.get(key).ok_or_else(|| miss(""))?;
    let iters = l
        .get("solver_iters")
        .and_then(Json::as_arr)
        .ok_or_else(|| miss("solver_iters"))?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<u64>>>()
        .ok_or_else(|| miss("solver_iters[int]"))?;
    Ok(BackendLeg {
        backend: l
            .get("backend")
            .and_then(Json::as_str)
            .ok_or_else(|| miss("backend"))?
            .to_string(),
        solver_iters: iters,
        forward_solves: l
            .get("forward_solves")
            .and_then(Json::as_u64)
            .ok_or_else(|| miss("forward_solves"))?,
        final_residual: l
            .get("final_residual")
            .and_then(Json::as_f64)
            .ok_or_else(|| miss("final_residual"))?,
        secs: l.get("secs").and_then(Json::as_f64).unwrap_or(0.0),
    })
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr8.json")
}

fn print_record(r: &ParityRecord) {
    for l in [&r.bicgstab, &r.born_series] {
        println!(
            "{:>11}: iters/outer {:?}, {} solves, residual {:.6e}, {:.2}s",
            l.backend, l.solver_iters, l.forward_solves, l.final_residual, l.secs
        );
    }
    println!("cross-backend reconstruction gap: {:.3e}", r.object_gap);
}

/// Gates one leg against its committed counterpart.
fn gate_leg(fresh: &BackendLeg, base: &BackendLeg, fails: &mut Vec<String>) {
    if fresh.solver_iters != base.solver_iters {
        fails.push(format!(
            "{}: iteration trace {:?} != committed {:?} (counts gate exactly)",
            fresh.backend, fresh.solver_iters, base.solver_iters
        ));
    }
    if fresh.forward_solves != base.forward_solves {
        fails.push(format!(
            "{}: {} forward solves != committed {}",
            fresh.backend, fresh.forward_solves, base.forward_solves
        ));
    }
    let drift = (fresh.final_residual - base.final_residual).abs() / base.final_residual;
    if drift > RESIDUAL_DRIFT {
        fails.push(format!(
            "{}: residual {:.6e} drifted {:.1}% from committed {:.6e} (>±{:.0}%)",
            fresh.backend,
            fresh.final_residual,
            drift * 100.0,
            base.final_residual,
            RESIDUAL_DRIFT * 100.0
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr8", &fresh).expect("write fresh record");
    let mut fails = Vec::new();
    if fresh.object_gap > OBJECT_GAP_TOL {
        fails.push(format!(
            "cross-backend reconstruction gap {:.3e} exceeds {OBJECT_GAP_TOL:.0e}",
            fresh.object_gap
        ));
    }
    if fresh.bicgstab.forward_solves != fresh.born_series.forward_solves {
        fails.push("backends disagree on the forward-solve count".into());
    }
    match std::fs::read_to_string(baseline_path()) {
        Ok(body) => {
            let root = Json::parse(&body).expect("parse BENCH_pr8.json");
            match (
                leg_from_json(&root, "bicgstab"),
                leg_from_json(&root, "born_series"),
            ) {
                (Ok(bk), Ok(bb)) => {
                    gate_leg(&fresh.bicgstab, &bk, &mut fails);
                    gate_leg(&fresh.born_series, &bb, &mut fails);
                }
                (k, b) => {
                    for e in [k.err(), b.err()].into_iter().flatten() {
                        fails.push(e);
                    }
                }
            }
        }
        Err(e) => fails.push(format!(
            "no committed baseline at {} ({e}); run with --write-baseline",
            baseline_path().display()
        )),
    }
    if fails.is_empty() {
        println!("backend parity gate: OK");
    } else {
        eprintln!("backend parity gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
