//! Fig. 10: strong scaling across MLFMA sub-trees (performance model).

use ffw_bench::{print_table, write_json};
use ffw_perf::{calibrate, fig10, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    let series = fig10(&mut lib, scale);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.1}", p.seconds),
                format!("{:.2}", p.speedup),
                format!("{:.1}%", 100.0 * p.efficiency),
            ]
        })
        .collect();
    print_table(
        "Fig 10: strong scaling across MLFMA sub-trees (64 illumination groups fixed)",
        &["nodes", "seconds", "speedup", "efficiency"],
        &rows,
    );
    println!("paper: 1,096 s @ 64 nodes -> 263 s @ 1,024 nodes (7.45x, 46.6% efficiency)");
    let chart = ffw_tomo::viz::write_svg_chart(
        format!(
            "{}/fig10.svg",
            std::env::var("FFW_RESULTS_DIR").unwrap_or_else(|_| "results".into())
        ),
        "Fig 10: strong scaling across MLFMA sub-trees",
        "nodes",
        "speedup",
        true,
        &[
            ffw_tomo::viz::Series {
                label: "modeled speedup",
                points: series.iter().map(|p| (p.nodes as f64, p.speedup)).collect(),
            },
            ffw_tomo::viz::Series {
                label: "ideal",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.nodes as f64 / 64.0))
                    .collect(),
            },
        ],
    );
    if let Ok(()) = chart {
        println!("wrote results/fig10.svg");
    }
    write_json("fig10", &series).expect("write results");
}
