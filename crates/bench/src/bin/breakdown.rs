//! Per-phase MLFMA time breakdown (measured on this machine + modeled for the
//! paper's node types) — the quantitative backing for the paper's Fig. 4
//! remark that "the MLFMA operation dominates performance" and for Table
//! III's per-operation structure.

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::Domain;
use ffw_mlfma::{Accuracy, MlfmaPlan};
use ffw_perf::{gemini, matvec_time, xe6_cpu, xk7_gpu, MatvecComm, MatvecWork};
use serde::Serialize;

/// Projects one phase's seconds out of an [`ffw_perf::OpBreakdown`].
type PhaseTime = fn(&ffw_perf::OpBreakdown) -> f64;

#[derive(Serialize)]
struct Record {
    phase: String,
    cpu_fraction: f64,
    gpu_fraction: f64,
}

fn main() {
    let args = Args::parse();
    let px = if args.quick { 256 } else { 1024 };
    println!("building the {px}x{px} px plan ...");
    let plan = MlfmaPlan::new(&Domain::new(px, 1.0), Accuracy::default());
    let stats = plan.stats();
    let work = MatvecWork::from_stats(&stats);
    let net = gemini();
    let cpu = matvec_time(&work, &MatvecComm::default(), &xe6_cpu(), &net, 1);
    let gpu = matvec_time(&work, &MatvecComm::default(), &xk7_gpu(), &net, 1);

    let phases: [(&str, PhaseTime); 6] = [
        ("Multipole Expansion", |b| b.expansion),
        ("Aggregation", |b| b.aggregation),
        ("Translation", |b| b.translation),
        ("Disaggregation", |b| b.disaggregation),
        ("Local Expansion", |b| b.local_expansion),
        ("Near-Field Interactions", |b| b.nearfield),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, f) in phases {
        let cf = f(&cpu) / cpu.total();
        let gf = f(&gpu) / gpu.total();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * cf),
            format!("{:.1}%", 100.0 * gf),
        ]);
        records.push(Record {
            phase: name.to_string(),
            cpu_fraction: cf,
            gpu_fraction: gf,
        });
    }
    print_table(
        &format!("modeled single-node matvec time fractions ({px}x{px} px)"),
        &["phase", "CPU node", "GPU node"],
        &rows,
    );
    println!(
        "modeled matvec: CPU {:.1} ms, GPU {:.1} ms",
        1e3 * cpu.total(),
        1e3 * gpu.total()
    );
    println!("\nper-level structure (clusters / samples / translation pairs):");
    for l in &stats.levels {
        println!(
            "  level {}: {:7} clusters, Q = {:4}, {:9} pairs",
            l.level, l.n_clusters, l.q, l.translation_pairs
        );
    }
    println!(
        "\ntotal modeled flops per matvec: {:.2} Gflop across {} unknowns ({:.0} flops/unknown)",
        stats.total_flops() / 1e9,
        stats.n_pixels,
        stats.total_flops() / stats.n_pixels as f64
    );
    write_json("breakdown", &records).expect("write results");
}
