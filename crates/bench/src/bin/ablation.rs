//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * nonlinear conjugate gradients vs naive steepest descent (paper
//!   Section VI-B: "the steepest-descent iterations with (5) are naive");
//! * warm-starting forward solves from the previous iteration's fields;
//! * leaf-block Jacobi preconditioning (paper Section VIII future work);
//! * the BiCGStab tolerance choice (paper Section V-B: 1e-4);
//! * Tikhonov regularization under measurement noise (extension).

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::Point2;
use ffw_inverse::{add_noise, DbimConfig, Regularizer};
use ffw_obs::Stopwatch;
use ffw_phantom::{image_rel_error, Annulus, Phantom};
use ffw_solver::IterConfig;
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    variant: String,
    image_error: f64,
    final_residual: f64,
    solver_iters: usize,
    seconds: f64,
}

fn main() {
    let args = Args::parse();
    let (px, n_tx, n_rx, iters) = if args.quick {
        (32, 8, 16, 5)
    } else {
        (64, 16, 32, 10)
    };
    let scene = SceneConfig::new(px, n_tx, n_rx);
    let recon = Reconstruction::new(&scene);
    let d = recon.domain().side();
    let truth = Annulus {
        center: Point2::ZERO,
        inner: 0.18 * d,
        outer: 0.30 * d,
        contrast: 0.2,
    };
    let truth_raster = truth.rasterize(recon.domain());
    let measured = recon.synthesize(&truth);

    let base = DbimConfig {
        iterations: iters,
        ..Default::default()
    };
    let variants: Vec<(&str, DbimConfig)> = vec![
        ("baseline (CG + warm start)", base.clone()),
        (
            "steepest descent",
            DbimConfig {
                conjugate: false,
                ..base.clone()
            },
        ),
        (
            "no warm start",
            DbimConfig {
                warm_start: false,
                ..base.clone()
            },
        ),
        (
            "block-Jacobi preconditioner",
            DbimConfig {
                precondition: Some(Arc::clone(&recon.plan)),
                ..base.clone()
            },
        ),
        (
            "forward tol 1e-2 (sloppy)",
            DbimConfig {
                forward: IterConfig {
                    tol: 1e-2,
                    max_iters: 1000,
                },
                ..base.clone()
            },
        ),
        (
            "forward tol 1e-6 (tight)",
            DbimConfig {
                forward: IterConfig {
                    tol: 1e-6,
                    max_iters: 2000,
                },
                ..base.clone()
            },
        ),
        (
            "positivity projection",
            DbimConfig {
                positivity: true,
                ..base.clone()
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, cfg) in &variants {
        let t0 = Stopwatch::start();
        let result = recon.run_dbim_with(&measured, cfg).expect("dbim");
        let secs = t0.elapsed().as_secs_f64();
        let err = image_rel_error(&recon.image(&result.object), &truth_raster);
        let bicgs: usize = result.history.iter().map(|h| h.solver_iters).sum();
        rows.push(vec![
            name.to_string(),
            format!("{err:.3}"),
            format!("{:.2}%", 100.0 * result.final_residual),
            bicgs.to_string(),
            format!("{secs:.1}"),
        ]);
        records.push(Row {
            variant: name.to_string(),
            image_error: err,
            final_residual: result.final_residual,
            solver_iters: bicgs,
            seconds: secs,
        });
    }
    print_table(
        &format!("DBIM design ablations (annulus, contrast 0.2, {px}x{px} px, {iters} iterations)"),
        &["variant", "img err", "residual", "solver iters", "s"],
        &rows,
    );

    // --- noise + Tikhonov ---
    let mut noisy = measured.clone();
    add_noise(&mut noisy, 20.0, 7);
    let data_norm2: f64 = measured
        .iter()
        .flat_map(|m| m.iter())
        .map(|v| v.norm_sqr())
        .sum();
    let mut rows = Vec::new();
    for (name, lam_rel) in [
        ("noisy, no regularization", 0.0),
        ("noisy, Tikhonov 1e-7 rel", 1e-7),
        ("noisy, Tikhonov 1e-6 rel", 1e-6),
    ] {
        let cfg = DbimConfig {
            regularizer: Regularizer::Tikhonov {
                lambda: lam_rel * data_norm2,
            },
            ..base.clone()
        };
        let result = recon.run_dbim_with(&noisy, &cfg).expect("dbim");
        let err = image_rel_error(&recon.image(&result.object), &truth_raster);
        rows.push(vec![
            name.to_string(),
            format!("{err:.3}"),
            format!("{:.2}%", 100.0 * result.final_residual),
        ]);
        records.push(Row {
            variant: name.to_string(),
            image_error: err,
            final_residual: result.final_residual,
            solver_iters: 0,
            seconds: 0.0,
        });
    }
    print_table(
        "noise robustness (20 dB SNR measurements)",
        &["variant", "img err", "residual"],
        &rows,
    );
    println!("finding: at this scale the paper's early-termination regularization already");
    println!("controls the noise; Tikhonov is neutral at small weights and hurts at large.");
    write_json("ablation", &records).expect("write results");
}
