//! Frequency-hopping quality gate: the executable claim behind the
//! multi-frequency DBIM + hybrid-regularization work.
//!
//! The pinned workload is a hard limited-aperture scene — a 210° arc of 8
//! transmitters / 16 receivers around a contrast-0.25 cylinder (radius
//! 0.35 × side) — where single-frequency unregularized DBIM stalls in a
//! local minimum. The gate asserts, on the full MLFMA path:
//!
//! * **hop wins by ≥ 2×**: the `2.0,1.0` hop schedule with the wGCV-LSQR
//!   hybrid step reconstructs at no more than [`RATIO_GATE`] of the
//!   single-frequency image error;
//! * **absolute quality**: the hop image error stays under [`ABS_GATE`];
//! * **the lambda trail exists**: the hybrid step's automatically chosen
//!   regularization weight is recorded (finite, positive) — the value the
//!   committed baseline pins for drift detection.
//!
//! Default mode measures, writes the fresh record to
//! `results/BENCH_pr10.json`, and gates against the committed
//! `BENCH_pr10.json` at the workspace root. `--write-baseline`
//! (over)writes the committed baseline. Wall times are recorded, never
//! gated.

use ffw_inverse::{DbimConfig, HopSchedule, Regularizer};
use ffw_serve::json::Json;
use ffw_tomo::{HopPipeline, Reconstruction, SceneConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Pinned workload: 32×32 pixels, 8 transmitters, 16 receivers on a 210°
/// arc (the limited-aperture regime where hopping pays).
const SIZE: usize = 32;
const TX: usize = 8;
const RX: usize = 16;
const ARC_DEG: f64 = 210.0;
const CONTRAST: f64 = 0.25;
const RADIUS_FACTOR: f64 = 0.35;
const ITERATIONS: usize = 8;
const SCHEDULE: &str = "2.0,1.0";
const WGCV_STEPS: usize = 12;
const WGCV_OMEGA: f64 = 0.8;
/// The hop error must be at most this fraction of the single-frequency one.
const RATIO_GATE: f64 = 0.5;
/// Absolute hop image-error ceiling.
const ABS_GATE: f64 = 0.30;
/// Image-error drift allowed against the committed baseline.
const ERROR_DRIFT: f64 = 0.10;

/// One reconstruction leg of the pinned workload.
#[derive(Serialize, Clone, Debug)]
struct Leg {
    /// `"single"` or `"hop"`.
    mode: String,
    /// Regularizer spec string the leg ran with.
    regularizer: String,
    /// Relative L2 image error against the ground-truth raster.
    image_error: f64,
    /// Final relative measurement residual.
    final_residual: f64,
    /// Last wGCV-chosen lambda (0.0 for the unregularized leg) — the
    /// "chosen lambda" the baseline records.
    lambda: f64,
    /// Wall seconds, recorded for context, never gated.
    secs: f64,
}

/// The committed record; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct HopQualityRecord {
    schema: String,
    size: u64,
    tx: u64,
    rx: u64,
    arc_deg: f64,
    contrast: f64,
    radius_factor: f64,
    iterations: u64,
    schedule: String,
    single: Leg,
    hop: Leg,
    /// `hop.image_error / single.image_error` — gated at [`RATIO_GATE`].
    ratio: f64,
}

fn scene() -> SceneConfig {
    let span = ARC_DEG.to_radians();
    SceneConfig::new(SIZE, TX, RX).with_arc(-span / 2.0, span)
}

fn truth(recon: &Reconstruction) -> (ffw_phantom::Cylinder, Vec<f64>) {
    let phantom = ffw_phantom::Cylinder {
        center: ffw_geometry::Point2::ZERO,
        radius: RADIUS_FACTOR * recon.domain().side(),
        contrast: CONTRAST,
    };
    let raster = {
        use ffw_phantom::Phantom as _;
        phantom.rasterize(recon.domain())
    };
    (phantom, raster)
}

/// Single-frequency unregularized DBIM — the stalled baseline.
fn run_single() -> Leg {
    let recon = Reconstruction::new(&scene());
    let (phantom, raster) = truth(&recon);
    let measured = recon.synthesize(&phantom);
    let cfg = DbimConfig {
        iterations: ITERATIONS,
        ..Default::default()
    };
    let sw = ffw_obs::Stopwatch::start();
    let result = recon.run_dbim_with(&measured, &cfg).expect("single dbim");
    let secs = sw.elapsed_secs();
    Leg {
        mode: "single".into(),
        regularizer: cfg.regularizer.to_spec_string(),
        image_error: ffw_phantom::image_rel_error(&recon.image(&result.object), &raster),
        final_residual: result.final_residual,
        lambda: 0.0,
        secs,
    }
}

/// The 2.0 → 1.0 hop with the hybrid wGCV-LSQR step.
fn run_hop() -> Leg {
    let scene = scene();
    let schedule = HopSchedule::parse(SCHEDULE).expect("pinned schedule");
    let pipeline = HopPipeline::new(&scene, &schedule);
    let (phantom, raster) = truth(pipeline.final_stage());
    let measured = pipeline.synthesize(&phantom);
    let regularizer = Regularizer::WgcvLsqr {
        steps: WGCV_STEPS,
        omega: WGCV_OMEGA,
    };
    let cfg = DbimConfig {
        regularizer,
        ..Default::default()
    };
    let fp = pipeline.fingerprint(&scene, ITERATIONS);
    let sw = ffw_obs::Stopwatch::start();
    let result = pipeline
        .run(&measured, ITERATIONS, &cfg, None, false, fp, None)
        .expect("hop dbim");
    let secs = sw.elapsed_secs();
    let final_stage = pipeline.final_stage();
    let lambda = result
        .stages
        .iter()
        .flat_map(|s| s.lambdas.iter())
        .last()
        .copied()
        .unwrap_or(f64::NAN);
    Leg {
        mode: "hop".into(),
        regularizer: regularizer.to_spec_string(),
        image_error: ffw_phantom::image_rel_error(&final_stage.image(&result.object), &raster),
        final_residual: result
            .stages
            .last()
            .map(|s| s.final_residual)
            .unwrap_or(f64::NAN),
        lambda,
        secs,
    }
}

fn measure() -> HopQualityRecord {
    let single = run_single();
    let hop = run_hop();
    HopQualityRecord {
        schema: "ffw-bench-hop-quality/1".into(),
        size: SIZE as u64,
        tx: TX as u64,
        rx: RX as u64,
        arc_deg: ARC_DEG,
        contrast: CONTRAST,
        radius_factor: RADIUS_FACTOR,
        iterations: ITERATIONS as u64,
        schedule: SCHEDULE.into(),
        ratio: hop.image_error / single.image_error,
        single,
        hop,
    }
}

fn leg_from_json(root: &Json, key: &str) -> Result<Leg, String> {
    let miss = |what: &str| format!("baseline missing {key}.{what}");
    let l = root.get(key).ok_or_else(|| miss(""))?;
    let f = |what: &str| l.get(what).and_then(Json::as_f64).ok_or_else(|| miss(what));
    Ok(Leg {
        mode: key.to_string(),
        regularizer: l
            .get("regularizer")
            .and_then(Json::as_str)
            .ok_or_else(|| miss("regularizer"))?
            .to_string(),
        image_error: f("image_error")?,
        final_residual: f("final_residual")?,
        lambda: f("lambda")?,
        secs: l.get("secs").and_then(Json::as_f64).unwrap_or(0.0),
    })
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr10.json")
}

fn print_record(r: &HopQualityRecord) {
    for l in [&r.single, &r.hop] {
        println!(
            "{:>6} ({}): image error {:.3}, residual {:.3e}, lambda {:.3e}, {:.2}s",
            l.mode, l.regularizer, l.image_error, l.final_residual, l.lambda, l.secs
        );
    }
    println!("hop/single image-error ratio: {:.3}", r.ratio);
}

/// Gates one leg's image error against its committed counterpart.
fn gate_leg(fresh: &Leg, base: &Leg, fails: &mut Vec<String>) {
    let drift = (fresh.image_error - base.image_error).abs() / base.image_error;
    if drift > ERROR_DRIFT {
        fails.push(format!(
            "{}: image error {:.4} drifted {:.1}% from committed {:.4} (>±{:.0}%)",
            fresh.mode,
            fresh.image_error,
            drift * 100.0,
            base.image_error,
            ERROR_DRIFT * 100.0
        ));
    }
    if fresh.regularizer != base.regularizer {
        fails.push(format!(
            "{}: regularizer '{}' != committed '{}'",
            fresh.mode, fresh.regularizer, base.regularizer
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr10", &fresh).expect("write fresh record");
    let mut fails = Vec::new();
    // `is_nan() ||` keeps a NaN measurement failing the gate.
    if fresh.ratio.is_nan() || fresh.ratio > RATIO_GATE {
        fails.push(format!(
            "hop/single ratio {:.3} exceeds {RATIO_GATE} — hopping no longer \
             rescues the limited-aperture scene",
            fresh.ratio
        ));
    }
    if fresh.hop.image_error.is_nan() || fresh.hop.image_error > ABS_GATE {
        fails.push(format!(
            "hop image error {:.3} exceeds the absolute ceiling {ABS_GATE}",
            fresh.hop.image_error
        ));
    }
    if !(fresh.hop.lambda.is_finite() && fresh.hop.lambda > 0.0) {
        fails.push(format!(
            "wGCV chose no usable lambda (got {:.3e})",
            fresh.hop.lambda
        ));
    }
    match std::fs::read_to_string(baseline_path()) {
        Ok(body) => {
            let root = Json::parse(&body).expect("parse BENCH_pr10.json");
            match (leg_from_json(&root, "single"), leg_from_json(&root, "hop")) {
                (Ok(bs), Ok(bh)) => {
                    gate_leg(&fresh.single, &bs, &mut fails);
                    gate_leg(&fresh.hop, &bh, &mut fails);
                }
                (s, h) => {
                    for e in [s.err(), h.err()].into_iter().flatten() {
                        fails.push(e);
                    }
                }
            }
        }
        Err(e) => fails.push(format!(
            "no committed baseline at {} ({e}); run with --write-baseline",
            baseline_path().display()
        )),
    }
    if fails.is_empty() {
        println!("hop quality gate: OK");
    } else {
        eprintln!("hop quality gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
