//! Fig. 9: strong scaling across illuminations (performance model).

use ffw_bench::{print_table, write_json};
use ffw_perf::{calibrate, fig9, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    let series = fig9(&mut lib, scale);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.1}", p.seconds),
                format!("{:.2}", p.speedup),
                format!("{:.1}%", 100.0 * p.efficiency),
            ]
        })
        .collect();
    print_table(
        "Fig 9: strong scaling across illuminations (1M unknowns, T = 1024, GPU nodes)",
        &["nodes", "seconds", "speedup", "efficiency"],
        &rows,
    );
    println!("paper: 1,096 s @ 64 nodes -> 142 s @ 1,024 nodes (13.8x, 86.1% efficiency)");
    let chart = ffw_tomo::viz::write_svg_chart(
        format!(
            "{}/fig09.svg",
            std::env::var("FFW_RESULTS_DIR").unwrap_or_else(|_| "results".into())
        ),
        "Fig 9: strong scaling across illuminations",
        "nodes",
        "speedup",
        true,
        &[
            ffw_tomo::viz::Series {
                label: "modeled speedup",
                points: series.iter().map(|p| (p.nodes as f64, p.speedup)).collect(),
            },
            ffw_tomo::viz::Series {
                label: "ideal",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.nodes as f64 / 64.0))
                    .collect(),
            },
        ],
    );
    if let Ok(()) = chart {
        println!("wrote results/fig09.svg");
    }
    write_json("fig09", &series).expect("write results");
}
