//! Table III: individual MLFMA operation GPU speedups (performance model over
//! the real plan of the 409.6-lambda / 16M-unknown domain).

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::Domain;
use ffw_mlfma::{Accuracy, MlfmaPlan};
use ffw_perf::{gemini, table3, xe6_cpu, xk7_gpu};

fn main() {
    let args = Args::parse();
    // default 16M unknowns (the paper's size); --quick drops to 4M
    let px = if args.quick { 2048 } else { 4096 };
    println!(
        "building the {px}x{px} px ({}M unknowns) plan ...",
        (px * px) >> 20
    );
    let plan = MlfmaPlan::new(&Domain::new(px, 1.0), Accuracy::default());
    let rows_data = table3(&plan, &xe6_cpu(), &xk7_gpu(), &gemini());
    let paper: &[(&str, f64, f64, f64)] = &[
        ("Multipole Expansion", 5.05, 16.30, 79.95),
        ("Aggregation", 5.92, 15.42, 78.71),
        ("Translation", 2.90, 12.86, 44.80),
        ("Disaggregation", 2.82, 13.77, 38.22),
        ("Local Expansion", 5.48, 15.55, 86.51),
        ("Near-Field Interactions", 3.92, 15.75, 62.76),
        ("Overall", 3.91, 14.54, 60.08),
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            let p = paper.iter().find(|(n, ..)| *n == r.op).expect("row");
            vec![
                r.op.to_string(),
                format!("{:.2}x ({:.2})", r.gpu1, p.1),
                format!("{:.2}x ({:.2})", r.cpu16, p.2),
                format!("{:.2}x ({:.2})", r.gpu16, p.3),
            ]
        })
        .collect();
    print_table(
        "Table III: MLFMA operation speedups, modeled (paper in parentheses)",
        &["operation", "GPU 1 node", "CPU 16 nodes", "GPU 16 nodes"],
        &rows,
    );
    write_json("table3", &rows_data).expect("write results");
}
