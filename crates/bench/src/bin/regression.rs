//! Performance-regression harness: a pinned reconstruction workload measured
//! through `ffw-obs`, compared against the committed baseline
//! `BENCH_pr3.json` at the workspace root.
//!
//! Three modes:
//!
//! * default — run the workload, write the fresh record to
//!   `results/BENCH_pr3.json`, and compare against the committed baseline.
//!   Exit non-zero when deterministic quantities (iteration counts, comm
//!   volume, residuals) or MLFMA stage *shares* drift beyond tolerance.
//!   Wall time is recorded but never gated: it is machine-dependent.
//! * `--write-baseline` — run the workload and (over)write the committed
//!   baseline at the workspace root.
//! * `--overhead` — measure the instrumentation overhead: the same serial
//!   workload with the recorder enabled vs disabled, reported as a ratio.
//!
//! The workload is small and fully seeded: a 32x32 cylinder scene solved
//! serially (3 DBIM iterations) and on a 2x2 fault-tolerant rank grid
//! (2 iterations), so every gated number is deterministic.

use ffw_dist::{run_dbim_ft, FtConfig};
use ffw_inverse::DbimConfig;
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Everything the regression gate compares, plus ungated context (wall
/// times). Committed as `BENCH_pr3.json`; regenerate with `--write-baseline`.
#[derive(Serialize, Clone, Debug)]
struct BenchRecord {
    schema: String,
    /// MLFMA per-stage span shares (fractions of the four-stage total).
    share_aggregate: f64,
    share_translate: f64,
    share_disaggregate: f64,
    share_near: f64,
    /// Total BiCGStab iterations across the serial run.
    solver_iters: u64,
    solver_matvecs: u64,
    mlfma_applies: u64,
    dbim_outer_iters: u64,
    /// Comm volume of the distributed leg (all edges).
    comm_bytes_total: u64,
    comm_messages_total: u64,
    comm_bytes_per_rank: Vec<u64>,
    final_residual_serial: f64,
    final_residual_dist: f64,
    /// Context only — never gated.
    wall_seconds_serial: f64,
    wall_seconds_dist: f64,
}

impl BenchRecord {
    fn shares(&self) -> [(&'static str, f64); 4] {
        [
            ("aggregate", self.share_aggregate),
            ("translate", self.share_translate),
            ("disaggregate", self.share_disaggregate),
            ("near", self.share_near),
        ]
    }
}

const STAGES: [&str; 4] = ["aggregate", "translate", "disaggregate", "near"];

/// Absolute tolerance on stage shares (fractions in [0,1]).
const SHARE_TOL: f64 = 0.15;
/// Relative tolerance on comm volume.
const COMM_TOL: f64 = 0.01;
/// Relative tolerance on final residuals.
const RESIDUAL_TOL: f64 = 0.05;

fn scene() -> (Reconstruction, Vec<Vec<ffw_numerics::C64>>) {
    let scene = SceneConfig::new(32, 4, 8);
    let recon = Reconstruction::new(&scene);
    let phantom = ffw_phantom::Cylinder {
        center: ffw_geometry::Point2::ZERO,
        radius: 0.25 * recon.domain().side(),
        contrast: 0.1,
    };
    let measured = recon.synthesize(&phantom);
    (recon, measured)
}

fn run_serial(recon: &Reconstruction, measured: &[Vec<ffw_numerics::C64>]) -> (f64, f64) {
    let cfg = DbimConfig {
        iterations: 3,
        ..Default::default()
    };
    let sw = ffw_obs::Stopwatch::start();
    let result = recon.run_dbim_with(measured, &cfg).expect("dbim");
    (sw.elapsed_secs(), result.final_residual)
}

fn run_dist(recon: &Reconstruction, measured: &[Vec<ffw_numerics::C64>]) -> (f64, f64) {
    let ft = FtConfig {
        dbim: DbimConfig {
            iterations: 2,
            ..Default::default()
        },
        ..FtConfig::new(2, 2)
    };
    let sw = ffw_obs::Stopwatch::start();
    let result = run_dbim_ft(
        &recon.setup,
        std::sync::Arc::clone(&recon.plan),
        measured,
        &ft,
    )
    .expect("clean distributed run");
    (sw.elapsed_secs(), result.final_residual)
}

/// Sums span totals whose path ends in `mlfma.apply/<stage>` and converts to
/// shares of the four-stage total, in `STAGES` order.
fn stage_shares(snap: &ffw_obs::Snapshot) -> [f64; 4] {
    let mut totals = [0u64; 4];
    for row in &snap.spans {
        for (i, s) in STAGES.iter().enumerate() {
            if row.path.ends_with(&format!("mlfma.apply/{s}")) {
                totals[i] += row.total_ns;
            }
        }
    }
    let sum: u64 = totals.iter().sum();
    totals.map(|v| if sum > 0 { v as f64 / sum as f64 } else { 0.0 })
}

fn measure() -> BenchRecord {
    ffw_obs::reset();
    ffw_obs::set_enabled(true);
    let (recon, measured) = scene();

    let (wall_serial, res_serial) = run_serial(&recon, &measured);
    let serial_snap = ffw_obs::snapshot();
    let counter = |name: &str| {
        serial_snap
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let solver_iters = counter("solver.bicgstab.iters");
    let solver_matvecs = counter("solver.bicgstab.matvecs");
    let mlfma_applies = counter("mlfma.applies");
    let dbim_outer_iters = counter("dbim.outer_iters");
    let [share_aggregate, share_translate, share_disaggregate, share_near] =
        stage_shares(&serial_snap);

    // Distributed leg on a fresh recorder, so its comm counters are its own.
    ffw_obs::reset();
    let (wall_dist, res_dist) = run_dist(&recon, &measured);
    let dist_snap = ffw_obs::snapshot();
    ffw_obs::set_enabled(false);
    let dcounter = |name: &str| {
        dist_snap
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let comm_bytes_per_rank: Vec<u64> = (0..4)
        .map(|r| dcounter(&format!("mpi.bytes.rank{r}")))
        .collect();

    BenchRecord {
        schema: "ffw-bench-regression/1".into(),
        share_aggregate,
        share_translate,
        share_disaggregate,
        share_near,
        solver_iters,
        solver_matvecs,
        mlfma_applies,
        dbim_outer_iters,
        comm_bytes_total: dcounter("mpi.bytes.total"),
        comm_messages_total: dcounter("mpi.messages.total"),
        comm_bytes_per_rank,
        final_residual_serial: res_serial,
        final_residual_dist: res_dist,
        wall_seconds_serial: wall_serial,
        wall_seconds_dist: wall_dist,
    }
}

/// Compares fresh vs baseline; returns human-readable failure descriptions.
fn compare(fresh: &BenchRecord, base: &BenchRecord) -> Vec<String> {
    let mut fails = Vec::new();
    for ((s, f), (_, b)) in fresh.shares().into_iter().zip(base.shares()) {
        if (f - b).abs() > SHARE_TOL {
            fails.push(format!(
                "stage share '{s}' drifted: {f:.3} vs baseline {b:.3} (tol {SHARE_TOL})"
            ));
        }
    }
    let exact = [
        ("solver_iters", fresh.solver_iters, base.solver_iters),
        ("solver_matvecs", fresh.solver_matvecs, base.solver_matvecs),
        ("mlfma_applies", fresh.mlfma_applies, base.mlfma_applies),
        (
            "dbim_outer_iters",
            fresh.dbim_outer_iters,
            base.dbim_outer_iters,
        ),
    ];
    for (name, f, b) in exact {
        if f != b {
            fails.push(format!("{name} changed: {f} vs baseline {b}"));
        }
    }
    let rel = [
        (
            "comm_bytes_total",
            fresh.comm_bytes_total as f64,
            base.comm_bytes_total as f64,
            COMM_TOL,
        ),
        (
            "comm_messages_total",
            fresh.comm_messages_total as f64,
            base.comm_messages_total as f64,
            COMM_TOL,
        ),
        (
            "final_residual_serial",
            fresh.final_residual_serial,
            base.final_residual_serial,
            RESIDUAL_TOL,
        ),
        (
            "final_residual_dist",
            fresh.final_residual_dist,
            base.final_residual_dist,
            RESIDUAL_TOL,
        ),
    ];
    for (name, f, b, tol) in rel {
        let denom = b.abs().max(1e-300);
        if ((f - b) / denom).abs() > tol {
            fails.push(format!(
                "{name} drifted: {f:.6e} vs baseline {b:.6e} (rel tol {tol})"
            ));
        }
    }
    fails
}

fn baseline_path() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr3.json")
}

// --- Minimal baseline reader ------------------------------------------------
// The vendored serde stand-in serializes but does not deserialize, so the
// committed baseline is re-read with a scalar-by-key scan. That is enough
// because `BenchRecord` is flat and every gated field is a number or an array
// of numbers.

/// Extracts the number following `"key":` in `text`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let len = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..len].parse().ok()
}

/// Extracts the `[u64, ...]` array following `"key":` in `text`.
fn json_u64_array(text: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start().strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    body.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().ok())
        .collect()
}

fn parse_baseline(text: &str) -> Option<BenchRecord> {
    let num = |key: &str| json_number(text, key);
    Some(BenchRecord {
        schema: "ffw-bench-regression/1".into(),
        share_aggregate: num("share_aggregate")?,
        share_translate: num("share_translate")?,
        share_disaggregate: num("share_disaggregate")?,
        share_near: num("share_near")?,
        solver_iters: num("solver_iters")? as u64,
        solver_matvecs: num("solver_matvecs")? as u64,
        mlfma_applies: num("mlfma_applies")? as u64,
        dbim_outer_iters: num("dbim_outer_iters")? as u64,
        comm_bytes_total: num("comm_bytes_total")? as u64,
        comm_messages_total: num("comm_messages_total")? as u64,
        comm_bytes_per_rank: json_u64_array(text, "comm_bytes_per_rank")?,
        final_residual_serial: num("final_residual_serial")?,
        final_residual_dist: num("final_residual_dist")?,
        wall_seconds_serial: num("wall_seconds_serial")?,
        wall_seconds_dist: num("wall_seconds_dist")?,
    })
}

fn print_record(r: &BenchRecord) {
    println!(
        "serial: {:.2}s, residual {:.4e}, {} BiCGStab iters, {} matvecs, {} MLFMA applies",
        r.wall_seconds_serial,
        r.final_residual_serial,
        r.solver_iters,
        r.solver_matvecs,
        r.mlfma_applies
    );
    println!(
        "dist (2x2): {:.2}s, residual {:.4e}, {} bytes / {} messages",
        r.wall_seconds_dist, r.final_residual_dist, r.comm_bytes_total, r.comm_messages_total
    );
    let shares: Vec<String> = r
        .shares()
        .into_iter()
        .map(|(k, v)| format!("{k} {:.1}%", 100.0 * v))
        .collect();
    println!("stage shares: {}", shares.join(", "));
}

/// Times the serial workload (median of `reps`) with the recorder in the
/// given state.
fn timed_serial(reps: usize, enabled: bool) -> f64 {
    let (recon, measured) = scene();
    ffw_obs::set_enabled(enabled);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            ffw_obs::reset();
            run_serial(&recon, &measured).0
        })
        .collect();
    ffw_obs::set_enabled(false);
    ffw_obs::reset();
    times.sort_by(f64::total_cmp);
    times[reps / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let overhead = args.iter().any(|a| a == "--overhead");

    if overhead {
        // Warm up (page-in, pool spin-up), then measure each state.
        let _ = timed_serial(1, false);
        let off = timed_serial(5, false);
        let on = timed_serial(5, true);
        let ratio = on / off;
        println!(
            "instrumentation overhead: enabled {on:.3}s vs disabled {off:.3}s \
             = {:.2}% (median of 5)",
            100.0 * (ratio - 1.0)
        );
        return;
    }

    let fresh = measure();
    print_record(&fresh);

    if write_baseline {
        let path = baseline_path();
        let body = serde_json::to_string_pretty(&fresh).expect("serializable");
        std::fs::write(&path, body + "\n").expect("write baseline");
        println!("wrote baseline {}", path.display());
        return;
    }

    ffw_bench::write_json("BENCH_pr3", &fresh).expect("write fresh record");
    let path = baseline_path();
    let base = match std::fs::read_to_string(&path) {
        Ok(s) => parse_baseline(&s).unwrap_or_else(|| {
            eprintln!("error: malformed baseline at {}", path.display());
            std::process::exit(2);
        }),
        Err(e) => {
            eprintln!(
                "error: no committed baseline at {} ({e}); run with --write-baseline first",
                path.display()
            );
            std::process::exit(2);
        }
    };
    let fails = compare(&fresh, &base);
    if fails.is_empty() {
        println!("regression gate: OK (within tolerance of committed baseline)");
    } else {
        eprintln!("regression gate: FAILED");
        for f in &fails {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
