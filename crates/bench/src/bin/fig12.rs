//! Fig. 12: weak scaling across MLFMA sub-trees (domain grows 4x per step).

use ffw_bench::{print_table, write_json};
use ffw_perf::{calibrate, fig12, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    let series = fig12(&mut lib, scale);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.1}", p.seconds),
                format!("{:.1}%", 100.0 * p.efficiency),
                format!("{:.1}", p.adjusted_seconds.unwrap()),
                format!("{:.1}%", 100.0 * p.adjusted_efficiency.unwrap()),
            ]
        })
        .collect();
    print_table(
        "Fig 12: weak scaling across sub-trees (1M -> 16M unknowns with node count)",
        &["nodes", "real s", "real eff", "adjusted s", "adjusted eff"],
        &rows,
    );
    println!("paper at 16x: real 73.3%, adjusted 94.7%");
    let chart = ffw_tomo::viz::write_svg_chart(
        format!(
            "{}/fig12.svg",
            std::env::var("FFW_RESULTS_DIR").unwrap_or_else(|_| "results".into())
        ),
        "Fig 12: weak scaling across sub-trees",
        "nodes",
        "efficiency",
        true,
        &[
            ffw_tomo::viz::Series {
                label: "real",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.efficiency))
                    .collect(),
            },
            ffw_tomo::viz::Series {
                label: "adjusted",
                points: series
                    .iter()
                    .map(|p| (p.nodes as f64, p.adjusted_efficiency.unwrap()))
                    .collect(),
            },
        ],
    );
    if let Ok(()) = chart {
        println!("wrote results/fig12.svg");
    }
    write_json("fig12", &series).expect("write results");
}
