//! Fig. 1: reconstruction of a high-contrast homogeneous annular object with
//! single-scattering (linear Born) vs multiple-scattering (nonlinear DBIM)
//! approaches. The paper's qualitative claim: the Born approximation breaks
//! down at high contrast; DBIM recovers the object.

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::Point2;
use ffw_inverse::BornConfig;
use ffw_obs::Stopwatch;
use ffw_phantom::{image_rel_error, Annulus, Phantom};
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    contrast: f64,
    born_image_error: f64,
    dbim_image_error: f64,
    dbim_final_residual: f64,
    dbim_iterations: usize,
}

fn main() {
    let args = Args::parse();
    let (px, n_tx, n_rx, iters) = if args.quick {
        (32, 8, 16, 5)
    } else if args.full {
        (128, 32, 64, 25)
    } else {
        (64, 16, 32, 12)
    };
    let scene = SceneConfig::new(px, n_tx, n_rx);
    let recon = Reconstruction::new(&scene);
    let d = recon.domain().side();
    let mut records = Vec::new();
    let mut rows = Vec::new();
    // low contrast (Born regime) and high contrast (multiple scattering)
    for contrast in [0.02, 0.10, 0.30] {
        let truth = Annulus {
            center: Point2::ZERO,
            inner: 0.18 * d,
            outer: 0.30 * d,
            contrast,
        };
        let truth_raster = truth.rasterize(recon.domain());
        let t0 = Stopwatch::start();
        let measured = recon.synthesize(&truth);
        let dbim = recon.run_dbim(&measured, iters).expect("dbim");
        let dbim_img = recon.image(&dbim.object);
        let dbim_err = image_rel_error(&dbim_img, &truth_raster);
        let born = recon.run_born(&measured, &BornConfig::default());
        let born_img = recon.image(&born.object);
        let born_err = image_rel_error(&born_img, &truth_raster);
        println!(
            "contrast {contrast}: done in {:.1?} (residual {:.2}% -> {:.2}%)",
            t0.elapsed(),
            100.0 * dbim.history[0].rel_residual,
            100.0 * dbim.final_residual
        );
        rows.push(vec![
            format!("{contrast}"),
            format!("{born_err:.3}"),
            format!("{dbim_err:.3}"),
            format!("{:.1}x", born_err / dbim_err),
        ]);
        records.push(Record {
            contrast,
            born_image_error: born_err,
            dbim_image_error: dbim_err,
            dbim_final_residual: dbim.final_residual,
            dbim_iterations: iters,
        });
    }
    print_table(
        &format!("Fig 1: annulus, linear vs nonlinear ({px}x{px} px, T={n_tx}, R={n_rx})"),
        &["contrast", "Born img err", "DBIM img err", "DBIM advantage"],
        &rows,
    );
    println!("paper: qualitative — nonlinear reconstruction resolves the high-contrast annulus,");
    println!("linear reconstruction does not; the advantage must grow with contrast.");
    write_json("fig01", &records).expect("write results");
}
