//! Fig. 13: the large Shepp–Logan reconstruction. A real scaled-down run
//! (laptop-feasible) plus the performance-model projection of the paper's
//! 4M-unknown / 4,096-GPU configuration.

use ffw_bench::{write_json, Args};
use ffw_obs::Stopwatch;
use ffw_phantom::{image_rel_error, Phantom, SheppLogan};
use ffw_tomo::{Reconstruction, SceneConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    n_pixels: usize,
    n_tx: usize,
    n_rx: usize,
    dbim_iterations: usize,
    initial_residual: f64,
    final_residual: f64,
    image_error: f64,
    mlfma_mults_per_solve: f64,
    forward_solves: usize,
    wall_seconds: f64,
    projection_seconds_4096_gpus: f64,
}

fn main() {
    let args = Args::parse();
    let (px, n_tx, n_rx, iters) = if args.quick {
        (64, 16, 32, 8)
    } else if args.full {
        (256, 64, 128, 50)
    } else {
        (128, 32, 64, 20)
    };
    println!(
        "Shepp-Logan reconstruction: {px}x{px} px ({:.1} lambda), T={n_tx}, R={n_rx}, {iters} DBIM iterations",
        px as f64 / 10.0
    );
    let scene = SceneConfig::new(px, n_tx, n_rx);
    let recon = Reconstruction::new(&scene);
    let truth = SheppLogan::for_domain(recon.domain(), 0.02); // paper's 0.02 max contrast
    let truth_raster = truth.rasterize(recon.domain());
    let t0 = Stopwatch::start();
    let measured = recon.synthesize(&truth);
    println!("synthesized {} transmitters in {:.1?}", n_tx, t0.elapsed());
    let t1 = Stopwatch::start();
    let result = recon.run_dbim(&measured, iters).expect("dbim");
    let wall = t1.elapsed().as_secs_f64();
    let image = recon.image(&result.object);
    let err = image_rel_error(&image, &truth_raster);

    // performance-model projection of the paper's exact configuration
    let mut lib = ffw_perf::PlanLib::new();
    let scale = ffw_perf::calibrate(&mut lib);
    let proj = ffw_perf::fig13_projection(&mut lib, scale);

    println!("\n== Fig 13: Shepp-Logan, measured (this machine) ==");
    println!(
        "residual: {:.1}% -> {:.3}%   (paper: 59.3% -> 0.289%)",
        100.0 * result.history[0].rel_residual,
        100.0 * result.final_residual
    );
    println!("image relative error: {err:.3}");
    println!(
        "MLFMA multiplications per forward solve: {:.1}   (paper: 13.4)",
        result.mlfma_mults_per_solve()
    );
    println!(
        "forward solves: {}   wall time: {wall:.1} s",
        result.forward_solves
    );
    println!("\n== Fig 13: 4M unknowns on 4,096 GPU nodes, modeled ==");
    println!("projected time: {:.1} s   (paper: 126.9 s)", proj.seconds);
    println!("forward solves: {}   (paper: 153,600)", proj.forward_solves);
    println!("MLFMA mults: {:.0}   (paper: 2,054,312)", proj.mlfma_mults);

    let dir = std::env::var("FFW_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let _ = ffw_tomo::viz::write_pgm(
        format!("{dir}/fig13_truth.pgm"),
        &truth_raster,
        px,
        0.0,
        0.02,
    );
    let _ = ffw_tomo::viz::write_pgm(
        format!("{dir}/fig13_reconstruction.pgm"),
        &image,
        px,
        0.0,
        0.02,
    );
    println!("wrote results/fig13_truth.pgm and results/fig13_reconstruction.pgm");
    // convergence chart
    let mut pts: Vec<(f64, f64)> = result
        .history
        .iter()
        .enumerate()
        .map(|(i, h)| (i as f64 + 1.0, h.rel_residual))
        .collect();
    pts.push((result.history.len() as f64 + 1.0, result.final_residual));
    let _ = ffw_tomo::viz::write_svg_chart(
        format!("{dir}/fig13_convergence.svg"),
        "Fig 13: DBIM residual convergence (Shepp-Logan)",
        "DBIM iteration",
        "relative residual",
        false,
        &[ffw_tomo::viz::Series {
            label: "residual",
            points: pts,
        }],
    );
    write_json(
        "fig13",
        &Record {
            n_pixels: px * px,
            n_tx,
            n_rx,
            dbim_iterations: iters,
            initial_residual: result.history[0].rel_residual,
            final_residual: result.final_residual,
            image_error: err,
            mlfma_mults_per_solve: result.mlfma_mults_per_solve(),
            forward_solves: result.forward_solves,
            wall_seconds: wall,
            projection_seconds_4096_gpus: proj.seconds,
        },
    )
    .expect("write results");
}
