//! Table IV: whole-application CPU vs GPU times (performance model).

use ffw_bench::{print_table, write_json};
use ffw_perf::{calibrate, table4, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    let rows_data = table4(&mut lib, scale);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.1}", r.cpu_seconds),
                format!("{:.1}", r.gpu_seconds),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "Table IV: whole-application GPU speedup (1M unknowns, T = 1024)",
        &["nodes", "CPU s", "GPU s", "GPU speedup"],
        &rows,
    );
    println!("paper: CPU 8,216/2,107/558/151 s; GPU 1,960/516/142/40.2 s; speedup 4.19 -> 3.77");
    println!("(note: the paper's Table IV 64-node GPU time differs from its Fig 9 baseline;");
    println!(" this model is calibrated to the Fig 9 value of 1,096 s)");
    write_json("table4", &rows_data).expect("write results");
}
