//! Forward-solver choice ablation: the paper picks BiCGStab (Section III-A);
//! this harness compares it against restarted GMRES and the block-Jacobi
//! preconditioned variant across scattering strengths, counting what
//! actually matters — MLFMA multiplications per solve.

use ffw_bench::{print_table, write_json, Args};
use ffw_geometry::{Domain, Point2, QuadTree};
use ffw_greens::{incident_plane_wave, tree_positions, Kernel};
use ffw_inverse::{LeafBlockJacobi, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use ffw_solver::{bicgstab, bicgstab_precond, gmres, IterConfig, ScatteringOp};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    contrast: f64,
    solver: String,
    matvecs: usize,
    iterations: usize,
    converged: bool,
}

fn main() {
    let args = Args::parse();
    let px = if args.quick { 32 } else { 64 };
    let domain = Domain::new(px, 1.0);
    let tree = QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let engine = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(Pool::global().n_threads())),
    )));
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let pos = tree_positions(&domain, &tree);
    let phi_inc = incident_plane_wave(&kernel, 0.3, &pos);
    let cfg = IterConfig {
        tol: 1e-4, // the paper's forward tolerance
        max_iters: 5000,
    };

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for contrast in [0.02, 0.1, 0.3, 0.6] {
        let cyl = Cylinder {
            center: Point2::ZERO,
            radius: 0.3 * domain.side(),
            contrast,
        };
        let object = object_from_contrast(&domain, &tree, &cyl.rasterize(&domain));
        let a = ScatteringOp::new(&engine, &object);
        let n = object.len();

        let mut x = vec![C64::ZERO; n];
        let s_bicgs = bicgstab(&a, &phi_inc, &mut x, cfg); // lint:backend-ok microbench compares raw solvers

        let m = LeafBlockJacobi::new(&plan, &object);
        let mut x = vec![C64::ZERO; n];
        let s_pre = bicgstab_precond(&a, &m, &phi_inc, &mut x, cfg); // lint:backend-ok microbench compares raw solvers

        let mut x = vec![C64::ZERO; n];
        let s_gmres = gmres(&a, &phi_inc, &mut x, 30, cfg);

        for (name, s) in [
            ("BiCGStab (paper)", &s_bicgs),
            ("BiCGStab + block-Jacobi", &s_pre),
            ("GMRES(30)", &s_gmres),
        ] {
            rows.push(vec![
                format!("{contrast}"),
                name.to_string(),
                s.matvecs.to_string(),
                s.iterations.to_string(),
                if s.converged { "yes" } else { "NO" }.to_string(),
            ]);
            records.push(Row {
                contrast,
                solver: name.to_string(),
                matvecs: s.matvecs,
                iterations: s.iterations,
                converged: s.converged,
            });
        }
    }
    print_table(
        &format!("forward-solver ablation ({px}x{px} px, cylinder, tol 1e-4)"),
        &[
            "contrast",
            "solver",
            "MLFMA mults",
            "iterations",
            "converged",
        ],
        &rows,
    );
    println!("the paper's BiCGStab choice trades monotonicity for 2 matvecs/iteration and");
    println!("O(1) vector storage; block-Jacobi (Section VIII future work) pays off as the");
    println!("contrast — and with it the system's departure from identity — grows.");
    write_json("solvers", &records).expect("write results");
}
