//! Criterion micro-benchmarks for the MLFMA engine: O(N) matvec scaling,
//! direct-product crossover, and the forward solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffw_geometry::{Domain, QuadTree};
use ffw_greens::{tree_positions, DirectG0, Kernel};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use ffw_solver::{solve_forward, IterConfig};
use std::sync::Arc;

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            c64(a, b)
        })
        .collect()
}

/// MLFMA matvec across problem sizes: time/N must stay ~flat (O(N)).
fn bench_matvec_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlfma_matvec");
    group.sample_size(10);
    for px in [32usize, 64, 128, 256] {
        let domain = Domain::new(px, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
        let eng = MlfmaEngine::new(plan, Arc::new(Pool::new(1)));
        let n = domain.n_pixels();
        let x = random_x(n, 1);
        let mut y = vec![C64::ZERO; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| eng.apply(&x, &mut y));
        });
    }
    group.finish();
}

/// Direct O(N^2) product at the sizes where it is still feasible — the
/// crossover against the MLFMA column above demonstrates the paper's point.
fn bench_direct_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_matvec");
    group.sample_size(10);
    for px in [32usize, 64] {
        let domain = Domain::new(px, 1.0);
        let tree = QuadTree::new(&domain);
        let positions = tree_positions(&domain, &tree);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let n = domain.n_pixels();
        let x = random_x(n, 2);
        let mut y = vec![C64::ZERO; n];
        let op = DirectG0::new(kernel, &positions);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| op.apply(&x, &mut y));
        });
    }
    group.finish();
}

/// One full forward-scattering solve (BiCGStab + MLFMA), the unit of work the
/// whole inverse solver is built from.
fn bench_forward_solve(c: &mut Criterion) {
    let domain = Domain::new(64, 1.0);
    let tree = QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let eng = MlfmaEngine::new(plan, Arc::new(Pool::new(1)));
    let op = ffw_bench_adapter::Adapter(&eng);
    let n = domain.n_pixels();
    let positions = tree_positions(&domain, &tree);
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let phi_inc = ffw_greens::incident_plane_wave(&kernel, 0.0, &positions);
    let object: Vec<C64> = positions
        .iter()
        .map(|p| {
            if p.norm() < 1.5 {
                c64(domain.k0() * domain.k0() * 0.02, 0.0)
            } else {
                C64::ZERO
            }
        })
        .collect();
    let mut phi = vec![C64::ZERO; n];
    c.bench_function("forward_solve_4096px_contrast0.02", |b| {
        b.iter(|| {
            phi.iter_mut().for_each(|v| *v = C64::ZERO);
            solve_forward(&op, &object, &phi_inc, &mut phi, IterConfig::default())
        });
    });
}

/// Tiny adapter module so the bench can use the engine as a LinOp without a
/// dependency cycle.
mod ffw_bench_adapter {
    use super::*;
    use ffw_solver::LinOp;
    pub struct Adapter<'a>(pub &'a MlfmaEngine);
    impl LinOp for Adapter<'_> {
        fn dim_out(&self) -> usize {
            self.0.n()
        }
        fn dim_in(&self) -> usize {
            self.0.n()
        }
        fn apply(&self, x: &[C64], y: &mut [C64]) {
            self.0.apply(x, y);
        }
    }
}

criterion_group!(
    benches,
    bench_matvec_scaling,
    bench_direct_crossover,
    bench_forward_solve
);
criterion_main!(benches);
