//! Criterion micro-benchmarks for the substrates: special functions, FFT,
//! thread pool and message-passing runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffw_mpi::Payload;
use ffw_numerics::bessel::hankel1_array;
use ffw_numerics::fft::Fft;
use ffw_numerics::{c64, C64};
use ffw_par::Pool;

fn bench_bessel(c: &mut Criterion) {
    c.bench_function("hankel1_array_L100_x150", |b| {
        b.iter(|| hankel1_array(100, 150.0));
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 257, 1024] {
        let plan = Fft::new(n);
        let mut data: Vec<C64> = (0..n).map(|i| c64(i as f64, -(i as f64))).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.forward(&mut data));
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let pool = Pool::new(2);
    let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
    c.bench_function("pool_map_reduce_100k", |b| {
        b.iter(|| {
            pool.map_reduce(
                data.len(),
                1024,
                |range| range.map(|i| data[i]).sum::<f64>(),
                0.0,
                |a, bb| a + bb,
            )
        });
    });
}

fn bench_mpi_allreduce(c: &mut Criterion) {
    c.bench_function("mpi_allreduce_4ranks_4k", |b| {
        b.iter(|| {
            let (r, _) = ffw_mpi::run(4, |comm| {
                let mut v = vec![(comm.rank() as f64, 1.0); 4096];
                comm.allreduce_sum_c64(&mut v);
                v[0].0
            });
            r
        });
    });
    c.bench_function("mpi_pingpong_16k", |b| {
        b.iter(|| {
            let (r, _) = ffw_mpi::run(2, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, Payload::C64(vec![(1.0, 2.0); 16384]));
                    comm.recv(1, 1).n_bytes()
                } else {
                    let p = comm.recv(0, 0);
                    comm.send(0, 1, p);
                    0
                }
            });
            r
        });
    });
}

criterion_group!(
    benches,
    bench_bessel,
    bench_fft,
    bench_pool,
    bench_mpi_allreduce
);
criterion_main!(benches);
