//! # ffw-perf
//!
//! Mechanistic performance model of the paper's Blue Waters campaign: node
//! models for the XE6/XK7 nodes (Table II), a Gemini-like network, per-
//! operation MLFMA pricing driven by the *real* plan work and exchange
//! schedules, and a whole-application schedule simulator regenerating the
//! scaling figures (9–12) and tables (III–IV).
//!
//! This crate substitutes for the hardware the paper ran on (see DESIGN.md,
//! substitution table): the algorithmic quantities (flops, bytes, messages,
//! iteration structure) come from the genuine solver data structures; only
//! the *rates* are modeled, with a single global constant calibrated to the
//! paper's 64-GPU-node baseline.

#![warn(missing_docs)]

pub mod app;
pub mod experiments;
pub mod machine;
pub mod opmodel;

pub use app::{mean_bicgs_iters, simulate, AppConfig, AppResult, Device};
pub use experiments::{
    calibrate, fig10, fig11, fig12, fig13_projection, fig9, table4, Fig13Projection, PlanLib,
    ScalePoint, Table4Row, CALIBRATION_SECONDS,
};
pub use machine::{gemini, xe6_cpu, xk7_gpu, NetworkModel, NodeModel};
pub use opmodel::{matvec_time, table3, MatvecComm, MatvecWork, OpBreakdown, Table3Row};
