//! Drivers regenerating every scaling figure and table of the paper's
//! evaluation (Figs. 9–12, Tables III–IV, and the Fig. 13 projection).
//!
//! One global time constant is calibrated so the Fig. 9 baseline (64 GPU
//! nodes, 1M unknowns, 1,024 illuminations) reproduces the paper's 1,096 s;
//! every other number is emergent from the mechanistic model.

use crate::app::{mean_bicgs_iters, simulate, AppConfig, AppResult, Device};
use crate::machine::{gemini, xe6_cpu, xk7_gpu, NetworkModel, NodeModel};
use crate::opmodel::{MatvecComm, MatvecWork};
use ffw_geometry::Domain;
use ffw_mlfma::{Accuracy, MlfmaPlan};
use serde::Serialize;
use std::collections::HashMap;

/// Paper baseline: Fig. 9, 64 GPU nodes, 1,096 seconds.
pub const CALIBRATION_SECONDS: f64 = 1096.0;

/// Cache of plan-derived work/communication quantities by domain size.
#[derive(Default)]
pub struct PlanLib {
    cache: HashMap<usize, (MatvecWork, HashMap<usize, MatvecComm>)>,
}

impl PlanLib {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Work and per-P communication for an `n_side_px` domain. Builds the
    /// real `MlfmaPlan` (and exchange schedules) on first use.
    pub fn get(
        &mut self,
        n_side_px: usize,
        ps: &[usize],
    ) -> (MatvecWork, HashMap<usize, MatvecComm>) {
        let entry = self.cache.entry(n_side_px).or_insert_with(|| {
            let plan = MlfmaPlan::new(&Domain::new(n_side_px, 1.0), Accuracy::default());
            let work = MatvecWork::from_stats(&plan.stats());
            let mut comms = HashMap::new();
            for &p in &[1usize, 2, 4, 8, 16] {
                comms.insert(p, MatvecComm::from_plan(&plan, p));
            }
            (work, comms)
        });
        let mut comms = HashMap::new();
        for &p in ps {
            comms.insert(p, entry.1[&p]);
        }
        (entry.0.clone(), comms)
    }
}

fn devices() -> (NodeModel, NodeModel, NetworkModel) {
    (xe6_cpu(), xk7_gpu(), gemini())
}

fn node_model(device: Device) -> NodeModel {
    match device {
        Device::Cpu => xe6_cpu(),
        Device::Gpu => xk7_gpu(),
    }
}

fn run(lib: &mut PlanLib, n_side_px: usize, cfg: &AppConfig, scale: f64) -> AppResult {
    let (_, _, net) = devices();
    let (work, comms) = lib.get(n_side_px, &[cfg.subtree_ranks]);
    let node = node_model(cfg.device);
    simulate(
        &cfg.clone(),
        &work,
        &comms[&cfg.subtree_ranks],
        &node,
        &net,
        scale,
    )
}

fn base_config(n_side_px: usize, n_tx: usize, n_rx: usize) -> AppConfig {
    let n_pixels = n_side_px * n_side_px;
    AppConfig {
        n_pixels,
        n_tx,
        n_rx,
        dbim_iters: 50,
        illum_groups: 1,
        subtree_ranks: 1,
        device: Device::Gpu,
        mean_bicgs: mean_bicgs_iters(n_pixels, n_tx),
        iter_cv: 0.1,
        seed: 20180521, // IPDPS'18
        adjusted: None,
    }
}

/// Calibrates the global time constant against the Fig. 9 baseline.
pub fn calibrate(lib: &mut PlanLib) -> f64 {
    let mut cfg = base_config(1024, 1024, 1024);
    cfg.illum_groups = 64;
    let raw = run(lib, 1024, &cfg, 1.0).seconds;
    CALIBRATION_SECONDS / raw
}

/// One point of a scaling series.
#[derive(Clone, Debug, Serialize)]
pub struct ScalePoint {
    /// Total node count.
    pub nodes: usize,
    /// Modeled reconstruction time (s).
    pub seconds: f64,
    /// Speedup vs the series baseline.
    pub speedup: f64,
    /// Parallel efficiency vs the baseline (strong: speedup/(nodes ratio);
    /// weak: t_base/t).
    pub efficiency: f64,
    /// Adjusted-metric seconds (weak scaling only).
    pub adjusted_seconds: Option<f64>,
    /// Adjusted-metric efficiency (weak scaling only).
    pub adjusted_efficiency: Option<f64>,
}

/// Fig. 9: strong scaling across illuminations (64 -> 1024 GPU nodes,
/// 1M unknowns, 1,024 illuminations, one MLFMA per node).
pub fn fig9(lib: &mut PlanLib, scale: f64) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    let mut base_time = 0.0;
    for (i, nodes) in [64usize, 128, 256, 512, 1024].into_iter().enumerate() {
        let mut cfg = base_config(1024, 1024, 1024);
        cfg.illum_groups = nodes;
        let r = run(lib, 1024, &cfg, scale);
        if i == 0 {
            base_time = r.seconds;
        }
        let speedup = base_time / r.seconds;
        out.push(ScalePoint {
            nodes,
            seconds: r.seconds,
            speedup,
            efficiency: speedup / (nodes as f64 / 64.0),
            adjusted_seconds: None,
            adjusted_efficiency: None,
        });
    }
    out
}

/// Fig. 10: strong scaling across MLFMA sub-trees (64 illumination groups
/// fixed; 1, 2, 4, 8, 16 sub-tree ranks per group).
pub fn fig10(lib: &mut PlanLib, scale: f64) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    let mut base_time = 0.0;
    for (i, p) in [1usize, 2, 4, 8, 16].into_iter().enumerate() {
        let mut cfg = base_config(1024, 1024, 1024);
        cfg.illum_groups = 64;
        cfg.subtree_ranks = p;
        let r = run(lib, 1024, &cfg, scale);
        if i == 0 {
            base_time = r.seconds;
        }
        let nodes = 64 * p;
        let speedup = base_time / r.seconds;
        out.push(ScalePoint {
            nodes,
            seconds: r.seconds,
            speedup,
            efficiency: speedup / (p as f64),
            adjusted_seconds: None,
            adjusted_efficiency: None,
        });
    }
    out
}

/// Fig. 11: weak scaling across illuminations — one illumination per node,
/// node count and illumination count grow together.
pub fn fig11(lib: &mut PlanLib, scale: f64) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    let mut base_time = 0.0;
    let baseline_mean = mean_bicgs_iters(1024 * 1024, 64);
    for (i, nodes) in [64usize, 128, 256, 512, 1024].into_iter().enumerate() {
        let mut cfg = base_config(1024, nodes, 1024);
        cfg.illum_groups = nodes;
        let r = run(lib, 1024, &cfg, scale);
        let mut adj_cfg = cfg.clone();
        adj_cfg.adjusted = Some(baseline_mean);
        let ra = run(lib, 1024, &adj_cfg, scale);
        if i == 0 {
            base_time = r.seconds;
        }
        out.push(ScalePoint {
            nodes,
            seconds: r.seconds,
            speedup: base_time / r.seconds,
            efficiency: base_time / r.seconds,
            adjusted_seconds: Some(ra.seconds),
            adjusted_efficiency: Some(base_time / ra.seconds),
        });
    }
    out
}

/// Fig. 12: weak scaling across MLFMA sub-trees — the imaging domain grows
/// by 4x with the node count (constant sub-tree per node).
pub fn fig12(lib: &mut PlanLib, scale: f64) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    let mut base_time = 0.0;
    let baseline_mean = mean_bicgs_iters(1024 * 1024, 1024);
    for (i, (nodes, px, p)) in [
        (64usize, 1024usize, 1usize),
        (256, 2048, 4),
        (1024, 4096, 16),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cfg = base_config(px, 1024, 1024);
        cfg.illum_groups = 64;
        cfg.subtree_ranks = p;
        let r = run(lib, px, &cfg, scale);
        let mut adj_cfg = cfg.clone();
        adj_cfg.adjusted = Some(baseline_mean);
        let ra = run(lib, px, &adj_cfg, scale);
        if i == 0 {
            base_time = r.seconds;
        }
        out.push(ScalePoint {
            nodes,
            seconds: r.seconds,
            speedup: base_time / r.seconds,
            efficiency: base_time / r.seconds,
            adjusted_seconds: Some(ra.seconds),
            adjusted_efficiency: Some(base_time / ra.seconds),
        });
    }
    out
}

/// One row of Table IV: whole-application CPU vs GPU time.
#[derive(Clone, Debug, Serialize)]
pub struct Table4Row {
    /// Node count.
    pub nodes: usize,
    /// CPU-node time (s).
    pub cpu_seconds: f64,
    /// GPU-node time (s).
    pub gpu_seconds: f64,
    /// GPU speedup.
    pub speedup: f64,
}

/// Table IV: scaling to 1,024 nodes across illuminations and to 4,096 by
/// adding 4-way sub-tree partitioning (paper Section V-E-2).
pub fn table4(lib: &mut PlanLib, scale: f64) -> Vec<Table4Row> {
    let mut out = Vec::new();
    for (nodes, groups, p) in [
        (64usize, 64usize, 1usize),
        (256, 256, 1),
        (1024, 1024, 1),
        (4096, 1024, 4),
    ] {
        let mut cfg = base_config(1024, 1024, 1024);
        cfg.illum_groups = groups;
        cfg.subtree_ranks = p;
        cfg.device = Device::Gpu;
        let gpu = run(lib, 1024, &cfg, scale).seconds;
        cfg.device = Device::Cpu;
        let cpu = run(lib, 1024, &cfg, scale).seconds;
        out.push(Table4Row {
            nodes,
            cpu_seconds: cpu,
            gpu_seconds: gpu,
            speedup: cpu / gpu,
        });
    }
    out
}

/// The Fig. 13 large-reconstruction projection: 204.8 lambda (4M unknowns),
/// 1,024 transmitters, 2,048 receivers, 4,096 GPU nodes (1,024 illumination
/// groups x 4 sub-trees), 50 DBIM iterations, weak (0.02) contrast.
#[derive(Clone, Debug, Serialize)]
pub struct Fig13Projection {
    /// Modeled total time (paper: 126.9 s).
    pub seconds: f64,
    /// Forward-scattering problems solved (paper: 153,600).
    pub forward_solves: usize,
    /// Total MLFMA multiplications (paper: 2,054,312).
    pub mlfma_mults: f64,
    /// MLFMA multiplications per forward solve (paper: 13.4).
    pub mults_per_solve: f64,
}

/// Runs the Fig. 13 projection.
pub fn fig13_projection(lib: &mut PlanLib, scale: f64) -> Fig13Projection {
    let mut cfg = base_config(2048, 1024, 2048);
    cfg.illum_groups = 1024;
    cfg.subtree_ranks = 4;
    // weak 0.02-contrast phantom: paper's 13.4 MLFMA mults/solve -> ~6.2
    // BiCGStab iterations (2 mults/iteration + initial residual).
    cfg.mean_bicgs = 6.2;
    let r = run(lib, 2048, &cfg, scale);
    let forward_solves = cfg.dbim_iters * 3 * cfg.n_tx;
    let mults_per_solve = 2.0 * r.avg_bicgs + 1.0;
    Fig13Projection {
        seconds: r.seconds,
        forward_solves,
        mlfma_mults: forward_solves as f64 * mults_per_solve,
        mults_per_solve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uses a small domain so the test stays fast; exercises the series
    /// machinery end to end with real plan-derived quantities.
    #[test]
    fn strong_scaling_series_is_monotone() {
        let mut lib = PlanLib::new();
        // miniature stand-in for fig9's sweep
        let mut base = 0.0;
        for (i, nodes) in [8usize, 16, 32].into_iter().enumerate() {
            let mut cfg = base_config(128, 64, 64);
            cfg.dbim_iters = 3;
            cfg.illum_groups = nodes;
            let r = run(&mut lib, 128, &cfg, 1.0);
            if i == 0 {
                base = r.seconds;
            }
            assert!(r.seconds <= base, "monotone decrease");
        }
    }

    #[test]
    fn subtree_scaling_efficiency_below_illumination_scaling() {
        // The paper's central Section V-C observation.
        let mut lib = PlanLib::new();
        let mut illum = base_config(128, 64, 64);
        illum.dbim_iters = 3;
        illum.illum_groups = 4;
        let t_illum = run(&mut lib, 128, &illum, 1.0).seconds;
        let mut sub = base_config(128, 64, 64);
        sub.dbim_iters = 3;
        sub.subtree_ranks = 4;
        let t_sub = run(&mut lib, 128, &sub, 1.0).seconds;
        let mut serial = base_config(128, 64, 64);
        serial.dbim_iters = 3;
        let t1 = run(&mut lib, 128, &serial, 1.0).seconds;
        let eff_illum = t1 / t_illum / 4.0;
        let eff_sub = t1 / t_sub / 4.0;
        assert!(
            eff_illum > eff_sub,
            "illuminations scale better: {eff_illum:.2} vs {eff_sub:.2}"
        );
    }
}
