//! Whole-application performance model: simulates the schedule of the
//! DBIM + MLFMA reconstruction on a modeled machine (Figs. 9–12, Table IV).
//!
//! The simulation executes the paper's Fig. 4 control flow: per DBIM
//! iteration, every illumination group serially processes its transmitters
//! (three forward-class solves each), the two cross-group synchronizations
//! (gradient combine, step combine) close the iteration, and the iteration
//! time is the *maximum* over groups — which is how per-solve BiCGStab
//! iteration-count variance turns into the scaling losses the paper
//! discusses (Sections V-C-1 and V-D).

use crate::machine::{NetworkModel, NodeModel};
use crate::opmodel::{matvec_time, MatvecComm, MatvecWork};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Device choice for the per-node model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Device {
    /// XE6-style CPU node.
    Cpu,
    /// XK7-style GPU node.
    Gpu,
}

/// One whole-application run configuration.
#[derive(Clone, Debug, Serialize)]
pub struct AppConfig {
    /// Unknown pixels (N).
    pub n_pixels: usize,
    /// Transmitters (T).
    pub n_tx: usize,
    /// Receivers (R).
    pub n_rx: usize,
    /// DBIM iterations (the paper runs 50).
    pub dbim_iters: usize,
    /// Number of illumination groups (first parallel dimension).
    pub illum_groups: usize,
    /// Sub-tree ranks per group (second parallel dimension).
    pub subtree_ranks: usize,
    /// Node type.
    pub device: Device,
    /// Mean BiCGStab iterations per forward solve.
    pub mean_bicgs: f64,
    /// Coefficient of variation of the per-solve iteration count.
    pub iter_cv: f64,
    /// RNG seed for the iteration-count process.
    pub seed: u64,
    /// `Some(baseline_mean)`: the paper's "adjusted" metric — BiCGStab time
    /// rescaled to the baseline iteration count, removing algorithmic
    /// iteration variation from the efficiency.
    pub adjusted: Option<f64>,
}

/// Result of one simulated run.
#[derive(Clone, Debug, Serialize)]
pub struct AppResult {
    /// Total reconstruction time (seconds).
    pub seconds: f64,
    /// Mean BiCGStab iterations actually drawn.
    pub avg_bicgs: f64,
    /// Fraction of time in exposed communication + synchronization.
    pub comm_fraction: f64,
    /// Single distributed matvec time used (seconds).
    pub matvec_seconds: f64,
}

/// Simulates a run. `work`/`comm` must describe one matvec of the *full*
/// problem at `cfg.subtree_ranks` partitioning; `scale` is the global
/// calibration constant (see `experiments::calibrate`).
pub fn simulate(
    cfg: &AppConfig,
    work: &MatvecWork,
    comm: &MatvecComm,
    node: &NodeModel,
    net: &NetworkModel,
    scale: f64,
) -> AppResult {
    let p = cfg.subtree_ranks;
    let t_mv = matvec_time(work, comm, node, net, p).total() * scale;
    // BLAS-1 traffic of one BiCGStab iteration (~10 local-vector sweeps).
    let n_local = cfg.n_pixels as f64 / p as f64;
    let t_vec = 10.0 * n_local * 16.0 / node.stream_bytes * scale;
    // Receiver operator per solve: R x N_local dense.
    let t_gr = 8.0 * cfg.n_rx as f64 * n_local / node.dense_flops * scale;
    // Per-group synchronizations per DBIM iteration: gradient + step combine.
    let t_sync = 2.0 * net.allreduce(16.0 * n_local, cfg.illum_groups)
        + 4.0 * net.allreduce(16.0, cfg.illum_groups * p);

    assert_eq!(
        cfg.n_tx % cfg.illum_groups,
        0,
        "tx must divide among groups"
    );
    let tx_per_group = cfg.n_tx / cfg.illum_groups;

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut total = 0.0f64;
    let mut comm_time = 0.0f64;
    let mut iter_sum = 0.0f64;
    let mut iter_count = 0usize;
    let exposed = matvec_time(work, comm, node, net, p).comm_exposed * scale;
    for _ in 0..cfg.dbim_iters {
        let mut worst_group = 0.0f64;
        for _g in 0..cfg.illum_groups {
            let mut group_time = 0.0;
            for _t in 0..tx_per_group {
                for _solve in 0..3 {
                    // Box-Muller normal draw
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    let drawn = (cfg.mean_bicgs * (1.0 + cfg.iter_cv * z)).max(3.0);
                    iter_sum += drawn;
                    iter_count += 1;
                    // the adjusted metric rescales BiCGStab time to the
                    // baseline iteration count
                    let charged = match cfg.adjusted {
                        Some(baseline) => drawn * (baseline / cfg.mean_bicgs),
                        None => drawn,
                    };
                    group_time += charged * (2.0 * t_mv + t_vec) + t_gr;
                }
            }
            if group_time > worst_group {
                worst_group = group_time;
            }
        }
        total += worst_group + t_sync;
        comm_time += t_sync;
        // exposed per-matvec communication is inside t_mv; count it
        let solves = (tx_per_group * 3) as f64;
        comm_time += solves * cfg.mean_bicgs * 2.0 * exposed;
    }
    AppResult {
        seconds: total,
        avg_bicgs: iter_sum / iter_count.max(1) as f64,
        comm_fraction: (comm_time / total).min(1.0),
        matvec_seconds: t_mv,
    }
}

/// Mean BiCGStab iteration count model: grows slowly with problem size and
/// with the number of illuminations (both observed by the paper's weak
/// scaling analysis as "forward solver iteration variation ... a property of
/// the algorithm").
pub fn mean_bicgs_iters(n_pixels: usize, n_tx: usize) -> f64 {
    let n0 = (1usize << 20) as f64; // 1M-unknown reference
    let t0 = 1024.0;
    let base = 12.0;
    base * (1.0 + 0.068 * (n_pixels as f64 / n0).log2())
        * (1.0 + 0.05 * (n_tx as f64 / t0).log2().max(-4.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{gemini, xe6_cpu, xk7_gpu};
    use ffw_geometry::Domain;
    use ffw_mlfma::{Accuracy, MlfmaPlan};

    fn small_work() -> (MatvecWork, MatvecComm) {
        let plan = MlfmaPlan::new(&Domain::new(128, 1.0), Accuracy::low());
        (
            MatvecWork::from_stats(&plan.stats()),
            MatvecComm::from_plan(&plan, 4),
        )
    }

    fn cfg(groups: usize, p: usize, device: Device) -> AppConfig {
        AppConfig {
            n_pixels: 128 * 128,
            n_tx: 64,
            n_rx: 64,
            dbim_iters: 5,
            illum_groups: groups,
            subtree_ranks: p,
            device,
            mean_bicgs: 12.0,
            iter_cv: 0.1,
            seed: 7,
            adjusted: None,
        }
    }

    #[test]
    fn more_illumination_groups_is_faster_but_sublinear() {
        let (work, _) = small_work();
        let none = MatvecComm::default();
        let net = gemini();
        let gpu = xk7_gpu();
        let t1 = simulate(&cfg(1, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        let t16 = simulate(&cfg(16, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        let t64 = simulate(&cfg(64, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        assert!(t16 < t1 && t64 < t16);
        let speedup = t1 / t64;
        assert!(speedup > 30.0 && speedup < 64.0, "sublinear: {speedup}");
    }

    #[test]
    fn iteration_variance_causes_straggler_loss() {
        let (work, _) = small_work();
        let none = MatvecComm::default();
        let net = gemini();
        let gpu = xk7_gpu();
        let mut no_var = cfg(64, 1, Device::Gpu);
        no_var.iter_cv = 0.0;
        let t_novar = simulate(&no_var, &work, &none, &gpu, &net, 1.0).seconds;
        let t_var = simulate(&cfg(64, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        assert!(
            t_var > 1.05 * t_novar,
            "stragglers add >5%: {t_var} vs {t_novar}"
        );
    }

    #[test]
    fn adjusted_metric_removes_variation() {
        let (work, _) = small_work();
        let none = MatvecComm::default();
        let net = gemini();
        let gpu = xk7_gpu();
        let mut adj = cfg(64, 1, Device::Gpu);
        adj.adjusted = Some(12.0);
        adj.mean_bicgs = 15.0; // grown iteration count...
        let t_adj = simulate(&adj, &work, &none, &gpu, &net, 1.0).seconds;
        let mut raw = adj.clone();
        raw.adjusted = None;
        let t_raw = simulate(&raw, &work, &none, &gpu, &net, 1.0).seconds;
        assert!(t_adj < t_raw, "adjusted removes the grown iterations");
    }

    #[test]
    fn cpu_slower_than_gpu_at_paper_scale() {
        // GPU wins only once kernels are large enough — the same effect the
        // paper reports as degraded GPU efficiency under fine sub-tree
        // partitioning (Section V-C-2). Use the real 1M-unknown plan.
        let plan = MlfmaPlan::new(&Domain::new(1024, 1.0), Accuracy::default());
        let work = MatvecWork::from_stats(&plan.stats());
        let comm = MatvecComm::from_plan(&plan, 4);
        let net = gemini();
        let mut c = cfg(4, 4, Device::Cpu);
        c.n_pixels = 1024 * 1024;
        let t_cpu = simulate(&c, &work, &comm, &xe6_cpu(), &net, 1.0).seconds;
        c.device = Device::Gpu;
        let t_gpu = simulate(&c, &work, &comm, &xk7_gpu(), &net, 1.0).seconds;
        let ratio = t_cpu / t_gpu;
        assert!(ratio > 2.5 && ratio < 6.0, "whole-app GPU speedup {ratio}");
    }

    #[test]
    fn iteration_mean_model_grows() {
        let m1 = mean_bicgs_iters(1 << 20, 1024);
        let m16 = mean_bicgs_iters(1 << 24, 1024);
        assert!(m16 > m1);
        assert!((m16 / m1) > 1.2 && (m16 / m1) < 1.4);
        let t1 = mean_bicgs_iters(1 << 20, 64);
        let t16 = mean_bicgs_iters(1 << 20, 1024);
        assert!(t16 > t1);
    }

    #[test]
    fn deterministic_in_seed() {
        let (work, _) = small_work();
        let none = MatvecComm::default();
        let net = gemini();
        let gpu = xk7_gpu();
        let a = simulate(&cfg(8, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        let b = simulate(&cfg(8, 1, Device::Gpu), &work, &none, &gpu, &net, 1.0).seconds;
        assert_eq!(a, b);
    }
}
