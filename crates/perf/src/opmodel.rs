//! Per-operation MLFMA timing model (drives the paper's Table III).
//!
//! Work quantities come from the *real* plan (`MlfmaPlan::stats()` and the
//! real distributed exchange schedule `ExchangePlan`), not from asymptotic
//! formulas; the machine model then prices them per operation class.

use crate::machine::{NetworkModel, NodeModel};
use ffw_dist::ExchangePlan;
use ffw_mlfma::{MlfmaPlan, PlanStats};
use serde::Serialize;

/// Byte traffic per (sample, pair) of a diagonal stream operation:
/// load source + load operator + read-modify-write accumulator.
const STREAM_BYTES_PER_SAMPLE: f64 = 48.0;

/// Time breakdown of one MLFMA matvec (seconds), by the paper's Table III
/// operation rows.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct OpBreakdown {
    /// Multipole expansion (dense, leaves).
    pub expansion: f64,
    /// Aggregation: interpolation (dense-class) + outgoing shifts (stream).
    pub aggregation: f64,
    /// Translation (stream).
    pub translation: f64,
    /// Disaggregation: anterpolation + incoming shifts.
    pub disaggregation: f64,
    /// Local expansion (dense, leaves).
    pub local_expansion: f64,
    /// Near-field interactions (dense blocks).
    pub nearfield: f64,
    /// Non-overlapped communication time.
    pub comm_exposed: f64,
}

impl OpBreakdown {
    /// Total matvec time.
    pub fn total(&self) -> f64 {
        self.expansion
            + self.aggregation
            + self.translation
            + self.disaggregation
            + self.local_expansion
            + self.nearfield
            + self.comm_exposed
    }
}

/// Structural work quantities of one matvec, split by phase.
#[derive(Clone, Debug, Serialize)]
pub struct MatvecWork {
    /// Dense flops: expansion.
    pub expansion_flops: f64,
    /// Dense flops: interpolation + shift aggregation work (gather-friendly,
    /// fused into matrix-matrix kernels — the paper's fastest-scaling op).
    pub interp_flops: f64,
    /// Stream bytes: disaggregation (anterpolation is a transpose: scattered
    /// writes keep it bandwidth-bound, the paper's slow op alongside
    /// translation).
    pub disagg_bytes: f64,
    /// Stream bytes: translations.
    pub translation_bytes: f64,
    /// Dense flops: local expansion.
    pub local_flops: f64,
    /// Dense flops: near field.
    pub nearfield_flops: f64,
    /// Kernel-launch counts per phase (expansion, agg, trans, disagg, local, near).
    pub kernels: [f64; 6],
}

impl MatvecWork {
    /// Extracts the work of a full (single-rank) matvec from plan statistics.
    pub fn from_stats(stats: &PlanStats) -> Self {
        let cmul = 8.0;
        let mut interp_flops = 0.0;
        let mut disagg_bytes = 0.0;
        let mut translation_bytes = 0.0;
        let mut agg_kernels = 0.0;
        let mut trans_kernels = 0.0;
        for (i, l) in stats.levels.iter().enumerate() {
            translation_bytes += l.translation_pairs as f64 * l.q as f64 * STREAM_BYTES_PER_SAMPLE;
            trans_kernels += 40.0;
            if i + 1 < stats.levels.len() {
                let children = 4.0 * l.n_clusters as f64;
                // interpolation (band) + fused diagonal shift
                let flops = children * l.q as f64 * (stats.interp_band + 1) as f64 * cmul;
                interp_flops += flops;
                // the transpose pass moves ~0.75 bytes per flop (scattered RMW)
                disagg_bytes += flops * 0.75;
                agg_kernels += 2.0;
            }
        }
        MatvecWork {
            expansion_flops: stats.expansion_flops,
            interp_flops,
            disagg_bytes,
            translation_bytes,
            local_flops: stats.local_expansion_flops,
            nearfield_flops: stats.nearfield_flops,
            kernels: [1.0, agg_kernels, trans_kernels, agg_kernels, 1.0, 9.0],
        }
    }

    /// Divides all work by `p` ranks (kernel counts stay per rank).
    pub fn per_rank(&self, p: usize) -> MatvecWork {
        let s = 1.0 / p as f64;
        MatvecWork {
            expansion_flops: self.expansion_flops * s,
            interp_flops: self.interp_flops * s,
            disagg_bytes: self.disagg_bytes * s,
            translation_bytes: self.translation_bytes * s,
            local_flops: self.local_flops * s,
            nearfield_flops: self.nearfield_flops * s,
            kernels: self.kernels,
        }
    }
}

/// Per-rank communication quantities of one distributed matvec.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct MatvecComm {
    /// Bytes sent by the busiest rank.
    pub bytes: f64,
    /// Messages sent by the busiest rank (with buffer aggregation).
    pub messages: f64,
}

impl MatvecComm {
    /// Measures the real exchange schedule of the plan at `p` sub-tree ranks.
    pub fn from_plan(plan: &MlfmaPlan, p: usize) -> Self {
        if p <= 1 {
            return MatvecComm::default();
        }
        let mut worst_bytes = 0.0f64;
        let mut worst_msgs = 0.0f64;
        for r in 0..p {
            let ex = ExchangePlan::new(plan, p, r);
            let words = ex.total_send_words(plan) + ex.total_halo_words();
            let bytes = words as f64 * 16.0;
            // aggregated: one far-field + one halo message per active peer
            let msgs = 2.0 * ex.n_peers() as f64;
            if bytes > worst_bytes {
                worst_bytes = bytes;
            }
            if msgs > worst_msgs {
                worst_msgs = msgs;
            }
        }
        MatvecComm {
            bytes: worst_bytes,
            messages: worst_msgs,
        }
    }
}

/// Prices one distributed matvec on `node`, with `p` sub-tree ranks.
///
/// Communication is overlapped with the near-field + aggregation compute when
/// the node supports it (paper Fig. 8); otherwise it is fully exposed.
pub fn matvec_time(
    work_full: &MatvecWork,
    comm: &MatvecComm,
    node: &NodeModel,
    net: &NetworkModel,
    p: usize,
) -> OpBreakdown {
    let w = work_full.per_rank(p);
    let mut b = OpBreakdown {
        expansion: node.dense_time(w.expansion_flops, w.kernels[0]),
        aggregation: node.dense_time(w.interp_flops, w.kernels[1]),
        translation: node.stream_time(w.translation_bytes, w.kernels[2]),
        disaggregation: node.stream_time(w.disagg_bytes, w.kernels[3]),
        local_expansion: node.dense_time(w.local_flops, w.kernels[4]),
        nearfield: node.dense_time(w.nearfield_flops, w.kernels[5]),
        comm_exposed: 0.0,
    };
    if p > 1 {
        let t_comm = net.transfer(comm.bytes, comm.messages);
        if node.overlaps_comm {
            // hidden behind near-field + aggregation (independent phases)
            let cover = b.nearfield + b.aggregation;
            b.comm_exposed = (t_comm - cover).max(0.0);
        } else {
            b.comm_exposed = t_comm;
        }
    }
    b
}

/// One row of the paper's Table III.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    /// Operation name.
    pub op: &'static str,
    /// 1-node GPU speedup over 1-node CPU.
    pub gpu1: f64,
    /// 16-node CPU speedup over 1-node CPU.
    pub cpu16: f64,
    /// 16-node GPU speedup over 1-node CPU.
    pub gpu16: f64,
}

/// Generates the Table III rows for a given plan (the paper uses the
/// 409.6-lambda, 16M-unknown domain).
pub fn table3(
    plan: &MlfmaPlan,
    cpu: &NodeModel,
    gpu: &NodeModel,
    net: &NetworkModel,
) -> Vec<Table3Row> {
    let stats = plan.stats();
    let work = MatvecWork::from_stats(&stats);
    let comm16 = MatvecComm::from_plan(plan, 16);
    let c1 = matvec_time(&work, &MatvecComm::default(), cpu, net, 1);
    let g1 = matvec_time(&work, &MatvecComm::default(), gpu, net, 1);
    let mut c16 = matvec_time(&work, &comm16, cpu, net, 16);
    let mut g16 = matvec_time(&work, &comm16, gpu, net, 16);
    // Spread exposed communication across the communicating phases
    // (translation and near field) proportionally, as the paper's per-op
    // timings would observe it.
    for b in [&mut c16, &mut g16] {
        let extra = b.comm_exposed;
        let base = b.translation + b.nearfield;
        if base > 0.0 {
            b.translation += extra * b.translation / base;
            b.nearfield += extra * b.nearfield / base;
            b.comm_exposed = 0.0;
        }
    }
    let rows = |f: fn(&OpBreakdown) -> f64, name: &'static str| Table3Row {
        op: name,
        gpu1: f(&c1) / f(&g1),
        cpu16: f(&c1) / f(&c16),
        gpu16: f(&c1) / f(&g16),
    };
    vec![
        rows(|b| b.expansion, "Multipole Expansion"),
        rows(|b| b.aggregation, "Aggregation"),
        rows(|b| b.translation, "Translation"),
        rows(|b| b.disaggregation, "Disaggregation"),
        rows(|b| b.local_expansion, "Local Expansion"),
        rows(|b| b.nearfield, "Near-Field Interactions"),
        rows(|b| b.total(), "Overall"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{gemini, xe6_cpu, xk7_gpu};
    use ffw_geometry::Domain;
    use ffw_mlfma::Accuracy;

    #[test]
    fn table3_shape_matches_paper() {
        // Paper scale matters here: GPU kernel overheads only amortize at
        // the 1M-unknown sizes the paper measures. Relations: dense ops speed
        // up most, translation least, 16-node GPU efficiency beats 16-node
        // CPU efficiency thanks to overlap.
        let plan = MlfmaPlan::new(&Domain::new(1024, 1.0), Accuracy::default());
        let rows = table3(&plan, &xe6_cpu(), &xk7_gpu(), &gemini());
        let get = |name: &str| rows.iter().find(|r| r.op == name).expect("row").clone();
        let trans = get("Translation");
        let expan = get("Multipole Expansion");
        let local = get("Local Expansion");
        let overall = get("Overall");
        assert!(expan.gpu1 > trans.gpu1, "dense faster than diagonal on GPU");
        assert!(local.gpu1 > 4.0 && local.gpu1 < 6.5);
        assert!(trans.gpu1 > 2.0 && trans.gpu1 < 4.0);
        assert!(overall.gpu1 > 3.0 && overall.gpu1 < 5.5);
        // At this 1M-unknown size, 16-way sub-tree partitioning leaves each
        // GPU kernel too small: GPU parallel efficiency degrades below the
        // CPU's (exactly the paper's Section V-C-2 explanation of Fig. 10's
        // 46.6%). Dense leaf-level ops with one big kernel still scale well.
        let eff_gpu = overall.gpu16 / overall.gpu1 / 16.0;
        let eff_cpu = overall.cpu16 / 16.0;
        assert!(
            eff_gpu < eff_cpu,
            "small kernels degrade GPU sub-tree scaling: {eff_gpu} vs {eff_cpu}"
        );
        assert!(expan.gpu16 > 3.0 * expan.cpu16, "leaf GEMMs keep scaling");
    }

    #[test]
    fn matvec_work_is_order_n() {
        let acc = Accuracy::default();
        let w1 = MatvecWork::from_stats(&MlfmaPlan::new(&Domain::new(64, 1.0), acc).stats());
        let w2 = MatvecWork::from_stats(&MlfmaPlan::new(&Domain::new(256, 1.0), acc).stats());
        let total = |w: &MatvecWork| {
            w.expansion_flops
                + w.interp_flops
                + w.local_flops
                + w.nearfield_flops
                + (w.disagg_bytes + w.translation_bytes) / 6.0
        };
        let per1 = total(&w1) / (64.0 * 64.0);
        let per2 = total(&w2) / (256.0 * 256.0);
        assert!(per2 / per1 < 1.7, "O(N): {per1:.0} vs {per2:.0} per px");
    }

    #[test]
    fn communication_grows_with_ranks_but_sublinearly_per_rank() {
        let plan = MlfmaPlan::new(&Domain::new(256, 1.0), Accuracy::low());
        let c4 = MatvecComm::from_plan(&plan, 4);
        let c16 = MatvecComm::from_plan(&plan, 16);
        assert!(c4.bytes > 0.0);
        // per-rank boundary shrinks relative to work as ranks grow, but total
        // per-rank bytes may grow; sanity: more ranks -> more messages
        assert!(c16.messages >= c4.messages);
    }
}
