//! Machine models for the Blue Waters node types (paper Table II) and the
//! Gemini interconnect.
//!
//! The model distinguishes two operation classes, following the arithmetic
//! intensity of the paper's Table I operators:
//!
//! * **dense-class** (multipole/local expansions, near-field blocks,
//!   band-diagonal interpolation): compute-bound matrix-matrix work, rated in
//!   effective flop/s;
//! * **stream-class** (diagonal translations and shifts): one multiply-add
//!   per loaded complex pair, memory-bandwidth-bound, rated in effective
//!   byte/s.
//!
//! GPUs additionally pay a per-kernel launch overhead and lose efficiency on
//! small kernels (the mechanism behind the paper's Section V-C-2 remark that
//! sub-tree partitioning degrades GPU efficiency through "smaller chunks of
//! work per kernel"). Kernel efficiency is modeled as `W / (W + W_half)`.

use serde::Serialize;

/// A compute-node model.
#[derive(Clone, Debug, Serialize)]
pub struct NodeModel {
    /// Display name.
    pub name: &'static str,
    /// Effective rate for dense-class operations (flop/s).
    pub dense_flops: f64,
    /// Effective bandwidth for stream-class operations (byte/s).
    pub stream_bytes: f64,
    /// Per-kernel launch overhead (s); zero for CPUs.
    pub kernel_overhead: f64,
    /// Work size (flops) at which a kernel reaches half its peak rate;
    /// zero disables the small-kernel penalty.
    pub half_work: f64,
    /// True if the node overlaps MPI communication with computation (the
    /// XK7 runs use the idle CPU to progress messages, paper Fig. 8).
    pub overlaps_comm: bool,
}

impl NodeModel {
    /// Time for `flops` of dense-class work dispatched as `kernels` kernels.
    pub fn dense_time(&self, flops: f64, kernels: f64) -> f64 {
        let eff = if self.half_work > 0.0 && kernels > 0.0 {
            let per = flops / kernels;
            per / (per + self.half_work)
        } else {
            1.0
        };
        flops / (self.dense_flops * eff.max(1e-3)) + kernels * self.kernel_overhead
    }

    /// Time for `bytes` of stream-class traffic dispatched as `kernels` kernels.
    pub fn stream_time(&self, bytes: f64, kernels: f64) -> f64 {
        let eff = if self.half_work > 0.0 && kernels > 0.0 {
            // use bytes as the work measure for streaming kernels, with the
            // same half-work constant expressed in bytes (1 flop ~ 1 byte here)
            let per = bytes / kernels;
            per / (per + self.half_work)
        } else {
            1.0
        };
        bytes / (self.stream_bytes * eff.max(1e-3)) + kernels * self.kernel_overhead
    }
}

/// XE6 CPU node: 2 x AMD Opteron 6276, 16 cores used (paper Section V-A).
pub fn xe6_cpu() -> NodeModel {
    NodeModel {
        name: "XE6 (16-core CPU)",
        // ~134 GF/s DP peak; blocked complex kernels at ~55% => 75 GF/s
        dense_flops: 75e9,
        // 2 sockets DDR3-1600: ~102 GB/s peak, ~50% streaming efficiency
        stream_bytes: 52e9,
        kernel_overhead: 0.0,
        half_work: 0.0,
        overlaps_comm: false,
    }
}

/// XK7 GPU node: NVIDIA Tesla K20x (14 SMX), host CPU drives communication.
pub fn xk7_gpu() -> NodeModel {
    NodeModel {
        name: "XK7 (K20x GPU)",
        // 1.31 TF/s DP peak; mid-size complex GEMMs at ~29% => 380 GF/s
        dense_flops: 380e9,
        // 250 GB/s peak, ECC on and irregular access: ~60% => 150 GB/s
        stream_bytes: 150e9,
        kernel_overhead: 6e-6,
        half_work: 5.0e5,
        overlaps_comm: true,
    }
}

/// Interconnect model (Cray Gemini 3-D torus, effective per-node figures).
#[derive(Clone, Debug, Serialize)]
pub struct NetworkModel {
    /// Per-message latency (s).
    pub latency: f64,
    /// Per-node effective bandwidth (byte/s).
    pub bandwidth: f64,
}

/// Gemini defaults.
pub fn gemini() -> NetworkModel {
    NetworkModel {
        latency: 1.8e-6,
        bandwidth: 5.0e9,
    }
}

impl NetworkModel {
    /// Transfer time for `messages` messages totalling `bytes`.
    pub fn transfer(&self, bytes: f64, messages: f64) -> f64 {
        self.latency * messages + bytes / self.bandwidth
    }

    /// Tree allreduce of a `bytes`-sized payload over `n` ranks.
    pub fn allreduce(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let stages = (n as f64).log2().ceil();
        stages * (self.latency + bytes / self.bandwidth) * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_beats_cpu_on_dense_more_than_stream() {
        let cpu = xe6_cpu();
        let gpu = xk7_gpu();
        let flops = 1e12;
        let bytes = 1e11;
        let dense_speedup = cpu.dense_time(flops, 10.0) / gpu.dense_time(flops, 10.0);
        let stream_speedup = cpu.stream_time(bytes, 10.0) / gpu.stream_time(bytes, 10.0);
        assert!(
            dense_speedup > stream_speedup,
            "{dense_speedup} vs {stream_speedup}"
        );
        assert!(dense_speedup > 4.0 && dense_speedup < 6.0);
        assert!(stream_speedup > 2.0 && stream_speedup < 4.0);
    }

    #[test]
    fn small_kernels_hurt_gpu_only() {
        let cpu = xe6_cpu();
        let gpu = xk7_gpu();
        let flops = 1e9;
        // same total work split into more kernels
        let t_big = gpu.dense_time(flops, 10.0);
        let t_small = gpu.dense_time(flops, 10_000.0);
        assert!(t_small > 1.5 * t_big, "{t_small} vs {t_big}");
        assert!((cpu.dense_time(flops, 10.0) - cpu.dense_time(flops, 10_000.0)).abs() < 1e-12);
    }

    #[test]
    fn network_latency_dominates_small_messages() {
        let net = gemini();
        let many_small = net.transfer(1e6, 1000.0);
        let one_big = net.transfer(1e6, 1.0);
        assert!(many_small > 5.0 * one_big);
        assert!(net.allreduce(8.0, 1024) < 1e-3);
        assert_eq!(net.allreduce(8.0, 1), 0.0);
    }
}
