//! Developer probe: prints the raw per-operation timing model outputs for
//! the 1M-unknown plan (the quantities behind `--bin table3`).

use ffw_geometry::Domain;
use ffw_mlfma::{Accuracy, MlfmaPlan};
use ffw_perf::*;

fn main() {
    let plan = MlfmaPlan::new(&Domain::new(1024, 1.0), Accuracy::default());
    let stats = plan.stats();
    let work = MatvecWork::from_stats(&stats);
    println!("work: {work:#?}");
    let net = gemini();
    let cpu = xe6_cpu();
    let gpu = xk7_gpu();
    let c1 = matvec_time(&work, &MatvecComm::default(), &cpu, &net, 1);
    let g1 = matvec_time(&work, &MatvecComm::default(), &gpu, &net, 1);
    println!("cpu1: {c1:#?}\ngpu1: {g1:#?}");
    let comm4 = MatvecComm::from_plan(&plan, 4);
    println!("comm4: {comm4:?}");
    let c4 = matvec_time(&work, &comm4, &cpu, &net, 4);
    let g4 = matvec_time(&work, &comm4, &gpu, &net, 4);
    println!("cpu4 total {:.6} gpu4 total {:.6}", c4.total(), g4.total());
    for r in table3(&plan, &cpu, &gpu, &net) {
        println!(
            "{:28} gpu1 {:5.2} cpu16 {:6.2} gpu16 {:6.2}",
            r.op, r.gpu1, r.cpu16, r.gpu16
        );
    }
}
