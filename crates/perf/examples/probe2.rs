//! Developer probe: runs every scaling experiment of the performance model
//! and prints the paper-vs-model comparison (the quantities behind the
//! fig09..fig12/table4/fig13 binaries).

use ffw_obs::Stopwatch;
use ffw_perf::*;

fn main() {
    let mut lib = PlanLib::new();
    let t0 = Stopwatch::start();
    let scale = calibrate(&mut lib);
    println!("calibration scale = {scale:.4} ({:.1?})", t0.elapsed());
    println!("\nFig 9 (strong scaling, illuminations): paper: 1096s->142s, 86.1% eff");
    for p in fig9(&mut lib, scale) {
        println!(
            "  {:5} nodes: {:7.1}s speedup {:5.2} eff {:4.1}%",
            p.nodes,
            p.seconds,
            p.speedup,
            100.0 * p.efficiency
        );
    }
    println!("\nFig 10 (strong scaling, sub-trees): paper: 1096s->263s (7.45x), 46.6% eff");
    for p in fig10(&mut lib, scale) {
        println!(
            "  {:5} nodes: {:7.1}s speedup {:5.2} eff {:4.1}%",
            p.nodes,
            p.seconds,
            p.speedup,
            100.0 * p.efficiency
        );
    }
    println!("\nFig 11 (weak, illuminations): paper: real 77.2%, adjusted 89.9%");
    for p in fig11(&mut lib, scale) {
        println!(
            "  {:5} nodes: real {:7.1}s eff {:4.1}% | adj {:7.1}s eff {:4.1}%",
            p.nodes,
            p.seconds,
            100.0 * p.efficiency,
            p.adjusted_seconds.unwrap(),
            100.0 * p.adjusted_efficiency.unwrap()
        );
    }
    println!("\nTable 4: paper: CPU 8216/2107/558/151, GPU 1960/516/142/40.2, speedup 4.19->3.77");
    for r in table4(&mut lib, scale) {
        println!(
            "  {:5} nodes: CPU {:7.1}s GPU {:7.1}s speedup {:4.2}",
            r.nodes, r.cpu_seconds, r.gpu_seconds, r.speedup
        );
    }
    let t1 = Stopwatch::start();
    println!("\nFig 12 (weak, sub-trees): paper: real 73.3%, adjusted 94.7%");
    for p in fig12(&mut lib, scale) {
        println!(
            "  {:5} nodes: real {:7.1}s eff {:4.1}% | adj {:7.1}s eff {:4.1}%",
            p.nodes,
            p.seconds,
            100.0 * p.efficiency,
            p.adjusted_seconds.unwrap(),
            100.0 * p.adjusted_efficiency.unwrap()
        );
    }
    println!("fig12 took {:.1?}", t1.elapsed());
    let f13 = fig13_projection(&mut lib, scale);
    println!("\nFig 13 projection: paper: 126.9s, 153600 solves, 2.05M mults, 13.4/solve");
    println!("  {:?}", f13);
}
