//! Mini-loom: a from-scratch deterministic interleaving explorer.
//!
//! Real `loom` runs instrumented code under a controlled scheduler. This
//! module takes the model-checking half of that idea and drops the
//! instrumentation: a concurrent protocol is written as a [`Model`] — a
//! cloneable value holding the shared state plus one program counter per
//! *virtual thread*, where [`Model::step`] advances one thread by one atomic
//! action. The [`Explorer`] then runs a bounded depth-first search over every
//! schedule (every order in which enabled threads can be stepped), checking
//! invariants after each step and classifying terminal states:
//!
//! * all threads done and final checks pass → one more *complete schedule*;
//! * no thread enabled but some not done → a *deadlock* (the offending
//!   schedule is recorded);
//! * an invariant check fails → a *violation* (search is pruned below it).
//!
//! Because the state is cloned at every branch, models must be small — which
//! is the point: the mailbox and dispenser protocols are finite and their
//! interesting behaviors already appear with 2–4 threads and a handful of
//! operations. Exhaustiveness over that space is what comments alone cannot
//! give us.

/// A concurrent protocol expressed as virtual threads over cloneable state.
pub trait Model: Clone {
    /// Number of virtual threads.
    fn thread_count(&self) -> usize;

    /// Whether thread `tid` has finished its program.
    fn is_done(&self, tid: usize) -> bool;

    /// Whether thread `tid` can take a step right now. Must be `false` for
    /// done threads; a blocked thread (e.g. a receiver whose message has not
    /// arrived) returns `false` until the state lets it proceed.
    fn is_enabled(&self, tid: usize) -> bool;

    /// Advances thread `tid` by one atomic action. Only called when
    /// `is_enabled(tid)` is true.
    fn step(&mut self, tid: usize);

    /// Invariant checked after every step; an `Err` is recorded as a
    /// violation and the search is pruned below that state.
    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    /// Invariant checked once all threads are done.
    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}

/// One recorded schedule: the sequence of thread ids stepped, plus what went
/// wrong there.
#[derive(Clone, Debug)]
pub struct BadSchedule {
    /// Thread id chosen at each step.
    pub schedule: Vec<usize>,
    /// Human-readable description of the failure.
    pub reason: String,
}

/// Result of exhaustively exploring a model.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Number of distinct complete schedules explored.
    pub complete_schedules: usize,
    /// Schedules ending with threads blocked but not done.
    pub deadlocks: Vec<BadSchedule>,
    /// Schedules on which an invariant check failed.
    pub violations: Vec<BadSchedule>,
    /// True if a search limit was hit before the space was exhausted.
    pub truncated: bool,
}

impl ExploreReport {
    /// Whether every explored schedule completed without deadlock or
    /// violation.
    pub fn is_clean(&self) -> bool {
        self.deadlocks.is_empty() && self.violations.is_empty()
    }
}

/// Bounded depth-first schedule explorer.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    /// Stop after this many complete schedules (guards state-space blowup).
    pub max_schedules: usize,
    /// Stop recording after this many deadlocks/violations (the search keeps
    /// counting schedules but stores no further bad traces).
    pub max_bad: usize,
    /// Hard cap on schedule length (guards non-terminating models).
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_schedules: 200_000,
            max_bad: 64,
            max_depth: 512,
        }
    }
}

impl Explorer {
    /// Exhaustively explores every schedule of `initial` (up to the
    /// explorer's bounds) and reports what it found.
    pub fn explore<M: Model>(&self, initial: &M) -> ExploreReport {
        let mut report = ExploreReport::default();
        let mut path = Vec::new();
        self.dfs(initial, &mut path, &mut report);
        report
    }

    fn dfs<M: Model>(&self, state: &M, path: &mut Vec<usize>, report: &mut ExploreReport) {
        if report.complete_schedules >= self.max_schedules {
            report.truncated = true;
            return;
        }
        if path.len() >= self.max_depth {
            report.truncated = true;
            return;
        }

        let n = state.thread_count();
        let enabled: Vec<usize> = (0..n)
            .filter(|&tid| !state.is_done(tid) && state.is_enabled(tid))
            .collect();

        if enabled.is_empty() {
            if (0..n).all(|tid| state.is_done(tid)) {
                report.complete_schedules += 1;
                if let Err(reason) = state.check_final() {
                    if report.violations.len() < self.max_bad {
                        report.violations.push(BadSchedule {
                            schedule: path.clone(),
                            reason,
                        });
                    }
                }
            } else {
                let stuck: Vec<usize> = (0..n).filter(|&tid| !state.is_done(tid)).collect();
                if report.deadlocks.len() < self.max_bad {
                    report.deadlocks.push(BadSchedule {
                        schedule: path.clone(),
                        reason: format!("threads {stuck:?} blocked with no enabled step"),
                    });
                }
            }
            return;
        }

        for tid in enabled {
            let mut next = state.clone();
            next.step(tid);
            path.push(tid);
            match next.check() {
                Err(reason) => {
                    if report.violations.len() < self.max_bad {
                        report.violations.push(BadSchedule {
                            schedule: path.clone(),
                            reason,
                        });
                    }
                }
                Ok(()) => self.dfs(&next, path, report),
            }
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each incrementing a shared counter twice: 4 steps, no
    /// blocking — C(4, 2) = 6 interleavings.
    #[derive(Clone)]
    struct Counters {
        value: usize,
        pcs: [usize; 2],
    }

    impl Model for Counters {
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.pcs[tid] == 2
        }
        fn is_enabled(&self, tid: usize) -> bool {
            !self.is_done(tid)
        }
        fn step(&mut self, tid: usize) {
            self.value += 1;
            self.pcs[tid] += 1;
        }
        fn check_final(&self) -> Result<(), String> {
            if self.value == 4 {
                Ok(())
            } else {
                Err(format!("lost update: {}", self.value))
            }
        }
    }

    #[test]
    fn counts_exact_interleavings() {
        let report = Explorer::default().explore(&Counters {
            value: 0,
            pcs: [0, 0],
        });
        assert_eq!(report.complete_schedules, 6);
        assert!(report.is_clean());
        assert!(!report.truncated);
    }

    /// A thread that is never enabled: must be reported as a deadlock on
    /// every schedule.
    #[derive(Clone)]
    struct Stuck {
        done: [bool; 2],
    }

    impl Model for Stuck {
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.done[tid]
        }
        fn is_enabled(&self, tid: usize) -> bool {
            tid == 0 && !self.done[0]
        }
        fn step(&mut self, tid: usize) {
            self.done[tid] = true;
        }
    }

    #[test]
    fn blocked_thread_reported_as_deadlock() {
        let report = Explorer::default().explore(&Stuck {
            done: [false, false],
        });
        assert_eq!(report.complete_schedules, 0);
        assert_eq!(report.deadlocks.len(), 1);
        assert!(report.deadlocks[0].reason.contains("[1]"));
    }

    #[test]
    fn schedule_cap_truncates() {
        let explorer = Explorer {
            max_schedules: 2,
            ..Explorer::default()
        };
        let report = explorer.explore(&Counters {
            value: 0,
            pcs: [0, 0],
        });
        assert!(report.truncated);
        assert!(report.complete_schedules <= 2);
    }
}
