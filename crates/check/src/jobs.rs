//! Static validator for job-lifecycle event logs.
//!
//! `ffw-serve` journals every job transition to an append-only log and
//! replays it on restart. This module is the model-level checker for that
//! log: given the recovered sequence of `(job id, transition)` pairs, it
//! verifies the per-job state machine
//!
//! ```text
//! (none) --Accepted--> Queued --Started--> Running --Done----> terminal
//!                        |  ^                |  |----Failed--> terminal
//!                        |  '---Started------'  '---Cancelled> terminal
//!                        '------Cancelled---------------------> terminal
//! ```
//!
//! (`Started` may repeat — each transient-fault retry re-starts the job —
//! and a queued job may be cancelled before ever starting). Any other
//! sequence means the journal was corrupted in a way the frame checksums
//! could not see (e.g. frames from two interleaved service instances), and
//! recovery must fail with a typed report instead of re-queueing garbage.

use std::collections::HashMap;
use std::fmt;

/// The transition kinds a job log may contain, in journal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobTransition {
    /// Admission accepted the job (must be each id's first transition).
    Accepted,
    /// A worker began (or re-began, on retry) executing the job.
    Started,
    /// Terminal: completed successfully.
    Done,
    /// Terminal: failed.
    Failed,
    /// Terminal: cancelled.
    Cancelled,
}

/// A violation of the job state machine found in an event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobLogViolation {
    /// Index of the offending event in the log.
    pub index: usize,
    /// The job the event concerns.
    pub id: String,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for JobLogViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} (job '{}'): {}",
            self.index, self.id, self.detail
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Queued,
    Running,
    Terminal(JobTransition),
}

/// Replays `events` through the per-job state machine and returns every
/// violation (empty = the log is a legal history). Never panics, whatever
/// the input order.
pub fn validate_job_log(events: &[(String, JobTransition)]) -> Vec<JobLogViolation> {
    let mut states: HashMap<&str, State> = HashMap::new();
    let mut violations = Vec::new();
    for (index, (id, t)) in events.iter().enumerate() {
        let bad = |detail: String| JobLogViolation {
            index,
            id: id.clone(),
            detail,
        };
        match (states.get(id.as_str()).copied(), *t) {
            (None, JobTransition::Accepted) => {
                states.insert(id, State::Queued);
            }
            (None, other) => {
                violations.push(bad(format!("{other:?} before Accepted")));
            }
            (Some(State::Terminal(term)), other) => {
                violations.push(bad(format!("{other:?} after terminal {term:?}")));
            }
            (Some(_), JobTransition::Accepted) => {
                violations.push(bad("second Accepted for the same id".into()));
            }
            (Some(State::Queued | State::Running), JobTransition::Started) => {
                states.insert(id, State::Running);
            }
            (Some(State::Running), t @ (JobTransition::Done | JobTransition::Failed)) => {
                states.insert(id, State::Terminal(t));
            }
            (Some(State::Queued), t @ JobTransition::Failed) => {
                // Admission-accepted work can fail before starting (e.g. a
                // poisoned checkpoint discovered at re-queue time).
                states.insert(id, State::Terminal(t));
            }
            (Some(State::Queued | State::Running), t @ JobTransition::Cancelled) => {
                states.insert(id, State::Terminal(t));
            }
            (Some(State::Queued), JobTransition::Done) => {
                violations.push(bad("Done without Started".into()));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use JobTransition::*;

    fn log(pairs: &[(&str, JobTransition)]) -> Vec<(String, JobTransition)> {
        pairs.iter().map(|(id, t)| (id.to_string(), *t)).collect()
    }

    #[test]
    fn legal_histories_pass() {
        let events = log(&[
            ("a", Accepted),
            ("b", Accepted),
            ("a", Started),
            ("b", Started),
            ("a", Started), // retry
            ("a", Done),
            ("b", Failed),
            ("c", Accepted),
            ("c", Cancelled), // cancelled while queued
            ("d", Accepted),
            ("d", Started),
            ("d", Cancelled),
        ]);
        assert_eq!(validate_job_log(&events), vec![]);
    }

    #[test]
    fn illegal_transitions_are_located() {
        let events = log(&[
            ("a", Started), // 0: before Accepted
            ("b", Accepted),
            ("b", Done), // 2: Done without Started
            ("c", Accepted),
            ("c", Accepted), // 4: duplicate accept
            ("d", Accepted),
            ("d", Started),
            ("d", Done),
            ("d", Started), // 8: after terminal
        ]);
        let v = validate_job_log(&events);
        let indices: Vec<usize> = v.iter().map(|x| x.index).collect();
        assert_eq!(indices, vec![0, 2, 4, 8]);
        assert!(v[0].detail.contains("before Accepted"));
        assert!(v[1].detail.contains("without Started"));
        assert!(v[3].detail.contains("after terminal"));
    }

    #[test]
    fn empty_log_is_legal() {
        assert!(validate_job_log(&[]).is_empty());
    }
}
