//! # ffw-check
//!
//! Machine-checked concurrency correctness for the parallel substrate. The
//! paper's contribution is a correctly-synchronized 2-D parallelization
//! (illuminations × MLFMA sub-trees); this crate is the verification layer
//! that keeps our reproduction of that protocol honest as it grows:
//!
//! * [`trace`] — event types for an always-on, low-overhead per-rank
//!   communication trace recorded by `ffw-mpi`, plus the post-run static
//!   validator that detects undelivered messages (message leaks), cross-rank
//!   collective-ordering mismatches, reserved-tag misuse, and self-sends.
//! * [`waitgraph`] — the runtime deadlock watchdog's analysis: given a
//!   snapshot of what every rank is blocked on, reconstruct the global
//!   wait-for graph, find the cycle (or the dependency on a finished/panicked
//!   rank), and render a readable report.
//! * [`loom`] — a from-scratch deterministic interleaving explorer ("mini
//!   loom"): virtual threads as cloneable state machines, bounded DFS over
//!   all schedules, deadlock and invariant-violation detection.
//! * [`models`] — model-level replicas of the `ffw-mpi` tag-matched mailbox
//!   protocol and the `ffw-par` chunk-dispenser protocol, explored
//!   exhaustively by the tests in `tests/explore.rs` (including seeded-bug
//!   mutations that the explorer must catch).
//! * [`jobs`] — the job-lifecycle state machine validator `ffw-serve` runs
//!   over its recovered journal before re-queueing anything.
//!
//! `ffw-mpi` depends on this crate for the event types and the deadlock
//! analysis; the schedule explorer is self-contained and model-based, so it
//! needs no instrumentation of the real runtimes.

#![warn(missing_docs)]

pub mod jobs;
pub mod loom;
pub mod models;
pub mod trace;
pub mod waitgraph;

pub use jobs::{validate_job_log, JobLogViolation, JobTransition};
pub use loom::{ExploreReport, Explorer, Model};
pub use trace::{
    validate_traces, validate_traces_faulty, CollectiveKind, Event, FaultEvent, LeakedMessage,
    Violation,
};
pub use waitgraph::{diagnose_deadlock, DeadlockReport, WaitState};
