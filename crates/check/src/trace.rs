//! Per-rank communication events and the post-run static trace validator.
//!
//! `ffw-mpi` records one [`Event`] per runtime operation (consecutive failed
//! `try_recv` polls on the same edge are coalesced so overlap pipelines cannot
//! blow up the trace), and calls [`validate_traces`] when `run()` exits
//! normally. Validation is static: it never blocks, and it sees the complete
//! history of every rank plus whatever messages were left undelivered in the
//! mailboxes.

use std::fmt;

/// Which collective a rank executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// `Comm::barrier`.
    Barrier,
    /// `Comm::allreduce_sum_c64`.
    AllreduceSumC64,
    /// `Comm::allreduce_sum_f64`.
    AllreduceSumF64,
    /// `Comm::allreduce_max_f64`.
    AllreduceMaxF64,
    /// `Comm::broadcast_c64`.
    BroadcastC64,
    /// `Comm::gather_c64`.
    GatherC64,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::AllreduceSumC64 => "allreduce_sum_c64",
            CollectiveKind::AllreduceSumF64 => "allreduce_sum_f64",
            CollectiveKind::AllreduceMaxF64 => "allreduce_max_f64",
            CollectiveKind::BroadcastC64 => "broadcast_c64",
            CollectiveKind::GatherC64 => "gather_c64",
        };
        f.write_str(name)
    }
}

/// One traced runtime operation, recorded by the rank that performed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A point-to-point send to `dst`.
    Send {
        /// Destination rank.
        dst: usize,
        /// User tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A completed blocking receive from `src`.
    Recv {
        /// Source rank.
        src: usize,
        /// User tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A `try_recv` that returned a message.
    TryRecvHit {
        /// Source rank.
        src: usize,
        /// User tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// One or more consecutive `try_recv` polls on `(src, tag)` that found
    /// nothing (coalesced to keep overlap pipelines from growing the trace).
    TryRecvMiss {
        /// Source rank.
        src: usize,
        /// User tag.
        tag: u32,
        /// Number of consecutive failed polls.
        polls: u64,
    },
    /// A collective operation (traced once per rank per call).
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// The root rank (0 for rootless collectives like barrier/allreduce).
        root: usize,
    },
    /// A fault-injection or fault-handling event (see [`FaultEvent`]).
    Fault(FaultEvent),
}

/// A fault observed (or injected) by the runtime, recorded in the trace so
/// fault runs remain fully auditable after the fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A seeded fault plan crashed this rank at its `op`-th operation.
    InjectedCrash {
        /// 1-based operation index at which the crash fired.
        op: u64,
    },
    /// A delivery attempt of a send was dropped by fault injection.
    SendDropped {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// 1-based delivery attempt that was dropped.
        attempt: u32,
    },
    /// All delivery attempts of a send were dropped; the destination is
    /// declared dead by the sender.
    SendRetriesExhausted {
        /// Destination rank, now considered dead.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// Total attempts made.
        attempts: u32,
    },
    /// Fault injection delayed this rank's operation (straggler model).
    Straggle {
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// The watchdog abandoned a wait because the peer rank had died.
    PeerDeclaredDead {
        /// The dead peer.
        peer: usize,
    },
    /// A received delivery attempt failed its CRC-32 integrity check.
    CorruptRecv {
        /// Source rank of the corrupted message.
        src: usize,
        /// Message tag.
        tag: u32,
        /// 1-based verification attempt that failed.
        attempt: u32,
    },
    /// The receiver NACKed a corrupted delivery and requested a retransmit.
    RetransmitRequested {
        /// Source rank being asked to retransmit.
        src: usize,
        /// Message tag.
        tag: u32,
        /// 1-based retransmit request (matches the failed attempt).
        attempt: u32,
    },
    /// Every verification attempt of a receive failed; the receive fails
    /// with a typed corruption error.
    CorruptionRetriesExhausted {
        /// Source rank of the persistently-corrupt message.
        src: usize,
        /// Message tag.
        tag: u32,
        /// Total verification attempts made.
        attempts: u32,
    },
    /// The heartbeat monitor's phi-accrual score crossed the suspicion
    /// threshold for `peer`, and this rank's blocked wait observed it.
    HeartbeatSuspect {
        /// The suspected (beat-silent) peer.
        peer: usize,
        /// The suspicion score at detection time, in thousandths.
        phi_milli: u64,
    },
    /// A checksum-verified compute panel failed verification on this rank
    /// (a seeded bit flip, or genuine silent data corruption).
    ComputeCorrupt {
        /// 1-based logical panel apply on this rank.
        panel: u64,
        /// 1-based verification attempt that failed.
        attempt: u32,
    },
    /// A corrupted compute panel verified clean after bounded recomputation.
    ComputeRecovered {
        /// 1-based logical panel apply on this rank.
        panel: u64,
        /// Total compute attempts (initial + recomputes) spent.
        attempts: u32,
    },
    /// Every recompute of a corrupted panel failed verification; the apply
    /// fails with a typed compute-corruption error.
    ComputeRetriesExhausted {
        /// 1-based logical panel apply on this rank.
        panel: u64,
        /// Total compute attempts made.
        attempts: u32,
    },
}

/// A message still sitting in a mailbox when `run()` exited.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakedMessage {
    /// Sending rank.
    pub src: usize,
    /// Destination rank (which never received it).
    pub dst: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A protocol violation found by the post-run static validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A sent message was never received.
    MessageLeak(LeakedMessage),
    /// A rank sent a message to itself.
    SelfSend {
        /// The offending rank.
        rank: usize,
        /// The tag it used.
        tag: u32,
    },
    /// A traced user-level operation used a tag with the reserved collective
    /// bit set (defense in depth: the runtime also asserts this at call time).
    ReservedTagUse {
        /// The offending rank.
        rank: usize,
        /// The reserved tag.
        tag: u32,
    },
    /// A rank detected a corrupted receive but its trace shows neither a
    /// later clean delivery on that edge+tag nor an exhausted retry budget:
    /// the corruption protocol was abandoned mid-recovery.
    UnresolvedCorruption {
        /// The receiving rank.
        rank: usize,
        /// Source of the corrupted message.
        src: usize,
        /// Message tag.
        tag: u32,
    },
    /// A rank detected compute corruption in a panel but recorded neither a
    /// recovery nor an exhausted recompute budget for it: the
    /// detect→recompute→escalate protocol was abandoned mid-recovery.
    UnresolvedComputeCorruption {
        /// The detecting rank.
        rank: usize,
        /// 1-based logical panel apply that was corrupted.
        panel: u64,
    },
    /// A rank's heartbeat evidence suspected the rank itself — the monitor
    /// must only ever suspect peers.
    SelfSuspect {
        /// The offending rank.
        rank: usize,
    },
    /// A rank recorded heartbeat suspicion of a peer but never followed it
    /// with a `PeerDeclaredDead` verdict for that peer: suspicion is
    /// evidence, and evidence must lead to an attributed outcome.
    SuspectWithoutVerdict {
        /// The rank holding the dangling suspicion.
        rank: usize,
        /// The suspected peer that was never declared dead.
        peer: usize,
    },
    /// Two ranks disagree about the sequence of collectives they executed.
    CollectiveMismatch {
        /// Position in the per-rank collective sequence.
        index: usize,
        /// Reference rank (always rank 0).
        rank_a: usize,
        /// The collective rank_a executed at `index` (`None` = its sequence
        /// ended before `index`).
        op_a: Option<(CollectiveKind, usize)>,
        /// The divergent rank.
        rank_b: usize,
        /// The collective rank_b executed at `index`.
        op_b: Option<(CollectiveKind, usize)>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MessageLeak(m) => write!(
                f,
                "message leak: src={} dst={} tag={:#x} ({} bytes) was sent but never received",
                m.src, m.dst, m.tag, m.bytes
            ),
            Violation::SelfSend { rank, tag } => {
                write!(f, "self-send: rank {rank} sent to itself (tag={tag:#x})")
            }
            Violation::UnresolvedCorruption { rank, src, tag } => write!(
                f,
                "unresolved corruption: rank {rank} detected a corrupt receive from rank {src} \
                 (tag={tag:#x}) but neither recovered a clean copy nor exhausted its retry budget"
            ),
            Violation::UnresolvedComputeCorruption { rank, panel } => write!(
                f,
                "unresolved compute corruption: rank {rank} detected a corrupt compute panel \
                 #{panel} but neither recovered it nor exhausted its recompute budget"
            ),
            Violation::SelfSuspect { rank } => write!(
                f,
                "self-suspect: rank {rank} recorded heartbeat suspicion of itself"
            ),
            Violation::SuspectWithoutVerdict { rank, peer } => write!(
                f,
                "dangling suspicion: rank {rank} suspected rank {peer} via heartbeat but never \
                 declared it dead"
            ),
            Violation::ReservedTagUse { rank, tag } => write!(
                f,
                "reserved tag misuse: rank {rank} used tag {tag:#x} (high bit is reserved for collectives)"
            ),
            Violation::CollectiveMismatch {
                index,
                rank_a,
                op_a,
                rank_b,
                op_b,
            } => {
                let show = |op: &Option<(CollectiveKind, usize)>| match op {
                    Some((kind, root)) => format!("{kind} (root {root})"),
                    None => "no collective (sequence ended)".to_string(),
                };
                write!(
                    f,
                    "collective order mismatch at call #{index}: rank {rank_a} executed {} but rank {rank_b} executed {}",
                    show(op_a),
                    show(op_b)
                )
            }
        }
    }
}

/// Statically validates the complete per-rank traces of a finished run.
///
/// `traces[r]` is rank `r`'s event history; `leaked` lists messages left
/// undelivered in the mailboxes at exit. Returns every violation found (empty
/// means the run was protocol-clean).
pub fn validate_traces(traces: &[Vec<Event>], leaked: &[LeakedMessage]) -> Vec<Violation> {
    validate_impl(traces, leaked, false)
}

/// Validates the traces of a run in which ranks died (injected crashes or
/// exhausted send retries).
///
/// A dead rank legitimately leaves messages undelivered (peers had already
/// sent to it) and truncates its collective sequence, so this mode skips
/// message-leak checks and only flags collective sequences that *diverge*
/// (both ranks executed a collective at the same position but disagree on
/// which). Self-sends and reserved-tag misuse are still hard errors.
pub fn validate_traces_faulty(traces: &[Vec<Event>], leaked: &[LeakedMessage]) -> Vec<Violation> {
    validate_impl(traces, leaked, true)
}

fn validate_impl(traces: &[Vec<Event>], leaked: &[LeakedMessage], faulty: bool) -> Vec<Violation> {
    let mut violations = Vec::new();

    if !faulty {
        for msg in leaked {
            violations.push(Violation::MessageLeak(msg.clone()));
        }
    }

    const RESERVED_BIT: u32 = 0x8000_0000;
    for (rank, trace) in traces.iter().enumerate() {
        for event in trace {
            match *event {
                Event::Send { dst, tag, .. } => {
                    if dst == rank {
                        violations.push(Violation::SelfSend { rank, tag });
                    }
                    if tag & RESERVED_BIT != 0 {
                        violations.push(Violation::ReservedTagUse { rank, tag });
                    }
                }
                Event::Recv { tag, .. }
                | Event::TryRecvHit { tag, .. }
                | Event::TryRecvMiss { tag, .. } => {
                    if tag & RESERVED_BIT != 0 {
                        violations.push(Violation::ReservedTagUse { rank, tag });
                    }
                }
                Event::Collective { .. } | Event::Fault(_) => {}
            }
        }
    }

    // Corruption-protocol and heartbeat-evidence rules (both modes): a
    // detected corrupt receive must end in a clean delivery or an exhausted
    // budget, and heartbeat suspicion must target a peer and be followed by
    // a dead-peer verdict on the same rank.
    for (rank, trace) in traces.iter().enumerate() {
        for (i, event) in trace.iter().enumerate() {
            match *event {
                Event::Fault(FaultEvent::CorruptRecv { src, tag, .. }) => {
                    let resolved = trace[i + 1..].iter().any(|e| match *e {
                        Event::Recv { src: s, tag: t, .. }
                        | Event::TryRecvHit { src: s, tag: t, .. } => s == src && t == tag,
                        Event::Fault(FaultEvent::CorruptionRetriesExhausted {
                            src: s,
                            tag: t,
                            ..
                        }) => s == src && t == tag,
                        _ => false,
                    });
                    if !resolved {
                        violations.push(Violation::UnresolvedCorruption { rank, src, tag });
                    }
                }
                Event::Fault(FaultEvent::ComputeCorrupt { panel, .. }) => {
                    let resolved = trace[i + 1..].iter().any(|e| {
                        matches!(*e,
                            Event::Fault(FaultEvent::ComputeRecovered { panel: p, .. })
                            | Event::Fault(FaultEvent::ComputeRetriesExhausted { panel: p, .. })
                            if p == panel)
                    });
                    if !resolved {
                        violations.push(Violation::UnresolvedComputeCorruption { rank, panel });
                    }
                }
                Event::Fault(FaultEvent::HeartbeatSuspect { peer, .. }) => {
                    if peer == rank {
                        violations.push(Violation::SelfSuspect { rank });
                    } else {
                        let verdict = trace[i + 1..].iter().any(|e| {
                            matches!(
                                *e,
                                Event::Fault(FaultEvent::PeerDeclaredDead { peer: p }) if p == peer
                            )
                        });
                        if !verdict {
                            violations.push(Violation::SuspectWithoutVerdict { rank, peer });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Cross-rank collective ordering: every rank must execute the same
    // sequence of (kind, root). Payload lengths legitimately differ by rank
    // (gather chunks, broadcast receivers), so they are not compared.
    let collectives: Vec<Vec<(CollectiveKind, usize)>> = traces
        .iter()
        .map(|trace| {
            trace
                .iter()
                .filter_map(|e| match *e {
                    Event::Collective { kind, root } => Some((kind, root)),
                    _ => None,
                })
                .collect()
        })
        .collect();
    if let Some(reference) = collectives.first() {
        for (rank_b, seq) in collectives.iter().enumerate().skip(1) {
            let n = reference.len().max(seq.len());
            for index in 0..n {
                let op_a = reference.get(index).copied();
                let op_b = seq.get(index).copied();
                if op_a == op_b {
                    continue;
                }
                // A dead rank truncates its collective sequence; that is not
                // a divergence in a fault run.
                if faulty && (op_a.is_none() || op_b.is_none()) {
                    break;
                }
                violations.push(Violation::CollectiveMismatch {
                    index,
                    rank_a: 0,
                    op_a,
                    rank_b,
                    op_b,
                });
                break; // one divergence per rank pair is enough signal
            }
        }
    }

    violations
}

/// Renders a violation list as the panic message used by `ffw-mpi`.
pub fn render_report(violations: &[Violation]) -> String {
    let mut out = String::from("ffw-check: post-run trace validation failed:\n");
    for v in violations {
        out.push_str("  - ");
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trace_passes() {
        let traces = vec![
            vec![
                Event::Send {
                    dst: 1,
                    tag: 7,
                    bytes: 16,
                },
                Event::Collective {
                    kind: CollectiveKind::Barrier,
                    root: 0,
                },
            ],
            vec![
                Event::Recv {
                    src: 0,
                    tag: 7,
                    bytes: 16,
                },
                Event::Collective {
                    kind: CollectiveKind::Barrier,
                    root: 0,
                },
            ],
        ];
        assert!(validate_traces(&traces, &[]).is_empty());
    }

    #[test]
    fn leak_is_reported_with_edge_and_tag() {
        let leaked = vec![LeakedMessage {
            src: 0,
            dst: 1,
            tag: 9,
            bytes: 48,
        }];
        let violations = validate_traces(&[Vec::new(), Vec::new()], &leaked);
        assert_eq!(violations.len(), 1);
        let text = violations[0].to_string();
        assert!(text.contains("src=0") && text.contains("dst=1") && text.contains("0x9"));
    }

    #[test]
    fn self_send_detected() {
        let traces = vec![vec![Event::Send {
            dst: 0,
            tag: 3,
            bytes: 8,
        }]];
        let violations = validate_traces(&traces, &[]);
        assert!(matches!(
            violations.as_slice(),
            [Violation::SelfSend { rank: 0, tag: 3 }]
        ));
    }

    #[test]
    fn collective_divergence_detected() {
        let barrier = Event::Collective {
            kind: CollectiveKind::Barrier,
            root: 0,
        };
        let reduce = Event::Collective {
            kind: CollectiveKind::AllreduceSumF64,
            root: 0,
        };
        let traces = vec![vec![barrier.clone(), reduce], vec![barrier]];
        let violations = validate_traces(&traces, &[]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("call #1"));
    }

    #[test]
    fn faulty_mode_tolerates_leaks_and_truncation_but_not_divergence() {
        let barrier = Event::Collective {
            kind: CollectiveKind::Barrier,
            root: 0,
        };
        let reduce = Event::Collective {
            kind: CollectiveKind::AllreduceSumF64,
            root: 0,
        };
        let leaked = vec![LeakedMessage {
            src: 0,
            dst: 1,
            tag: 9,
            bytes: 48,
        }];
        // Rank 1 died after one collective: leak + truncation tolerated.
        let traces = vec![
            vec![
                barrier.clone(),
                reduce.clone(),
                Event::Fault(FaultEvent::PeerDeclaredDead { peer: 1 }),
            ],
            vec![
                barrier.clone(),
                Event::Fault(FaultEvent::InjectedCrash { op: 2 }),
            ],
        ];
        assert!(validate_traces_faulty(&traces, &leaked).is_empty());
        // The strict validator still flags the same run.
        assert!(!validate_traces(&traces, &leaked).is_empty());
        // True divergence (different collective at the same position) is a
        // violation even in faulty mode.
        let diverged = vec![
            vec![barrier.clone(), reduce],
            vec![barrier.clone(), barrier],
        ];
        assert!(matches!(
            validate_traces_faulty(&diverged, &[]).as_slice(),
            [Violation::CollectiveMismatch { .. }]
        ));
    }

    #[test]
    fn corruption_must_resolve_to_delivery_or_exhaustion() {
        let corrupt = Event::Fault(FaultEvent::CorruptRecv {
            src: 0,
            tag: 5,
            attempt: 1,
        });
        let nack = Event::Fault(FaultEvent::RetransmitRequested {
            src: 0,
            tag: 5,
            attempt: 1,
        });
        // Resolved by a later clean receive on the same edge+tag: clean.
        let recovered = vec![vec![
            corrupt.clone(),
            nack.clone(),
            Event::Recv {
                src: 0,
                tag: 5,
                bytes: 8,
            },
        ]];
        assert!(validate_traces(&recovered, &[]).is_empty());
        // Resolved by an exhausted budget: also clean (the error is typed).
        let exhausted = vec![vec![
            corrupt.clone(),
            nack.clone(),
            Event::Fault(FaultEvent::CorruptionRetriesExhausted {
                src: 0,
                tag: 5,
                attempts: 4,
            }),
        ]];
        assert!(validate_traces_faulty(&exhausted, &[]).is_empty());
        // Abandoned mid-protocol: a violation in both modes.
        let dangling = vec![vec![corrupt, nack]];
        assert!(matches!(
            validate_traces(&dangling, &[]).as_slice(),
            [Violation::UnresolvedCorruption {
                rank: 0,
                src: 0,
                tag: 5
            }]
        ));
        assert!(!validate_traces_faulty(&dangling, &[]).is_empty());
    }

    #[test]
    fn heartbeat_suspicion_rules() {
        // Suspicion followed by the verdict: clean.
        let good = vec![vec![
            Event::Fault(FaultEvent::HeartbeatSuspect {
                peer: 1,
                phi_milli: 9500,
            }),
            Event::Fault(FaultEvent::PeerDeclaredDead { peer: 1 }),
        ]];
        assert!(validate_traces_faulty(&good, &[]).is_empty());
        // Self-suspicion is always a violation.
        let selfish = vec![vec![
            Event::Fault(FaultEvent::HeartbeatSuspect {
                peer: 0,
                phi_milli: 9500,
            }),
            Event::Fault(FaultEvent::PeerDeclaredDead { peer: 0 }),
        ]];
        assert!(matches!(
            validate_traces_faulty(&selfish, &[]).as_slice(),
            [Violation::SelfSuspect { rank: 0 }]
        ));
        // Suspicion with no verdict for that peer dangles.
        let dangling = vec![vec![
            Event::Fault(FaultEvent::HeartbeatSuspect {
                peer: 1,
                phi_milli: 9500,
            }),
            Event::Fault(FaultEvent::PeerDeclaredDead { peer: 2 }),
        ]];
        assert!(matches!(
            validate_traces_faulty(&dangling, &[]).as_slice(),
            [Violation::SuspectWithoutVerdict { rank: 0, peer: 1 }]
        ));
    }

    #[test]
    fn reserved_tag_flagged() {
        let traces = vec![vec![Event::Recv {
            src: 0,
            tag: 0x8000_0001,
            bytes: 0,
        }]];
        let violations = validate_traces(&traces, &[]);
        assert!(matches!(
            violations.as_slice(),
            [Violation::ReservedTagUse { .. }]
        ));
    }
}
