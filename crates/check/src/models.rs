//! Model-level replicas of the workspace's two concurrency protocols.
//!
//! These are *not* the real implementations — they are small state machines
//! capturing the synchronization skeleton of each protocol, so the
//! [`crate::loom`] explorer can enumerate every interleaving:
//!
//! * [`TagMailboxModel`] — the `ffw-mpi` per-edge tag-matched mailbox:
//!   senders append `(tag, value)` to a queue; the receiver extracts by tag,
//!   possibly out of order relative to arrival.
//! * [`AllreduceModel`] — the root-based allreduce used by every `ffw-mpi`
//!   collective: non-root ranks send their contribution to rank 0, rank 0
//!   reduces and sends the result back.
//! * [`DispenserModel`] — the `ffw-par` claim-then-deref protocol: workers
//!   claim chunk indices from an atomic `dispenser`, run the borrowed
//!   closure, then bump `chunks_done`; the submitting thread frees the job
//!   once `chunks_done == total_chunks`. The model tracks the job's `alive`
//!   flag so a worker touching the closure after the submitter freed it is a
//!   use-after-free the explorer can observe. [`DispenserBug`] seeds known-bad
//!   mutations that the exploration tests must catch.

use crate::loom::Model;

// ---------------------------------------------------------------------------
// Tag-matched mailbox
// ---------------------------------------------------------------------------

/// Two senders deliver differently-tagged messages into one mailbox (two
/// messages each); the receiver alternates popping tag `B` and tag `A` —
/// exercising out-of-order extraction and FIFO-within-tag no matter the
/// arrival order.
#[derive(Clone, Debug)]
pub struct TagMailboxModel {
    /// The mailbox queue in arrival order: `(tag, value)`.
    queue: Vec<(u32, u64)>,
    /// Program counters: `[sender_a, sender_b, receiver]`.
    pcs: [usize; 3],
    /// Values the receiver extracted, in extraction order.
    received: Vec<u64>,
}

const TAG_A: u32 = 1;
const TAG_B: u32 = 2;

impl TagMailboxModel {
    /// Fresh model: nothing sent, nothing received.
    pub fn new() -> Self {
        TagMailboxModel {
            queue: Vec::new(),
            pcs: [0; 3],
            received: Vec::new(),
        }
    }

    fn pop_matching(&mut self, tag: u32) -> Option<u64> {
        let pos = self.queue.iter().position(|&(t, _)| t == tag)?;
        Some(self.queue.remove(pos).1)
    }
}

impl Default for TagMailboxModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Messages each sender delivers in [`TagMailboxModel`].
const MSGS_PER_SENDER: usize = 3;

impl TagMailboxModel {
    /// Tag the receiver extracts at its `pc`-th pop: B, A, B, A, …
    fn wanted_tag(pc: usize) -> u32 {
        if pc.is_multiple_of(2) {
            TAG_B
        } else {
            TAG_A
        }
    }
}

impl Model for TagMailboxModel {
    fn thread_count(&self) -> usize {
        3
    }

    fn is_done(&self, tid: usize) -> bool {
        match tid {
            0 | 1 => self.pcs[tid] == MSGS_PER_SENDER,
            _ => self.pcs[2] == 2 * MSGS_PER_SENDER,
        }
    }

    fn is_enabled(&self, tid: usize) -> bool {
        if self.is_done(tid) {
            return false;
        }
        match tid {
            0 | 1 => true,
            _ => {
                // recv blocks until a message with the wanted tag is queued.
                let want = Self::wanted_tag(self.pcs[2]);
                self.queue.iter().any(|&(t, _)| t == want)
            }
        }
    }

    fn step(&mut self, tid: usize) {
        match tid {
            0 => self.queue.push((TAG_A, 100 + self.pcs[0] as u64)),
            1 => self.queue.push((TAG_B, 200 + self.pcs[1] as u64)),
            _ => {
                let want = Self::wanted_tag(self.pcs[2]);
                let value = self.pop_matching(want).expect("enabled implies queued");
                self.received.push(value);
            }
        }
        self.pcs[tid] += 1;
    }

    fn check_final(&self) -> Result<(), String> {
        // Alternating tag extraction plus FIFO order within each tag.
        let expected: Vec<u64> = (0..2 * MSGS_PER_SENDER as u64)
            .map(|i| if i % 2 == 0 { 200 + i / 2 } else { 100 + i / 2 })
            .collect();
        if self.received != expected {
            return Err(format!(
                "receiver extracted {:?}, expected {expected:?} \
                 (alternating tags, FIFO within tag)",
                self.received
            ));
        }
        if !self.queue.is_empty() {
            return Err(format!("messages left in mailbox: {:?}", self.queue));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Root-based allreduce
// ---------------------------------------------------------------------------

/// The root-based allreduce protocol behind every `ffw-mpi` collective.
///
/// Each non-root rank sends its contribution to rank 0 (the "up" message),
/// then blocks until the reduced result comes back ("down"). Rank 0 collects
/// all contributions in any arrival order, reduces, then sends the result to
/// every peer. The final check asserts every rank holds the same correct sum
/// and no message is left queued.
#[derive(Clone, Debug)]
pub struct AllreduceModel {
    n_ranks: usize,
    /// Contribution of each rank (rank r contributes `r + 1`).
    contrib: Vec<u64>,
    /// Root's running reduction (starts at its own contribution).
    acc: u64,
    /// Result slot for each rank (`None` until the down message lands).
    result: Vec<Option<u64>>,
    /// Up messages queued at the root: `(src, value)`.
    up_queue: Vec<(usize, u64)>,
    /// Down messages in flight: `(dst, value)`.
    down_queue: Vec<(usize, u64)>,
    /// Per-rank program counter.
    ///
    /// Non-root: 0 = send up, 1 = await down, 2 = done.
    /// Root: 0..n-1 = pop one up message each, n-1..2(n-1) = send one down
    /// message each, 2(n-1) = done.
    pcs: Vec<usize>,
}

impl AllreduceModel {
    /// Fresh model over `n_ranks` ranks (must be ≥ 2 to be interesting).
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "allreduce needs at least one rank");
        let contrib: Vec<u64> = (0..n_ranks).map(|r| r as u64 + 1).collect();
        let mut result = vec![None; n_ranks];
        if n_ranks == 1 {
            // Degenerate single-rank reduce: the root's own value is the answer.
            result[0] = Some(contrib[0]);
        }
        AllreduceModel {
            n_ranks,
            acc: contrib[0],
            contrib,
            result,
            up_queue: Vec::new(),
            down_queue: Vec::new(),
            pcs: vec![0; n_ranks],
        }
    }

    fn expected_sum(&self) -> u64 {
        self.contrib.iter().sum()
    }

    fn root_done_pc(&self) -> usize {
        2 * (self.n_ranks - 1)
    }
}

impl Model for AllreduceModel {
    fn thread_count(&self) -> usize {
        self.n_ranks
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.pcs[0] == self.root_done_pc()
        } else {
            self.pcs[tid] == 2
        }
    }

    fn is_enabled(&self, tid: usize) -> bool {
        if self.is_done(tid) {
            return false;
        }
        if tid == 0 {
            if self.pcs[0] < self.n_ranks - 1 {
                // Popping an up message blocks until one is queued.
                !self.up_queue.is_empty()
            } else {
                true // sending down never blocks
            }
        } else {
            match self.pcs[tid] {
                0 => true, // sending up never blocks
                _ => self.down_queue.iter().any(|&(dst, _)| dst == tid),
            }
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == 0 {
            if self.pcs[0] < self.n_ranks - 1 {
                let (src, value) = self.up_queue.remove(0);
                self.acc += value;
                debug_assert_ne!(src, 0);
            } else {
                // Root's reduction is complete once all ups are in; record it
                // the first time we enter the down phase.
                if self.pcs[0] == self.n_ranks - 1 {
                    self.result[0] = Some(self.acc);
                }
                let dst = self.pcs[0] - (self.n_ranks - 1) + 1;
                self.down_queue.push((dst, self.acc));
            }
        } else {
            match self.pcs[tid] {
                0 => self.up_queue.push((tid, self.contrib[tid])),
                _ => {
                    let pos = self
                        .down_queue
                        .iter()
                        .position(|&(dst, _)| dst == tid)
                        .expect("enabled implies queued");
                    let (_, value) = self.down_queue.remove(pos);
                    self.result[tid] = Some(value);
                }
            }
        }
        self.pcs[tid] += 1;
    }

    fn check_final(&self) -> Result<(), String> {
        let want = self.expected_sum();
        for (rank, result) in self.result.iter().enumerate() {
            match result {
                Some(v) if *v == want => {}
                Some(v) => {
                    return Err(format!("rank {rank} got {v}, expected {want}"));
                }
                None => return Err(format!("rank {rank} never received a result")),
            }
        }
        if !self.up_queue.is_empty() || !self.down_queue.is_empty() {
            return Err(format!(
                "messages left queued: up={:?} down={:?}",
                self.up_queue, self.down_queue
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chunk dispenser (ffw-par claim-then-deref)
// ---------------------------------------------------------------------------

/// Seeded mutations of the dispenser protocol for the explorer to catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispenserBug {
    /// The correct protocol.
    None,
    /// A worker claims and runs a chunk but never increments `chunks_done` —
    /// the submitter waits forever (the bug the `done_tx` channel guards
    /// against in the real pool).
    SkipDoneIncrement,
    /// A worker increments `chunks_done` *before* running the chunk — the
    /// submitter can observe completion, free the job, and leave the worker
    /// dereferencing a dangling closure (the exact ordering the real pool's
    /// `AcqRel` increment-after-run prevents).
    IncrementBeforeRun,
}

/// Worker program counter phases for [`DispenserModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkerPhase {
    /// About to claim a chunk index from the dispenser.
    Claim,
    /// Holding chunk `idx`, about to dereference the closure and run it.
    Run {
        /// Claimed chunk index.
        idx: usize,
    },
    /// Ran chunk, about to increment `chunks_done`.
    Bump,
    /// Out of chunks; worker exits.
    Done,
}

/// Model of `ffw-par`'s chunk dispenser and job-lifetime protocol.
///
/// Threads `0..n_workers` are pool workers; thread `n_workers` is the
/// submitter, which blocks until `chunks_done == total_chunks` and then frees
/// the job (clears `alive`). The per-step invariant is the claim-then-deref
/// contract: **no worker may run a chunk after the job has been freed.**
#[derive(Clone, Debug)]
pub struct DispenserModel {
    n_items: usize,
    grain: usize,
    n_workers: usize,
    bug: DispenserBug,
    /// Next chunk index to hand out (the atomic `dispenser`).
    dispenser: usize,
    /// Chunks fully processed (the atomic `chunks_done`).
    chunks_done: usize,
    total_chunks: usize,
    /// Whether the job (and the borrowed closure) is still allocated.
    alive: bool,
    /// How many times each item was processed (exactly once expected).
    processed: Vec<usize>,
    workers: Vec<WorkerPhase>,
    submitter_done: bool,
    /// Set when a worker dereferenced the closure after the job was freed.
    use_after_free: Option<usize>,
}

impl DispenserModel {
    /// Fresh model: `n_items` items in chunks of `grain`, `n_workers` pool
    /// workers plus one submitter thread, with `bug` seeded into the workers.
    pub fn new(n_items: usize, grain: usize, n_workers: usize, bug: DispenserBug) -> Self {
        assert!(grain > 0 && n_items > 0 && n_workers > 0);
        DispenserModel {
            n_items,
            grain,
            n_workers,
            bug,
            dispenser: 0,
            chunks_done: 0,
            total_chunks: n_items.div_ceil(grain),
            alive: true,
            processed: vec![0; n_items],
            workers: vec![WorkerPhase::Claim; n_workers],
            submitter_done: false,
            use_after_free: None,
        }
    }

    fn submitter_tid(&self) -> usize {
        self.n_workers
    }
}

impl Model for DispenserModel {
    fn thread_count(&self) -> usize {
        self.n_workers + 1
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid == self.submitter_tid() {
            self.submitter_done
        } else {
            self.workers[tid] == WorkerPhase::Done
        }
    }

    fn is_enabled(&self, tid: usize) -> bool {
        if self.is_done(tid) {
            return false;
        }
        if tid == self.submitter_tid() {
            // The submitter blocks until every chunk reports done.
            self.chunks_done == self.total_chunks
        } else {
            true
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == self.submitter_tid() {
            // Wakes from the done signal and frees the job.
            self.alive = false;
            self.submitter_done = true;
            return;
        }
        match self.workers[tid] {
            WorkerPhase::Claim => {
                let idx = self.dispenser;
                if idx >= self.total_chunks {
                    self.workers[tid] = WorkerPhase::Done;
                } else {
                    self.dispenser += 1;
                    if self.bug == DispenserBug::IncrementBeforeRun {
                        self.chunks_done += 1;
                    }
                    self.workers[tid] = WorkerPhase::Run { idx };
                }
            }
            WorkerPhase::Run { idx } => {
                // Dereference the closure: only sound while the job is alive.
                if !self.alive {
                    self.use_after_free = Some(tid);
                }
                let start = idx * self.grain;
                let end = (start + self.grain).min(self.n_items);
                for item in start..end {
                    self.processed[item] += 1;
                }
                self.workers[tid] = match self.bug {
                    DispenserBug::SkipDoneIncrement | DispenserBug::IncrementBeforeRun => {
                        WorkerPhase::Claim
                    }
                    DispenserBug::None => WorkerPhase::Bump,
                };
            }
            WorkerPhase::Bump => {
                self.chunks_done += 1;
                self.workers[tid] = WorkerPhase::Claim;
            }
            WorkerPhase::Done => unreachable!("done workers are never stepped"),
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(tid) = self.use_after_free {
            return Err(format!(
                "use-after-free: worker {tid} dereferenced the job closure after the \
                 submitter freed it (chunks_done={}/{} at free time)",
                self.chunks_done, self.total_chunks
            ));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        for (item, count) in self.processed.iter().enumerate() {
            if *count != 1 {
                return Err(format!("item {item} processed {count} times, expected 1"));
            }
        }
        if self.chunks_done != self.total_chunks {
            return Err(format!(
                "chunks_done = {} but total_chunks = {}",
                self.chunks_done, self.total_chunks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loom::Explorer;

    #[test]
    fn mailbox_model_clean() {
        let report = Explorer::default().explore(&TagMailboxModel::new());
        assert!(report.is_clean(), "{:?}", report);
        assert!(report.complete_schedules > 1);
    }

    #[test]
    fn allreduce_model_clean() {
        let report = Explorer::default().explore(&AllreduceModel::new(3));
        assert!(report.is_clean(), "{:?}", report);
    }

    #[test]
    fn dispenser_model_clean() {
        let report = Explorer::default().explore(&DispenserModel::new(4, 2, 2, DispenserBug::None));
        assert!(report.is_clean(), "{:?}", report);
    }

    #[test]
    fn skip_done_increment_deadlocks() {
        let report = Explorer::default().explore(&DispenserModel::new(
            4,
            2,
            2,
            DispenserBug::SkipDoneIncrement,
        ));
        assert!(
            !report.deadlocks.is_empty(),
            "dropping the chunks_done increment must strand the submitter"
        );
    }
}
