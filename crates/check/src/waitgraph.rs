//! Global wait-for-graph reconstruction and deadlock diagnosis.
//!
//! Every `ffw-mpi` rank publishes what it is currently blocked on (a
//! [`WaitState`]). When a rank's blocking wait times out, it snapshots all
//! states and calls [`diagnose_deadlock`]. The analysis is conservative: it
//! only reports *definite* deadlocks — a dependency on a rank that has already
//! finished or panicked (and so can never satisfy the wait), or a cycle whose
//! every member is itself blocked. A rank that is merely slow keeps the
//! watchdog silent.

use std::fmt;

/// What a rank is currently doing, as published to the global registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitState {
    /// Executing user code (not blocked in the runtime).
    Running,
    /// Blocked in `recv` waiting for a message.
    RecvWait {
        /// The source rank it expects the message from.
        src: usize,
        /// The tag it is matching.
        tag: u32,
    },
    /// Blocked in `barrier`.
    BarrierWait {
        /// Barrier generation the rank is waiting to complete.
        generation: u64,
    },
    /// Returned from the rank closure normally.
    Finished,
    /// The rank closure panicked.
    Panicked,
}

impl fmt::Display for WaitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitState::Running => f.write_str("running"),
            WaitState::RecvWait { src, tag } => {
                write!(f, "waiting for message (src={src}, tag={tag:#x})")
            }
            WaitState::BarrierWait { generation } => {
                write!(f, "waiting at barrier (generation {generation})")
            }
            WaitState::Finished => f.write_str("finished"),
            WaitState::Panicked => f.write_str("panicked"),
        }
    }
}

/// A definite deadlock found by [`diagnose_deadlock`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The rank states at the time of diagnosis.
    pub states: Vec<WaitState>,
    /// A cycle of mutually-blocked ranks (`cycle[i]` waits on
    /// `cycle[(i+1) % len]`), if the deadlock is cyclic.
    pub cycle: Option<Vec<usize>>,
    /// A blocked rank waiting on a rank that already finished or panicked,
    /// if the deadlock is a dead dependency: `(waiter, dead_rank)`.
    pub dead_dependency: Option<(usize, usize)>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deadlock detected; global wait-for graph:")?;
        for (rank, state) in self.states.iter().enumerate() {
            writeln!(f, "  rank {rank}: {state}")?;
        }
        if let Some((waiter, dead)) = self.dead_dependency {
            writeln!(
                f,
                "  rank {waiter} waits on rank {dead}, which is already {} and can never satisfy the wait",
                self.states[dead]
            )?;
        }
        if let Some(cycle) = &self.cycle {
            let mut path = cycle
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(" -> ");
            if let Some(first) = cycle.first() {
                path.push_str(&format!(" -> {first}"));
            }
            writeln!(f, "  cycle: {path}")?;
        }
        Ok(())
    }
}

/// Reconstructs the wait-for graph from a state snapshot and reports a
/// definite deadlock, if any.
///
/// `has_matching(src, dst, tag)` must report whether a message satisfying
/// rank `dst`'s `RecvWait { src, tag }` is already queued — such a rank is
/// about to wake and is treated as not blocked.
pub fn diagnose_deadlock(
    states: &[WaitState],
    mut has_matching: impl FnMut(usize, usize, u32) -> bool,
) -> Option<DeadlockReport> {
    let n = states.len();

    // Effective blocked set and outgoing wait-for edges.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut blocked = vec![false; n];
    for (rank, state) in states.iter().enumerate() {
        match state {
            WaitState::RecvWait { src, tag } => {
                if !has_matching(*src, rank, *tag) {
                    blocked[rank] = true;
                    edges[rank].push(*src);
                }
            }
            WaitState::BarrierWait { generation } => {
                blocked[rank] = true;
                for (other, other_state) in states.iter().enumerate() {
                    if other == rank {
                        continue;
                    }
                    let arrived = matches!(
                        other_state,
                        WaitState::BarrierWait { generation: g } if g == generation
                    );
                    if !arrived {
                        edges[rank].push(other);
                    }
                }
            }
            WaitState::Running | WaitState::Finished | WaitState::Panicked => {}
        }
    }

    // Dead dependency: a blocked rank waiting on a rank that can never act.
    for rank in 0..n {
        if !blocked[rank] {
            continue;
        }
        for &target in &edges[rank] {
            if matches!(states[target], WaitState::Finished | WaitState::Panicked) {
                return Some(DeadlockReport {
                    states: states.to_vec(),
                    cycle: None,
                    dead_dependency: Some((rank, target)),
                });
            }
        }
    }

    // Cycle among blocked ranks (edges into non-blocked ranks cannot be part
    // of a deadlock: a running rank can still make progress).
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..n {
        if !blocked[start] || color[start] != 0 {
            continue;
        }
        // Iterative DFS keeping the current path in `stack`.
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        stack.push(start);
        while !frames.is_empty() {
            let (node, next) = {
                let frame = frames.last_mut().expect("non-empty");
                let node = frame.0;
                let mut found = None;
                while frame.1 < edges[node].len() {
                    let target = edges[node][frame.1];
                    frame.1 += 1;
                    if blocked[target] {
                        found = Some(target);
                        break;
                    }
                }
                (node, found)
            };
            match next {
                Some(target) if color[target] == 1 => {
                    // Found a cycle: slice the current path from `target`.
                    let pos = stack
                        .iter()
                        .position(|&r| r == target)
                        .expect("on-stack node is in path");
                    return Some(DeadlockReport {
                        states: states.to_vec(),
                        cycle: Some(stack[pos..].to_vec()),
                        dead_dependency: None,
                    });
                }
                Some(target) if color[target] == 0 => {
                    color[target] = 1;
                    stack.push(target);
                    frames.push((target, 0));
                }
                Some(_) => {} // already fully explored
                None => {
                    color[node] = 2;
                    stack.pop();
                    frames.pop();
                }
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_messages(_: usize, _: usize, _: u32) -> bool {
        false
    }

    #[test]
    fn mutual_recv_cycle() {
        let states = vec![
            WaitState::RecvWait { src: 1, tag: 1 },
            WaitState::RecvWait { src: 0, tag: 2 },
        ];
        let report = diagnose_deadlock(&states, no_messages).expect("deadlock");
        let cycle = report.cycle.as_ref().expect("cyclic");
        assert_eq!(cycle.len(), 2);
        let text = report.to_string();
        assert!(text.contains("rank 0") && text.contains("rank 1"));
        assert!(text.contains("cycle"));
    }

    #[test]
    fn wait_on_finished_rank() {
        let states = vec![WaitState::Finished, WaitState::RecvWait { src: 0, tag: 7 }];
        let report = diagnose_deadlock(&states, no_messages).expect("deadlock");
        assert_eq!(report.dead_dependency, Some((1, 0)));
        assert!(report.to_string().contains("can never satisfy"));
    }

    #[test]
    fn queued_message_suppresses_report() {
        let states = vec![WaitState::Finished, WaitState::RecvWait { src: 0, tag: 7 }];
        let report = diagnose_deadlock(&states, |src, dst, tag| (src, dst, tag) == (0, 1, 7));
        assert!(report.is_none(), "rank 1 is about to wake");
    }

    #[test]
    fn running_peer_is_not_a_deadlock() {
        let states = vec![WaitState::Running, WaitState::RecvWait { src: 0, tag: 7 }];
        assert!(diagnose_deadlock(&states, no_messages).is_none());
    }

    #[test]
    fn barrier_vs_recv_cycle() {
        // rank 0 at barrier; rank 1 waiting on a message from rank 0.
        let states = vec![
            WaitState::BarrierWait { generation: 0 },
            WaitState::RecvWait { src: 0, tag: 5 },
        ];
        let report = diagnose_deadlock(&states, no_messages).expect("deadlock");
        assert!(report.cycle.is_some());
    }

    #[test]
    fn barrier_with_running_straggler_is_fine() {
        let states = vec![
            WaitState::BarrierWait { generation: 2 },
            WaitState::BarrierWait { generation: 2 },
            WaitState::Running,
        ];
        assert!(diagnose_deadlock(&states, no_messages).is_none());
    }

    #[test]
    fn barrier_with_finished_straggler_is_deadlock() {
        let states = vec![
            WaitState::BarrierWait { generation: 0 },
            WaitState::Finished,
        ];
        let report = diagnose_deadlock(&states, no_messages).expect("deadlock");
        assert_eq!(report.dead_dependency, Some((0, 1)));
    }

    #[test]
    fn three_rank_cycle_found() {
        let states = vec![
            WaitState::RecvWait { src: 2, tag: 0 },
            WaitState::RecvWait { src: 0, tag: 0 },
            WaitState::RecvWait { src: 1, tag: 0 },
        ];
        let report = diagnose_deadlock(&states, no_messages).expect("deadlock");
        assert_eq!(report.cycle.map(|c| c.len()), Some(3));
    }
}
