//! Exhaustive schedule exploration of the protocol models.
//!
//! These tests are the mini-loom acceptance gate: each model must expose a
//! non-trivial interleaving space (≥ 100 distinct schedules, fully explored
//! without truncation), the correct protocols must be clean on *every*
//! schedule, and seeded bad mutations must be caught.

use ffw_check::models::{AllreduceModel, DispenserBug, DispenserModel, TagMailboxModel};
use ffw_check::Explorer;

#[test]
fn mailbox_out_of_order_matching_all_schedules() {
    let report = Explorer::default().explore(&TagMailboxModel::new());
    assert!(
        report.is_clean(),
        "deadlocks: {:?}\nviolations: {:?}",
        report.deadlocks,
        report.violations
    );
    assert!(!report.truncated, "space must be fully explored");
    assert!(
        report.complete_schedules >= 100,
        "expected >= 100 interleavings, got {}",
        report.complete_schedules
    );
}

#[test]
fn allreduce_all_schedules_clean() {
    let report = Explorer::default().explore(&AllreduceModel::new(4));
    assert!(
        report.is_clean(),
        "deadlocks: {:?}\nviolations: {:?}",
        report.deadlocks,
        report.violations
    );
    assert!(!report.truncated);
    assert!(
        report.complete_schedules >= 100,
        "expected >= 100 interleavings, got {}",
        report.complete_schedules
    );
}

#[test]
fn dispenser_all_schedules_clean() {
    let report = Explorer::default().explore(&DispenserModel::new(5, 2, 2, DispenserBug::None));
    assert!(
        report.is_clean(),
        "deadlocks: {:?}\nviolations: {:?}",
        report.deadlocks,
        report.violations
    );
    assert!(!report.truncated);
    assert!(
        report.complete_schedules >= 100,
        "expected >= 100 interleavings, got {}",
        report.complete_schedules
    );
}

#[test]
fn dropping_chunks_done_increment_is_caught_as_deadlock() {
    // The seeded mutation from the issue: a worker that never bumps
    // `chunks_done` strands the submitter, which waits for completion that
    // never comes. The explorer must find that stuck state.
    let report = Explorer::default().explore(&DispenserModel::new(
        4,
        2,
        2,
        DispenserBug::SkipDoneIncrement,
    ));
    assert!(
        !report.deadlocks.is_empty(),
        "the explorer must catch the stranded submitter"
    );
    // Every schedule ends stuck: the submitter can never run.
    assert_eq!(
        report.complete_schedules, 0,
        "no schedule can complete when chunks_done is never incremented"
    );
    let reason = &report.deadlocks[0].reason;
    assert!(reason.contains("blocked"), "got: {reason}");
}

#[test]
fn incrementing_before_run_is_caught_as_use_after_free() {
    // The other seeded mutation: bumping `chunks_done` before running the
    // chunk lets the submitter observe completion early, free the job, and
    // leave a worker dereferencing the dangling closure. At least one
    // interleaving must expose it.
    let report = Explorer::default().explore(&DispenserModel::new(
        4,
        2,
        2,
        DispenserBug::IncrementBeforeRun,
    ));
    assert!(
        !report.violations.is_empty(),
        "the explorer must find a use-after-free interleaving"
    );
    assert!(
        report.violations[0].reason.contains("use-after-free"),
        "got: {}",
        report.violations[0].reason
    );
}

#[test]
fn allreduce_scales_with_rank_count() {
    // Sanity: the schedule space grows with rank count and stays clean.
    let small = Explorer::default().explore(&AllreduceModel::new(2));
    let large = Explorer::default().explore(&AllreduceModel::new(4));
    assert!(small.is_clean() && large.is_clean());
    assert!(large.complete_schedules > small.complete_schedules);
}
