//! The four-phase MLFMA matrix-vector product (paper Section III-B):
//! aggregation, translation, disaggregation, near field.
//!
//! Input and output vectors are in *tree order* (leaves in Morton order,
//! row-major within a leaf — see `ffw_geometry::QuadTree`). The product
//! computed is the full discretized Green's operator `y = G0 x`, including
//! near-field self terms, with `O(N)` work and storage.
//!
//! Intra-node parallelization follows the paper's Section IV-C: levels with
//! many clusters parallelize over clusters, levels with few clusters and many
//! samples parallelize over samples. Both map onto `ffw_par::Pool` chunk
//! loops.
//!
//! [`MlfmaEngine::apply_block`] additionally folds the paper's illumination
//! dimension into a single traversal: a panel of `B` right-hand sides shares
//! one pass over the operators (expansion matrices, translators, near-field
//! blocks), with chunking over `(cluster x rhs)` slots so levels with few
//! clusters still saturate the pool. Column-wise arithmetic is identical to
//! the single-RHS path, so each column is bit-identical to a plain `apply`.

use crate::plan::{offset_index, MlfmaPlan};
use ffw_geometry::{morton_decode, morton_encode, LEAF_PIXELS};
use ffw_numerics::C64;
use ffw_par::Pool;
use parking_lot::Mutex;
use std::sync::Arc;

/// Scratch buffers reused across matvecs: one outgoing and one incoming
/// pattern array per computed level.
struct Workspace {
    /// outgoing[li][c * q .. (c+1) * q]: radiated far-field pattern of cluster c.
    outgoing: Vec<Vec<C64>>,
    /// incoming[li]: translated local pattern, same layout.
    incoming: Vec<Vec<C64>>,
}

impl Workspace {
    fn new(plan: &MlfmaPlan) -> Self {
        let alloc = |li: usize| {
            let lp = &plan.levels[li];
            vec![C64::ZERO; lp.n_side * lp.n_side * lp.q]
        };
        Workspace {
            outgoing: (0..plan.levels.len()).map(alloc).collect(),
            incoming: (0..plan.levels.len()).map(alloc).collect(),
        }
    }
}

/// Panel-major scratch for the block (multi-RHS) path. The pattern slot of
/// `(cluster c, column b)` at a level of width `B` lives at
/// `(c * B + b) * q .. (c * B + b + 1) * q`: all columns of one cluster are
/// adjacent, so a fused traversal streams each per-cluster operator once
/// while sweeping the whole panel (see DESIGN.md "Block data layout").
struct BlockWorkspace {
    /// Panel width the buffers are currently sized for (0 = unallocated).
    width: usize,
    /// outgoing[li]: radiated patterns, `n_clusters * width * q` per level.
    outgoing: Vec<Vec<C64>>,
    /// incoming[li]: translated local patterns, same layout.
    incoming: Vec<Vec<C64>>,
    /// Panel-major output fields: slot `(leaf c, column b)` holds that leaf's
    /// 64 pixels of column `b`; unpacked into per-column vectors at the end.
    y_panel: Vec<C64>,
}

impl BlockWorkspace {
    fn empty() -> Self {
        BlockWorkspace {
            width: 0,
            outgoing: Vec::new(),
            incoming: Vec::new(),
            y_panel: Vec::new(),
        }
    }

    /// (Re)allocates for panel width `width`. Buffers are kept between
    /// applies of the same width — the common case inside a batched solve.
    fn ensure(&mut self, plan: &MlfmaPlan, width: usize) {
        if self.width == width {
            return;
        }
        let alloc = |li: usize| {
            let lp = &plan.levels[li];
            vec![C64::ZERO; lp.n_side * lp.n_side * width * lp.q]
        };
        self.outgoing = (0..plan.levels.len()).map(alloc).collect();
        self.incoming = (0..plan.levels.len()).map(alloc).collect();
        self.y_panel = vec![C64::ZERO; plan.n_pixels() * width];
        self.width = width;
    }
}

/// Per-apply work model for one MLFMA stage: flops (8 per complex
/// multiply-add) and bytes of pattern/field data moved. Computed once from
/// the plan at engine construction, charged to `ffw_obs` counters per apply.
#[derive(Clone, Copy, Default)]
struct StageCost {
    flops: u64,
    bytes: u64,
}

/// Cached observability handles + the per-apply cost model (so the hot path
/// is a handful of relaxed atomic adds, no registry lookups).
struct ObsHooks {
    applies: ffw_obs::Counter,
    block_applies: ffw_obs::Counter,
    flops: [ffw_obs::Counter; 4],
    bytes: [ffw_obs::Counter; 4],
    cost: [StageCost; 4],
    /// Bytes of *operator* data streamed by one traversal, per stage —
    /// charged once per apply and once per fused block apply, which is where
    /// the panel path's arithmetic-intensity win shows up in the model.
    op_bytes: [u64; 4],
}

const STAGES: [&str; 4] = ["aggregate", "translate", "disaggregate", "near"];

impl ObsHooks {
    fn new(plan: &MlfmaPlan) -> Self {
        ObsHooks {
            applies: ffw_obs::counter("mlfma.applies"),
            block_applies: ffw_obs::counter("mlfma.block_applies"),
            flops: STAGES.map(|s| ffw_obs::counter(&format!("mlfma.flops.{s}"))),
            bytes: STAGES.map(|s| ffw_obs::counter(&format!("mlfma.bytes.{s}"))),
            cost: apply_cost(plan),
            op_bytes: operator_bytes(plan),
        }
    }

    /// Charges one apply's worth of modeled work to the counters. No-op
    /// (4 branch-predicted loads) while the recorder is off.
    #[inline]
    fn charge_apply(&self) {
        self.applies.inc();
        for i in 0..4 {
            self.flops[i].add(self.cost[i].flops);
            self.bytes[i].add(self.cost[i].bytes + self.op_bytes[i]);
        }
    }

    /// Charges a `width`-column fused traversal: `mlfma.applies` advances by
    /// one *per column* (so "applies" stays comparable to the single-RHS
    /// path), pattern flops/bytes scale with the panel width, but operator
    /// bytes are charged once — that is the fused path's whole point.
    #[inline]
    fn charge_apply_block(&self, width: u64) {
        self.applies.add(width);
        self.block_applies.inc();
        ffw_obs::histogram("mlfma.panel_width").record(width);
        for i in 0..4 {
            self.flops[i].add(self.cost[i].flops * width);
            self.bytes[i].add(self.cost[i].bytes * width + self.op_bytes[i]);
        }
    }
}

/// Builds the per-stage cost model from the plan: complex multiply-adds
/// counted as 8 flops, bytes as the pattern/field data each stage reads and
/// writes (16 bytes per `C64`). Interpolation is modeled as one MAC per
/// output sample per child — a lower bound for the band path, exact in
/// spirit for the diagonal shift/translation work that dominates.
fn apply_cost(plan: &MlfmaPlan) -> [StageCost; 4] {
    const C: u64 = 16; // bytes per C64
    let n_levels = plan.levels.len();
    let leaf = plan.leaf_plan();
    let n_leaves = (leaf.n_side * leaf.n_side) as u64;
    let q_leaf = leaf.q as u64;
    let npx = LEAF_PIXELS as u64;

    // aggregate: leaf expansions + upward interp/shift per non-leaf level
    let mut agg = StageCost {
        flops: n_leaves * q_leaf * npx * 8,
        bytes: n_leaves * (npx + q_leaf) * C,
    };
    for li in (0..n_levels.saturating_sub(1)).rev() {
        let lp = &plan.levels[li];
        let n_parents = (lp.n_side * lp.n_side) as u64;
        let q_parent = lp.q as u64;
        let q_child = plan.levels[li + 1].q as u64;
        // 4 children: interpolate child->parent sampling, then shift-MAC
        agg.flops += n_parents * 4 * (q_parent + q_parent) * 8;
        agg.bytes += n_parents * (4 * q_child + q_parent) * C;
    }

    // translate: one diagonal MAC per interaction-list entry per sample
    let mut tra = StageCost::default();
    for lp in &plan.levels {
        let q = lp.q as u64;
        let mut n_pairs = 0u64;
        for c in 0..(lp.n_side * lp.n_side) as u32 {
            let (ix, iy) = morton_decode(c);
            n_pairs += plan
                .tree
                .interaction_list(lp.level, ix as usize, iy as usize)
                .len() as u64;
        }
        tra.flops += n_pairs * q * 8;
        tra.bytes += (n_pairs * q + (lp.n_side * lp.n_side) as u64 * q) * C;
    }

    // disaggregate: mirror of the upward pass (shift + anterpolate)
    let mut dis = StageCost::default();
    for li in 0..n_levels.saturating_sub(1) {
        let lp = &plan.levels[li];
        let n_parents = (lp.n_side * lp.n_side) as u64;
        let q_parent = lp.q as u64;
        let q_child = plan.levels[li + 1].q as u64;
        dis.flops += n_parents * 4 * (q_parent + q_parent) * 8;
        dis.bytes += n_parents * (q_parent + 4 * q_child) * C;
    }

    // near: adjoint leaf expansion + 9-ish dense blocks per leaf
    let mut near = StageCost {
        flops: n_leaves * q_leaf * npx * 8,
        bytes: n_leaves * (q_leaf + npx) * C,
    };
    let leaf_side = plan.tree.clusters_per_side(plan.tree.leaf_level());
    let mut n_near = 0u64;
    for iy in 0..leaf_side {
        for ix in 0..leaf_side {
            n_near += plan.tree.near_list(ix, iy).len() as u64;
        }
    }
    near.flops += n_near * npx * npx * 8;
    near.bytes += n_near * npx * C + n_leaves * npx * C;

    [agg, tra, dis, near]
}

/// Bytes of *operator* data (expansion matrices, interpolation weights
/// modeled as one `f64` per output sample per child, shift and translation
/// diagonals, dense near-field blocks) streamed by one tree traversal.
///
/// This is the part of the `B>1` cost model that does *not* scale with the
/// panel width: a fused `apply_block` reads each operator once for all `B`
/// columns, while `B` single applies read them `B` times.
fn operator_bytes(plan: &MlfmaPlan) -> [u64; 4] {
    const C: u64 = 16; // bytes per C64
    const W: u64 = 8; // bytes per interpolation weight (f64)
    let n_levels = plan.levels.len();
    let leaf = plan.leaf_plan();
    let n_leaves = (leaf.n_side * leaf.n_side) as u64;
    let q_leaf = leaf.q as u64;
    let npx = LEAF_PIXELS as u64;

    // aggregate: leaf expansion matrix per leaf + upward interp/shift ops
    let mut agg = n_leaves * q_leaf * npx * C;
    for li in (0..n_levels.saturating_sub(1)).rev() {
        let lp = &plan.levels[li];
        let n_parents = (lp.n_side * lp.n_side) as u64;
        let q_parent = lp.q as u64;
        agg += n_parents * 4 * q_parent * (W + C);
    }

    // translate: one diagonal translator per interaction-list entry
    let mut tra = 0u64;
    for lp in &plan.levels {
        let q = lp.q as u64;
        let mut n_pairs = 0u64;
        for c in 0..(lp.n_side * lp.n_side) as u32 {
            let (ix, iy) = morton_decode(c);
            n_pairs += plan
                .tree
                .interaction_list(lp.level, ix as usize, iy as usize)
                .len() as u64;
        }
        tra += n_pairs * q * C;
    }

    // disaggregate: mirror of the upward pass (shift diag + anterp weights)
    let mut dis = 0u64;
    for li in 0..n_levels.saturating_sub(1) {
        let lp = &plan.levels[li];
        let n_parents = (lp.n_side * lp.n_side) as u64;
        let q_parent = lp.q as u64;
        dis += n_parents * 4 * q_parent * (W + C);
    }

    // near: adjoint expansion matrix per leaf + 9-ish dense blocks
    let mut near = n_leaves * q_leaf * npx * C;
    let leaf_side = plan.tree.clusters_per_side(plan.tree.leaf_level());
    for iy in 0..leaf_side {
        for ix in 0..leaf_side {
            near += plan.tree.near_list(ix, iy).len() as u64 * npx * npx * C;
        }
    }

    [agg, tra, dis, near]
}

/// Reusable MLFMA matvec engine.
pub struct MlfmaEngine {
    plan: Arc<MlfmaPlan>,
    pool: Arc<Pool>,
    workspace: Mutex<Workspace>,
    block_ws: Mutex<BlockWorkspace>,
    /// Clusters-per-level threshold below which translation switches from
    /// cluster-parallel to sample-parallel.
    sample_parallel_below: usize,
    obs: ObsHooks,
}

impl MlfmaEngine {
    /// Creates an engine bound to a plan and a thread pool.
    pub fn new(plan: Arc<MlfmaPlan>, pool: Arc<Pool>) -> Self {
        let workspace = Mutex::new(Workspace::new(&plan));
        let sample_parallel_below = 4 * pool.n_threads();
        let obs = ObsHooks::new(&plan);
        MlfmaEngine {
            plan,
            pool,
            workspace,
            block_ws: Mutex::new(BlockWorkspace::empty()),
            sample_parallel_below,
            obs,
        }
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &MlfmaPlan {
        &self.plan
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.plan.n_pixels()
    }

    /// Computes `y = G0 x` (both in tree order) in `O(N)`.
    pub fn apply(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.n());
        assert_eq!(y.len(), self.n());
        let _apply = ffw_obs::span("mlfma.apply");
        self.obs.charge_apply();
        let mut ws = self.workspace.lock();
        let ws = &mut *ws;
        {
            let _s = ffw_obs::span("aggregate");
            self.aggregate(x, &mut ws.outgoing);
        }
        {
            let _s = ffw_obs::span("translate");
            self.translate(&ws.outgoing, &mut ws.incoming);
        }
        {
            let _s = ffw_obs::span("disaggregate");
            self.disaggregate(&mut ws.incoming);
        }
        {
            let _s = ffw_obs::span("near");
            self.receive_and_near(x, &ws.incoming, y);
        }
    }

    /// Computes `ys[b] = G0 xs[b]` for a panel of `B` right-hand sides in a
    /// *single* tree traversal: every expansion matrix, interpolator,
    /// shift/translation diagonal and near-field block is loaded once and
    /// applied to all columns of the panel, and the chunk loops dispatch over
    /// `(cluster x rhs)` slots so even levels with a handful of clusters
    /// expose `n_clusters * B` units of parallelism.
    ///
    /// Column-wise the arithmetic is identical (same operations, in the same
    /// order) to [`Self::apply`], so each `ys[b]` is bit-identical to a
    /// single-RHS apply of `xs[b]`. A panel of one delegates to `apply`.
    pub fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        let width = xs.len();
        assert_eq!(ys.len(), width, "block width mismatch");
        if width == 0 {
            return;
        }
        if width == 1 {
            self.apply(xs[0], &mut ys[0]);
            return;
        }
        let n = self.n();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert_eq!(x.len(), n);
            assert_eq!(y.len(), n);
        }
        let _apply = ffw_obs::span("mlfma.apply");
        self.obs.charge_apply_block(width as u64);
        let mut ws = self.block_ws.lock();
        ws.ensure(&self.plan, width);
        let ws = &mut *ws;
        {
            let _s = ffw_obs::span("aggregate");
            self.aggregate_block(xs, &mut ws.outgoing, width);
        }
        {
            let _s = ffw_obs::span("translate");
            self.translate_block(&ws.outgoing, &mut ws.incoming, width);
        }
        {
            let _s = ffw_obs::span("disaggregate");
            self.disaggregate_block(&mut ws.incoming, width);
        }
        {
            let _s = ffw_obs::span("near");
            self.receive_and_near_block(xs, &ws.incoming, &mut ws.y_panel, width);
        }
        // Unpack the panel-major output into the per-column vectors.
        for (col, y) in ys.iter_mut().enumerate() {
            for c in 0..n / LEAF_PIXELS {
                let src = (c * width + col) * LEAF_PIXELS;
                y[c * LEAF_PIXELS..(c + 1) * LEAF_PIXELS]
                    .copy_from_slice(&ws.y_panel[src..src + LEAF_PIXELS]);
            }
        }
    }

    /// Phase 1+2 of Fig. 4's MLFMA box: leaf multipole expansions, then
    /// upward interpolation + shift to every coarser level.
    fn aggregate(&self, x: &[C64], outgoing: &mut [Vec<C64>]) {
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        // Leaf expansions: F_c = E x_c, grouped so each task does whole leaves.
        let q_leaf = plan.leaf_plan().q;
        let expansion = &plan.expansion;
        self.pool
            .for_each_chunk_mut(&mut outgoing[n_levels - 1], 8 * q_leaf, |start, chunk| {
                let first_leaf = start / q_leaf;
                for (i, out) in chunk.chunks_mut(q_leaf).enumerate() {
                    let c = first_leaf + i;
                    expansion.matvec(&x[c * LEAF_PIXELS..(c + 1) * LEAF_PIXELS], out);
                }
            });
        // Upward pass: parent patterns from child patterns.
        for li in (0..n_levels - 1).rev() {
            let _lvl = ffw_obs::span(format!("L{}", plan.levels[li].level));
            let (parents, children) = {
                let (a, b) = outgoing.split_at_mut(li + 1);
                (&mut a[li], &b[0])
            };
            let lp = &plan.levels[li];
            let q_parent = lp.q;
            let q_child = plan.levels[li + 1].q;
            let interp = lp.interp.as_ref().expect("non-leaf has interp");
            self.pool
                .for_each_chunk_mut(parents, q_parent, |start, out| {
                    let p = start / q_parent;
                    let mut tmp = vec![C64::ZERO; q_parent];
                    for v in out.iter_mut() {
                        *v = C64::ZERO;
                    }
                    for pos in 0..4usize {
                        let c = 4 * p + pos; // Morton: children contiguous
                        interp.up(&children[c * q_child..(c + 1) * q_child], &mut tmp);
                        let shift = &lp.shift_out[pos];
                        for ((o, t), s) in out.iter_mut().zip(&tmp).zip(shift) {
                            *o = t.mul_add(*s, *o);
                        }
                    }
                });
        }
    }

    /// Phase 3: diagonal translations along every level's interaction lists.
    fn translate(&self, outgoing: &[Vec<C64>], incoming: &mut [Vec<C64>]) {
        let plan = &self.plan;
        for (li, lp) in plan.levels.iter().enumerate() {
            let _lvl = ffw_obs::span(format!("L{}", lp.level));
            let q = lp.q;
            let n_side = lp.n_side;
            let n_clusters = n_side * n_side;
            let src_pat = &outgoing[li];
            let translate_one = |obs: usize, out: &mut [C64], q_range: std::ops::Range<usize>| {
                let (ix, iy) = morton_decode(obs as u32);
                for v in out[q_range.clone()].iter_mut() {
                    *v = C64::ZERO;
                }
                for (sx, sy, off) in plan
                    .tree
                    .interaction_list(lp.level, ix as usize, iy as usize)
                {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let t = lp.translations[offset_index(off)]
                        .as_ref()
                        .expect("translator");
                    let src = &src_pat[s * q..(s + 1) * q];
                    for qi in q_range.clone() {
                        out[qi] = t[qi].mul_add(src[qi], out[qi]);
                    }
                }
            };
            if n_clusters >= self.sample_parallel_below {
                // Cluster-parallel: each task owns whole clusters.
                self.pool
                    .for_each_chunk_mut(&mut incoming[li], q, |start, chunk| {
                        let obs = start / q;
                        translate_one(obs, chunk, 0..q);
                    });
            } else {
                // Sample-parallel: few clusters, many samples per cluster.
                for obs in 0..n_clusters {
                    let slice = &mut incoming[li][obs * q..(obs + 1) * q];
                    let grain = q.div_ceil(self.pool.n_threads().max(1)).max(16);
                    // Copy out to satisfy the chunk API, operating on ranges.
                    self.pool.for_each_chunk_mut(slice, grain, |qstart, sub| {
                        let range = 0..sub.len();
                        let mut local = vec![C64::ZERO; sub.len()];
                        // translate only this sample window
                        let (ix, iy) = morton_decode(obs as u32);
                        for (sx, sy, off) in
                            plan.tree
                                .interaction_list(lp.level, ix as usize, iy as usize)
                        {
                            let s = morton_encode(sx as u32, sy as u32) as usize;
                            let t = lp.translations[offset_index(off)]
                                .as_ref()
                                .expect("translator");
                            let src = &src_pat[s * q..(s + 1) * q];
                            for j in range.clone() {
                                local[j] = t[qstart + j].mul_add(src[qstart + j], local[j]);
                            }
                        }
                        sub.copy_from_slice(&local);
                    });
                }
            }
        }
    }

    /// Phase 4: downward pass — shift parent local expansions into children
    /// and anterpolate onto the child sampling.
    fn disaggregate(&self, incoming: &mut [Vec<C64>]) {
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        for li in 0..n_levels - 1 {
            let _lvl = ffw_obs::span(format!("L{}", plan.levels[li].level));
            let (parents, children) = {
                let (a, b) = incoming.split_at_mut(li + 1);
                (&a[li], &mut b[0])
            };
            let lp = &plan.levels[li];
            let q_parent = lp.q;
            let q_child = plan.levels[li + 1].q;
            let interp = lp.interp.as_ref().expect("non-leaf");
            let anterp_scale = lp.anterp_scale;
            // Each task owns one parent => its 4 children (disjoint).
            self.pool
                .for_each_chunk_mut(children, 4 * q_child, |start, kids| {
                    let p = start / (4 * q_child);
                    let parent = &parents[p * q_parent..(p + 1) * q_parent];
                    let mut tmp = vec![C64::ZERO; q_parent];
                    for pos in 0..4usize {
                        let shift = &lp.shift_in[pos];
                        for ((t, g), s) in tmp.iter_mut().zip(parent).zip(shift) {
                            *t = *g * *s;
                        }
                        let child = &mut kids[pos * q_child..(pos + 1) * q_child];
                        interp.down_add(&tmp, anterp_scale, child);
                    }
                });
        }
    }

    /// Phases 5+6: convert leaf local expansions back to fields (local
    /// expansion = quadrature-weighted adjoint of the multipole expansion)
    /// and add the near-field interactions, writing `y` in one pass per leaf.
    fn receive_and_near(&self, x: &[C64], incoming: &[Vec<C64>], y: &mut [C64]) {
        let plan = &self.plan;
        let leaf_pat = incoming.last().expect("non-empty");
        let lp = plan.leaf_plan();
        let q = lp.q;
        let coupling = plan.kernel.coupling;
        let inv_q = 1.0 / q as f64;
        let expansion = &plan.expansion;
        let near = &plan.near;
        let leaf_side = plan.tree.clusters_per_side(plan.tree.leaf_level());
        self.pool.for_each_chunk_mut(y, LEAF_PIXELS, |start, out| {
            let c = start / LEAF_PIXELS;
            let (ix, iy) = morton_decode(c as u32);
            // Far field: y_j = coupling * (1/Q) sum_q conj(E[q,j]) G_c[q]
            for v in out.iter_mut() {
                *v = C64::ZERO;
            }
            expansion.matvec_adjoint_acc(&leaf_pat[c * q..(c + 1) * q], out);
            let w = coupling * inv_q;
            for v in out.iter_mut() {
                *v *= w;
            }
            // Near field: 9 dense blocks
            let _ = leaf_side;
            for (sx, sy, off) in plan.tree.near_list(ix as usize, iy as usize) {
                let s = morton_encode(sx as u32, sy as u32) as usize;
                let oi = near_offset_index(off);
                near[oi].matvec_acc(&x[s * LEAF_PIXELS..(s + 1) * LEAF_PIXELS], out);
            }
        });
    }

    /// Block aggregation: one slot = one `(cluster, column)` pair, laid out
    /// panel-major so the chunk loops below get contiguous disjoint windows.
    fn aggregate_block(&self, xs: &[&[C64]], outgoing: &mut [Vec<C64>], width: usize) {
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        let q_leaf = plan.leaf_plan().q;
        let expansion = &plan.expansion;
        // Leaf expansions over (leaf x rhs) slots, 8 slots per task.
        self.pool
            .for_each_chunk_mut(&mut outgoing[n_levels - 1], 8 * q_leaf, |start, chunk| {
                let first_slot = start / q_leaf;
                for (i, out) in chunk.chunks_mut(q_leaf).enumerate() {
                    let slot = first_slot + i;
                    let (c, col) = (slot / width, slot % width);
                    expansion.matvec(&xs[col][c * LEAF_PIXELS..(c + 1) * LEAF_PIXELS], out);
                }
            });
        // Upward pass over (parent x rhs) slots.
        for li in (0..n_levels - 1).rev() {
            let _lvl = ffw_obs::span(format!("L{}", plan.levels[li].level));
            let (parents, children) = {
                let (a, b) = outgoing.split_at_mut(li + 1);
                (&mut a[li], &b[0])
            };
            let lp = &plan.levels[li];
            let q_parent = lp.q;
            let q_child = plan.levels[li + 1].q;
            let interp = lp.interp.as_ref().expect("non-leaf has interp");
            self.pool
                .for_each_chunk_mut(parents, q_parent, |start, out| {
                    let slot = start / q_parent;
                    let (p, col) = (slot / width, slot % width);
                    let mut tmp = vec![C64::ZERO; q_parent];
                    for v in out.iter_mut() {
                        *v = C64::ZERO;
                    }
                    for pos in 0..4usize {
                        let c = 4 * p + pos; // Morton: children contiguous
                        let coff = (c * width + col) * q_child;
                        interp.up(&children[coff..coff + q_child], &mut tmp);
                        let shift = &lp.shift_out[pos];
                        for ((o, t), s) in out.iter_mut().zip(&tmp).zip(shift) {
                            *o = t.mul_add(*s, *o);
                        }
                    }
                });
        }
    }

    /// Block translation: `(cluster x rhs)` slot parallelism makes the
    /// sample-parallel fallback unnecessary — even the coarsest level offers
    /// `n_clusters * B` independent slots.
    fn translate_block(&self, outgoing: &[Vec<C64>], incoming: &mut [Vec<C64>], width: usize) {
        let plan = &self.plan;
        for (li, lp) in plan.levels.iter().enumerate() {
            let _lvl = ffw_obs::span(format!("L{}", lp.level));
            let q = lp.q;
            let src_pat = &outgoing[li];
            self.pool
                .for_each_chunk_mut(&mut incoming[li], q, |start, out| {
                    let slot = start / q;
                    let (obs, col) = (slot / width, slot % width);
                    let (ix, iy) = morton_decode(obs as u32);
                    for v in out.iter_mut() {
                        *v = C64::ZERO;
                    }
                    for (sx, sy, off) in
                        plan.tree
                            .interaction_list(lp.level, ix as usize, iy as usize)
                    {
                        let s = morton_encode(sx as u32, sy as u32) as usize;
                        let t = lp.translations[offset_index(off)]
                            .as_ref()
                            .expect("translator");
                        let soff = (s * width + col) * q;
                        let src = &src_pat[soff..soff + q];
                        for ((o, tv), sv) in out.iter_mut().zip(t.iter()).zip(src) {
                            *o = tv.mul_add(*sv, *o);
                        }
                    }
                });
        }
    }

    /// Block downward pass: one slot = one `(child cluster, column)` pair.
    /// This is finer-grained than the scalar path's one-parent-per-task
    /// split, but computes the same `tmp = parent .* shift` product per
    /// child, in the same order — per-column results stay bit-identical.
    fn disaggregate_block(&self, incoming: &mut [Vec<C64>], width: usize) {
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        for li in 0..n_levels - 1 {
            let _lvl = ffw_obs::span(format!("L{}", plan.levels[li].level));
            let (parents, children) = {
                let (a, b) = incoming.split_at_mut(li + 1);
                (&a[li], &mut b[0])
            };
            let lp = &plan.levels[li];
            let q_parent = lp.q;
            let q_child = plan.levels[li + 1].q;
            let interp = lp.interp.as_ref().expect("non-leaf");
            let anterp_scale = lp.anterp_scale;
            self.pool
                .for_each_chunk_mut(children, q_child, |start, child| {
                    let slot = start / q_child;
                    let (c, col) = (slot / width, slot % width);
                    let (p, pos) = (c / 4, c % 4);
                    let poff = (p * width + col) * q_parent;
                    let parent = &parents[poff..poff + q_parent];
                    let mut tmp = vec![C64::ZERO; q_parent];
                    let shift = &lp.shift_in[pos];
                    for ((t, g), s) in tmp.iter_mut().zip(parent).zip(shift) {
                        *t = *g * *s;
                    }
                    interp.down_add(&tmp, anterp_scale, child);
                });
        }
    }

    /// Block receive + near field: each work item owns one whole leaf across
    /// all `B` columns (a contiguous `B * LEAF_PIXELS` panel region), so every
    /// near-field block is loaded *once* per leaf and swept across the panel
    /// by [`ffw_numerics::Matrix::matvec_acc_panel`]. This is where the fused
    /// path's speedup lives — the dense near blocks dominate apply time, and
    /// the single-accumulator matvec chain they run per column in the scalar
    /// path is floating-point-latency-bound. Per column the operation order
    /// (zero, adjoint receive, scale, near blocks in `near_list` order, each
    /// an `r`-outer `k`-inner fma chain) is unchanged, so columns stay
    /// bit-identical to `apply`.
    fn receive_and_near_block(
        &self,
        xs: &[&[C64]],
        incoming: &[Vec<C64>],
        y_panel: &mut [C64],
        width: usize,
    ) {
        let plan = &self.plan;
        let leaf_pat = incoming.last().expect("non-empty");
        let q = plan.leaf_plan().q;
        let coupling = plan.kernel.coupling;
        let inv_q = 1.0 / q as f64;
        let expansion = &plan.expansion;
        let near = &plan.near;
        self.pool
            .for_each_chunk_mut(y_panel, width * LEAF_PIXELS, |start, out| {
                let c = start / (width * LEAF_PIXELS);
                let (ix, iy) = morton_decode(c as u32);
                for v in out.iter_mut() {
                    *v = C64::ZERO;
                }
                // Far-field receive, column by column (small q x 64 adjoint).
                let w = coupling * inv_q;
                for col in 0..width {
                    let ocol = &mut out[col * LEAF_PIXELS..(col + 1) * LEAF_PIXELS];
                    let poff = (c * width + col) * q;
                    expansion.matvec_adjoint_acc(&leaf_pat[poff..poff + q], ocol);
                    for v in ocol.iter_mut() {
                        *v *= w;
                    }
                }
                // Near field: 9-ish dense blocks, each applied to the whole
                // panel in one pass over its rows.
                let mut srcs: Vec<&[C64]> = Vec::with_capacity(width);
                for (sx, sy, off) in plan.tree.near_list(ix as usize, iy as usize) {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let oi = near_offset_index(off);
                    srcs.clear();
                    srcs.extend(
                        xs.iter()
                            .map(|x| &x[s * LEAF_PIXELS..(s + 1) * LEAF_PIXELS]),
                    );
                    near[oi].matvec_acc_panel(&srcs, out);
                }
            });
    }
}

/// Index of a near-field offset in `NEAR_OFFSETS` order.
#[inline]
fn near_offset_index(off: ffw_geometry::Offset) -> usize {
    ((off.1 + 1) as usize) * 3 + (off.0 + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Accuracy;
    use ffw_geometry::Domain;
    use ffw_greens::{tree_positions, DirectG0};
    use ffw_numerics::c64;
    use ffw_numerics::vecops::rel_diff;

    fn random_x(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    fn engine(n_px: usize, acc: Accuracy, threads: usize) -> (MlfmaEngine, Domain) {
        let domain = Domain::new(n_px, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, acc));
        (MlfmaEngine::new(plan, Arc::new(Pool::new(threads))), domain)
    }

    fn direct_reference(domain: &Domain, x: &[C64]) -> Vec<C64> {
        let tree = ffw_geometry::QuadTree::new(domain);
        let pos = tree_positions(domain, &tree);
        let kernel = ffw_greens::Kernel::new(domain.k0(), domain.equivalent_radius());
        let mut y = vec![C64::ZERO; x.len()];
        DirectG0::new(kernel, &pos).apply(x, &mut y);
        y
    }

    /// The headline correctness property: MLFMA matches the direct O(N^2)
    /// product to the paper's 1e-5 budget, on a 2-level tree (32x32).
    #[test]
    fn matches_direct_two_levels() {
        let (eng, domain) = engine(32, Accuracy::default(), 2);
        let x = random_x(eng.n(), 42);
        let mut y = vec![C64::ZERO; eng.n()];
        eng.apply(&x, &mut y);
        let y_ref = direct_reference(&domain, &x);
        let err = rel_diff(&y, &y_ref);
        assert!(err < 1e-5, "relative error {err:e}");
    }

    /// Three levels exercises interpolation/anterpolation and both shift
    /// directions (64x64 = 4096 unknowns).
    #[test]
    fn matches_direct_three_levels() {
        let (eng, domain) = engine(64, Accuracy::default(), 3);
        let x = random_x(eng.n(), 7);
        let mut y = vec![C64::ZERO; eng.n()];
        eng.apply(&x, &mut y);
        let y_ref = direct_reference(&domain, &x);
        let err = rel_diff(&y, &y_ref);
        assert!(err < 1e-5, "relative error {err:e}");
    }

    #[test]
    fn low_accuracy_still_reasonable_and_cheaper() {
        let (eng, domain) = engine(32, Accuracy::low(), 1);
        let x = random_x(eng.n(), 3);
        let mut y = vec![C64::ZERO; eng.n()];
        eng.apply(&x, &mut y);
        let y_ref = direct_reference(&domain, &x);
        let err = rel_diff(&y, &y_ref);
        assert!(err < 1e-2, "low accuracy error {err:e}");
        assert!(err > 1e-9, "low accuracy should not be exact");
    }

    #[test]
    fn linear_in_input() {
        let (eng, _) = engine(32, Accuracy::low(), 2);
        let n = eng.n();
        let x1 = random_x(n, 1);
        let x2 = random_x(n, 2);
        let alpha = c64(0.3, -0.8);
        let combo: Vec<C64> = x1.iter().zip(&x2).map(|(a, b)| *a + alpha * *b).collect();
        let mut y1 = vec![C64::ZERO; n];
        let mut y2 = vec![C64::ZERO; n];
        let mut yc = vec![C64::ZERO; n];
        eng.apply(&x1, &mut y1);
        eng.apply(&x2, &mut y2);
        eng.apply(&combo, &mut yc);
        let expect: Vec<C64> = y1.iter().zip(&y2).map(|(a, b)| *a + alpha * *b).collect();
        assert!(rel_diff(&yc, &expect) < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let x = random_x(plan.n_pixels(), 11);
        let mut outputs = Vec::new();
        for threads in [1usize, 2, 4] {
            let eng = MlfmaEngine::new(Arc::clone(&plan), Arc::new(Pool::new(threads)));
            let mut y = vec![C64::ZERO; plan.n_pixels()];
            eng.apply(&x, &mut y);
            outputs.push(y);
        }
        // identical work partition-independent results (no reduction races)
        assert!(rel_diff(&outputs[1], &outputs[0]) < 1e-14);
        assert!(rel_diff(&outputs[2], &outputs[0]) < 1e-14);
    }

    #[test]
    fn repeated_apply_is_deterministic() {
        let (eng, _) = engine(32, Accuracy::low(), 3);
        let x = random_x(eng.n(), 5);
        let mut y1 = vec![C64::ZERO; eng.n()];
        let mut y2 = vec![C64::ZERO; eng.n()];
        eng.apply(&x, &mut y1);
        eng.apply(&x, &mut y2);
        assert_eq!(
            y1.iter().map(|v| v.re).sum::<f64>(),
            y2.iter().map(|v| v.re).sum::<f64>()
        );
        assert!(rel_diff(&y1, &y2) == 0.0);
    }

    #[test]
    fn symmetric_to_mlfma_accuracy() {
        // G0 is complex symmetric; the factorization preserves this to its
        // own accuracy: <y, G0 x> ~ <x, G0 y> (unconjugated).
        let (eng, _) = engine(32, Accuracy::default(), 2);
        let n = eng.n();
        let x = random_x(n, 21);
        let z = random_x(n, 22);
        let mut gx = vec![C64::ZERO; n];
        let mut gz = vec![C64::ZERO; n];
        eng.apply(&x, &mut gx);
        eng.apply(&z, &mut gz);
        let lhs: C64 = z.iter().zip(&gx).map(|(a, b)| *a * *b).sum();
        let rhs: C64 = x.iter().zip(&gz).map(|(a, b)| *a * *b).sum();
        assert!((lhs - rhs).abs() / lhs.abs() < 1e-6, "{lhs:?} vs {rhs:?}");
    }
}

#[cfg(test)]
mod spectral_tests {
    use super::*;
    use crate::params::Accuracy;
    use crate::plan::MlfmaPlan;
    use ffw_geometry::Domain;
    use ffw_greens::{tree_positions, DirectG0};
    use ffw_numerics::c64;
    use ffw_numerics::vecops::rel_diff;

    fn random_x(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    /// Exact spectral resampling must be at least as accurate as the
    /// band-diagonal path, validating the paper's Table I choice.
    #[test]
    fn spectral_interpolation_matches_direct_and_beats_band() {
        let domain = Domain::new(64, 1.0);
        let x = random_x(64 * 64, 17);
        let tree = ffw_geometry::QuadTree::new(&domain);
        let pos = tree_positions(&domain, &tree);
        let kernel = ffw_greens::Kernel::new(domain.k0(), domain.equivalent_radius());
        let mut y_ref = vec![C64::ZERO; x.len()];
        DirectG0::new(kernel, &pos).apply(&x, &mut y_ref);

        let run = |acc: Accuracy| {
            let plan = Arc::new(MlfmaPlan::new(&domain, acc));
            let eng = MlfmaEngine::new(plan, Arc::new(Pool::new(1)));
            let mut y = vec![C64::ZERO; x.len()];
            eng.apply(&x, &mut y);
            rel_diff(&y, &y_ref)
        };
        let band_err = run(Accuracy::default());
        let spectral_err = run(Accuracy::default().spectral());
        assert!(
            spectral_err < 1e-5,
            "spectral path accurate: {spectral_err:e}"
        );
        assert!(
            spectral_err <= band_err * 1.2,
            "spectral must not lose to band: {spectral_err:e} vs {band_err:e}"
        );
    }
}
