//! # ffw-mlfma
//!
//! The multilevel fast multipole algorithm for the 2-D Helmholtz volume
//! integral operator: an `O(N)` matrix-vector product with the `N x N`
//! pairwise interaction matrix `G0`, factorized through hierarchical
//! plane-wave (diagonal-translator) expansions on the quad-tree of
//! `ffw-geometry`.
//!
//! This is the algorithmic core of the paper: every forward-scattering
//! solution inside the DBIM inversion multiplies by `G0` twice per BiCGStab
//! iteration, and MLFMA is what turns the `O(N^2)`/`O(N^3)` bottleneck into
//! the `O(N)` kernel that scales to millions of unknowns.

#![warn(missing_docs)]

pub mod engine;
pub mod interp;
pub mod params;
pub mod plan;

pub use engine::MlfmaEngine;
pub use interp::lagrange_interp_matrix;
pub use params::Accuracy;
pub use plan::{offset_index, translator, LevelPlan, MlfmaPlan, OperatorCensus, PlanStats};
