//! Truncation and sampling parameters of the multipole expansions.

/// How patterns are resampled between levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpKind {
    /// Local Lagrange interpolation: band-diagonal matrices (the paper's
    /// choice, Table I).
    BandDiagonal,
    /// Exact spectral resampling via FFT zero-padding/truncation — the
    /// validation path; O(Q log Q) instead of O(Q p) per cluster.
    Spectral,
}

/// Accuracy controls for the MLFMA factorization.
///
/// `digits` drives the excess-bandwidth truncation formula; `interp_order` is
/// the number of points of the local Lagrange interpolators (the band width of
/// the band-diagonal interpolation matrices — the paper's "more accuracy
/// yields a thicker band", Section IV-D).
#[derive(Clone, Copy, Debug)]
pub struct Accuracy {
    /// Target digits of accuracy `d0` in the excess-bandwidth formula.
    pub digits: f64,
    /// Lagrange interpolation order (points per band row).
    pub interp_order: usize,
    /// Inter-level resampling scheme.
    pub interp_kind: InterpKind,
}

impl Default for Accuracy {
    fn default() -> Self {
        // Tuned so a full matvec lands at or below the paper's 1e-5 error
        // budget relative to the direct O(N^2) product (Section V-B).
        Accuracy {
            digits: 7.0,
            interp_order: 16,
            interp_kind: InterpKind::BandDiagonal,
        }
    }
}

impl Accuracy {
    /// Switches to exact spectral (FFT) inter-level resampling.
    pub fn spectral(mut self) -> Self {
        self.interp_kind = InterpKind::Spectral;
        self
    }

    /// Cheaper settings (~1e-3) for quick experiments.
    pub fn low() -> Self {
        Accuracy {
            digits: 3.0,
            interp_order: 6,
            interp_kind: InterpKind::BandDiagonal,
        }
    }

    /// High-accuracy settings (~1e-7).
    pub fn high() -> Self {
        Accuracy {
            digits: 8.0,
            interp_order: 14,
            interp_kind: InterpKind::BandDiagonal,
        }
    }

    /// Truncation order for a cluster of diameter `d` at wavenumber `k`:
    /// the excess-bandwidth formula `L = kd + 1.8 d0^(2/3) (kd)^(1/3)`.
    pub fn truncation(&self, k: f64, d: f64) -> usize {
        let kd = k * d;
        (kd + 1.8 * self.digits.powf(2.0 / 3.0) * kd.powf(1.0 / 3.0)).ceil() as usize
    }

    /// Number of angular samples for truncation order `l`: `Q = 2L + 1`
    /// (exact quadrature for bandwidth-`L` patterns).
    pub fn samples(l: usize) -> usize {
        2 * l + 1
    }

    /// Elementwise relative tolerance for ABFT checksum verification of
    /// applies built from this plan.
    ///
    /// The checksum identity `A(Σx) = Σ(Ax)` holds to floating-point
    /// rounding *regardless* of the truncation accuracy (the same
    /// approximate operator is applied to both sides), but the rounding
    /// accumulated along the tree grows with the interpolation order:
    /// measured worst-case elementwise drift over 64-column windows is
    /// `~5e-16` at `low()` (order 6) and `~3e-13` at `high()` (order 14).
    /// Scaling a `1e-11` base by the interpolation order keeps 2–4 orders
    /// of false-positive margin at every setting while still detecting any
    /// lane perturbed by more than one part in `10^7` of its window scale —
    /// i.e. every exponent-bit flip and mantissa flips down to ~bit 30.
    pub fn checksum_rel_tol(&self) -> f64 {
        1e-11 * (self.interp_order as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_grows_superlinearly_but_slower_than_quadratic() {
        let acc = Accuracy::default();
        let k = 2.0 * std::f64::consts::PI;
        let l1 = acc.truncation(k, 0.8 * std::f64::consts::SQRT_2);
        let l2 = acc.truncation(k, 1.6 * std::f64::consts::SQRT_2);
        // Doubling the cluster roughly doubles L but not more — this is the
        // property that makes total MLFMA work O(N) across levels.
        assert!(l2 > l1);
        assert!(l2 < 2 * l1, "L grows sub-linearly past kd: {l1} -> {l2}");
    }

    #[test]
    fn paper_leaf_cluster_order_is_moderate() {
        // 0.8 lambda leaf: kd ~ 7.1, L should be in the teens-to-twenties.
        let acc = Accuracy::default();
        let l = acc.truncation(2.0 * std::f64::consts::PI, 0.8 * std::f64::consts::SQRT_2);
        assert!((15..=30).contains(&l), "leaf L = {l}");
        assert_eq!(Accuracy::samples(l), 2 * l + 1);
    }

    #[test]
    fn more_digits_more_modes() {
        let k = 2.0 * std::f64::consts::PI;
        let d = 1.2;
        assert!(Accuracy::high().truncation(k, d) > Accuracy::low().truncation(k, d));
    }
}
