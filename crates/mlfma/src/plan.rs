//! MLFMA setup: precomputes every operator of the paper's Table I.
//!
//! | operator                | structure     | types                      |
//! |-------------------------|---------------|----------------------------|
//! | near-field interactions | dense         | 9 (neighbour offsets)      |
//! | multipole expansion     | dense         | 1 (shared by all leaves)   |
//! | interpolations          | band-diagonal | 1 per level pair           |
//! | multipole shiftings     | diagonal      | 4 per level (child pos.)   |
//! | translations            | diagonal      | 40 per level (offsets)     |
//! | local shiftings         | diagonal      | 4 per level                |
//! | anterpolations          | band-diagonal | transpose of interpolation |
//! | local expansions        | dense         | adjoint of expansion       |
//!
//! The regular pixel/cluster grid is what makes this reuse possible
//! (Section IV-D): every leaf shares one expansion matrix, every neighbour
//! pair with the same offset shares one near-field matrix, and every cluster
//! pair with the same level and offset shares one diagonal translator.
//!
//! Diagonal translator (2-D Rokhlin form): for observation cluster center
//! `Co = Cs + X`,
//! `H0(k|X + d|) ~ (1/Q) sum_q e^{i k khat(a_q) . d} T_L(a_q)` with
//! `T_L(a) = sum_{m=-L}^{L} i^m H_m^(1)(k|X|) e^{i m (a - phi_X)}`,
//! where `d = (r_obs - Co) - (r_src - Cs)`. Radiation patterns therefore carry
//! `e^{-i k khat . (r - C)}` and receive patterns the conjugate phase.

use crate::interp::lagrange_interp_matrix;
use crate::params::{Accuracy, InterpKind};
use ffw_geometry::{Domain, Offset, QuadTree, LEAF_PIXELS, LEAF_SIDE, NEAR_OFFSETS, TOP_LEVEL};
use ffw_greens::Kernel;
use ffw_numerics::bessel::hankel1_array;
use ffw_numerics::fft::{resample_with_plans, Fft};
use ffw_numerics::linalg::{Matrix, PeriodicBandMatrix};
use ffw_numerics::C64;

/// Maps a translation offset to its dense index in `0..49` (7x7 grid of
/// offsets; only the 40 with `max(|dx|,|dy|) >= 2` are populated).
#[inline]
pub fn offset_index(off: Offset) -> usize {
    debug_assert!((-3..=3).contains(&off.0) && (-3..=3).contains(&off.1));
    ((off.1 + 3) as usize) * 7 + (off.0 + 3) as usize
}

/// Inter-level resampling operator: the paper's band-diagonal Lagrange
/// matrices, or the exact spectral (FFT) alternative.
pub enum InterpOp {
    /// Band-diagonal local Lagrange interpolation (Table I).
    Band(PeriodicBandMatrix),
    /// Exact zero-padding/truncation resampling with cached FFT plans.
    Spectral {
        /// FFT plan at the child sampling rate.
        fft_child: Fft,
        /// FFT plan at the parent sampling rate.
        fft_parent: Fft,
    },
}

impl InterpOp {
    /// Upsamples a child pattern onto the parent sampling (overwrites `out`).
    pub fn up(&self, child: &[C64], out: &mut [C64]) {
        match self {
            InterpOp::Band(m) => m.apply(child, out),
            InterpOp::Spectral {
                fft_child,
                fft_parent,
            } => {
                let v = resample_with_plans(fft_child, fft_parent, child);
                out.copy_from_slice(&v);
            }
        }
    }

    /// Anterpolates a parent pattern into the child sampling, accumulating
    /// into `out`. `band_scale` is the quadrature factor `Q_child / Q_parent`
    /// used by the transpose form; the spectral path is exact as-is.
    pub fn down_add(&self, parent: &[C64], band_scale: f64, out: &mut [C64]) {
        match self {
            InterpOp::Band(m) => m.apply_transpose_scaled(parent, band_scale, out),
            InterpOp::Spectral {
                fft_child,
                fft_parent,
            } => {
                let v = resample_with_plans(fft_parent, fft_child, parent);
                for (o, x) in out.iter_mut().zip(v) {
                    *o += x;
                }
            }
        }
    }

    /// Stored nonzeros (band path) for the memory census.
    pub fn nnz(&self) -> usize {
        match self {
            InterpOp::Band(m) => m.nnz(),
            InterpOp::Spectral { .. } => 0,
        }
    }
}

/// Per-level precomputed operators.
pub struct LevelPlan {
    /// Tree level (TOP_LEVEL..=leaf).
    pub level: u8,
    /// Clusters per side at this level.
    pub n_side: usize,
    /// Cluster width.
    pub width: f64,
    /// Truncation order L.
    pub l_trunc: usize,
    /// Angular samples Q = 2L + 1.
    pub q: usize,
    /// Diagonal translators by [`offset_index`]; `None` at near offsets.
    pub translations: Vec<Option<Vec<C64>>>,
    /// Outgoing (multipole) shifts child -> this level, one per child
    /// position, sampled on this level's Q. Empty at the leaf level.
    pub shift_out: Vec<Vec<C64>>,
    /// Incoming (local) shifts this level -> child: conjugates of `shift_out`.
    pub shift_in: Vec<Vec<C64>>,
    /// Interpolation from the child sampling to this level's sampling.
    /// `None` at the leaf level.
    pub interp: Option<InterpOp>,
    /// Anterpolation scale `Q_child / Q_this` applied with `interp^T`.
    pub anterp_scale: f64,
}

/// The complete MLFMA factorization plan for one domain.
pub struct MlfmaPlan {
    /// The imaging domain.
    pub domain: Domain,
    /// The cluster hierarchy.
    pub tree: QuadTree,
    /// Green's-function kernel constants.
    pub kernel: Kernel,
    /// Accuracy settings used.
    pub accuracy: Accuracy,
    /// Computed levels, `[0]` = TOP_LEVEL, last = leaf.
    pub levels: Vec<LevelPlan>,
    /// Multipole expansion matrix (leaf Q x 64), shared by all leaves.
    pub expansion: Matrix,
    /// The 9 near-field matrices (64 x 64), ordered like `NEAR_OFFSETS`.
    pub near: Vec<Matrix>,
}

impl MlfmaPlan {
    /// Builds the plan. The domain side must be `8 * 2^m` pixels, `m >= 2`.
    pub fn new(domain: &Domain, accuracy: Accuracy) -> Self {
        let tree = QuadTree::new(domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let k = kernel.k;

        // Per-level truncation first (children needed for interp shapes).
        let level_params: Vec<(u8, usize, usize, f64)> = tree
            .levels()
            .map(|level| {
                let w = tree.cluster_width(level);
                let l = accuracy.truncation(k, w * std::f64::consts::SQRT_2);
                (level, l, Accuracy::samples(l), w)
            })
            .collect();

        let mut levels = Vec::with_capacity(level_params.len());
        for (idx, &(level, l_trunc, q, width)) in level_params.iter().enumerate() {
            // --- translators: 40 offsets ---
            let mut translations = vec![None; 49];
            for off in QuadTree::all_interaction_offsets() {
                let xx = -(off.0 as f64) * width;
                let xy = -(off.1 as f64) * width;
                let dist = xx.hypot(xy);
                let phi_x = xy.atan2(xx);
                let h = hankel1_array(l_trunc, k * dist);
                let t: Vec<C64> = (0..q)
                    .map(|qi| {
                        let theta = 2.0 * std::f64::consts::PI * qi as f64 / q as f64 - phi_x;
                        let mut acc = h[0];
                        for (m, &hm) in h.iter().enumerate().skip(1) {
                            // i^m H_m (e^{im t} + e^{-im t}) = i^m H_m 2 cos(m t)
                            acc += C64::i_pow(m as i64) * hm * (2.0 * (m as f64 * theta).cos());
                        }
                        acc
                    })
                    .collect();
                translations[offset_index(off)] = Some(t);
            }

            // --- shifts and interpolation (absent at the leaf level) ---
            let is_leaf = idx + 1 == level_params.len();
            let (shift_out, shift_in, interp, anterp_scale) = if is_leaf {
                (Vec::new(), Vec::new(), None, 0.0)
            } else {
                let (_, _, q_child, _) = level_params[idx + 1];
                let w_child = width * 0.5;
                let mut shift_out = Vec::with_capacity(4);
                let mut shift_in = Vec::with_capacity(4);
                for pos in 0..4u32 {
                    // Morton child position: bit 0 = x parity, bit 1 = y parity.
                    let cx = ((pos & 1) as f64 - 0.5) * w_child;
                    let cy = (((pos >> 1) & 1) as f64 - 0.5) * w_child;
                    let out: Vec<C64> = (0..q)
                        .map(|qi| {
                            let a = 2.0 * std::f64::consts::PI * qi as f64 / q as f64;
                            // e^{-i k khat . (C_child - C_parent)}
                            C64::cis(-k * (a.cos() * cx + a.sin() * cy))
                        })
                        .collect();
                    let inn: Vec<C64> = out.iter().map(|v| v.conj()).collect();
                    shift_out.push(out);
                    shift_in.push(inn);
                }
                let interp = match accuracy.interp_kind {
                    InterpKind::BandDiagonal => {
                        InterpOp::Band(lagrange_interp_matrix(q_child, q, accuracy.interp_order))
                    }
                    InterpKind::Spectral => InterpOp::Spectral {
                        fft_child: Fft::new(q_child),
                        fft_parent: Fft::new(q),
                    },
                };
                (shift_out, shift_in, Some(interp), q_child as f64 / q as f64)
            };

            levels.push(LevelPlan {
                level,
                n_side: tree.clusters_per_side(level),
                width,
                l_trunc,
                q,
                translations,
                shift_out,
                shift_in,
                interp,
                anterp_scale,
            });
        }

        // --- leaf multipole expansion matrix (shared by all leaves) ---
        let leaf = levels.last().expect("at least one level");
        let q_leaf = leaf.q;
        let px = domain.pixel_size();
        let half = LEAF_SIDE as f64 / 2.0;
        let expansion = Matrix::from_fn(q_leaf, LEAF_PIXELS, |qi, j| {
            let lx = (j % LEAF_SIDE) as f64 + 0.5 - half;
            let ly = (j / LEAF_SIDE) as f64 + 0.5 - half;
            let a = 2.0 * std::f64::consts::PI * qi as f64 / q_leaf as f64;
            // e^{-i k khat . delta}
            C64::cis(-k * (a.cos() * lx * px + a.sin() * ly * px))
        });

        // --- the 9 near-field matrices ---
        let w_leaf = leaf.width;
        let near = NEAR_OFFSETS
            .iter()
            .map(|&(ox, oy)| {
                Matrix::from_fn(LEAF_PIXELS, LEAF_PIXELS, |m, n| {
                    // observation pixel m in leaf at origin; source pixel n in
                    // leaf offset by (ox, oy) * w_leaf
                    let mx = (m % LEAF_SIDE) as f64;
                    let my = (m / LEAF_SIDE) as f64;
                    let nx = (n % LEAF_SIDE) as f64 + ox as f64 * LEAF_SIDE as f64;
                    let ny = (n / LEAF_SIDE) as f64 + oy as f64 * LEAF_SIDE as f64;
                    let r = ((mx - nx) * px).hypot((my - ny) * px);
                    let _ = w_leaf;
                    kernel.g0_element(r)
                })
            })
            .collect();

        MlfmaPlan {
            domain: domain.clone(),
            tree,
            kernel,
            accuracy,
            levels,
            expansion,
            near,
        }
    }

    /// The plan for a given tree level.
    pub fn level_plan(&self, level: u8) -> &LevelPlan {
        &self.levels[(level - TOP_LEVEL) as usize]
    }

    /// Leaf-level plan.
    pub fn leaf_plan(&self) -> &LevelPlan {
        self.levels.last().expect("non-empty")
    }

    /// Number of unknowns.
    pub fn n_pixels(&self) -> usize {
        self.tree.n_pixels()
    }

    /// Realized operator census (the paper's Table I).
    pub fn census(&self) -> OperatorCensus {
        OperatorCensus {
            near_field_types: self.near.len(),
            expansion_types: 1,
            interpolation_types: self.levels.len() - 1,
            multipole_shift_types: 4 * (self.levels.len() - 1),
            translation_types_per_level: 40,
            local_shift_types: 4 * (self.levels.len() - 1),
            anterpolation_types: self.levels.len() - 1,
            local_expansion_types: 1,
        }
    }

    /// Work/size statistics per level and phase, consumed by the performance
    /// model (`ffw-perf`) and by the complexity benchmarks.
    pub fn stats(&self) -> PlanStats {
        let cmul = 8.0; // flops per complex multiply-add
        let mut level_stats = Vec::new();
        let mut translation_flops = 0.0;
        let mut aggregation_flops = 0.0;
        let mut disaggregation_flops = 0.0;
        for (idx, lp) in self.levels.iter().enumerate() {
            let n_clusters = lp.n_side * lp.n_side;
            // exact count of in-bounds translation pairs
            let mut pairs = 0usize;
            for iy in 0..lp.n_side {
                for ix in 0..lp.n_side {
                    pairs += self.tree.interaction_list(lp.level, ix, iy).len();
                }
            }
            translation_flops += pairs as f64 * lp.q as f64 * cmul;
            if idx + 1 < self.levels.len() {
                let q_child = self.levels[idx + 1].q;
                let children = 4 * n_clusters;
                // interp (band p) + shift per child
                let per_child =
                    lp.q as f64 * self.accuracy.interp_order as f64 * cmul + lp.q as f64 * cmul;
                aggregation_flops += children as f64 * per_child;
                let _ = q_child;
                disaggregation_flops += children as f64 * per_child;
            }
            level_stats.push(LevelStats {
                level: lp.level,
                n_clusters,
                q: lp.q,
                l_trunc: lp.l_trunc,
                translation_pairs: pairs,
            });
        }
        let n_leaves = self.tree.n_leaves();
        let expansion_flops =
            n_leaves as f64 * self.leaf_plan().q as f64 * LEAF_PIXELS as f64 * cmul;
        // near-field pairs (in-bounds)
        let leaf_side = self.tree.clusters_per_side(self.tree.leaf_level());
        let mut near_pairs = 0usize;
        for iy in 0..leaf_side {
            for ix in 0..leaf_side {
                near_pairs += self.tree.near_list(ix, iy).len();
            }
        }
        let nearfield_flops = near_pairs as f64 * (LEAF_PIXELS * LEAF_PIXELS) as f64 * cmul;
        PlanStats {
            n_pixels: self.n_pixels(),
            interp_band: self.accuracy.interp_order,
            n_leaves,
            levels: level_stats,
            expansion_flops,
            local_expansion_flops: expansion_flops,
            aggregation_flops,
            translation_flops,
            disaggregation_flops,
            nearfield_flops,
        }
    }
}

/// Realized operator counts (paper Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorCensus {
    /// Dense near-field matrices.
    pub near_field_types: usize,
    /// Dense multipole expansion matrices.
    pub expansion_types: usize,
    /// Band-diagonal interpolation matrices (one per level pair).
    pub interpolation_types: usize,
    /// Diagonal outgoing shift vectors.
    pub multipole_shift_types: usize,
    /// Diagonal translators per level.
    pub translation_types_per_level: usize,
    /// Diagonal incoming shift vectors.
    pub local_shift_types: usize,
    /// Band-diagonal anterpolation operators (transposes).
    pub anterpolation_types: usize,
    /// Dense local expansion matrices (adjoint of expansion).
    pub local_expansion_types: usize,
}

/// Per-level structural statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelStats {
    /// Tree level.
    pub level: u8,
    /// Clusters at this level.
    pub n_clusters: usize,
    /// Angular samples per cluster.
    pub q: usize,
    /// Truncation order.
    pub l_trunc: usize,
    /// Total in-bounds translation pairs.
    pub translation_pairs: usize,
}

/// Whole-plan work statistics (flops per MLFMA matvec, by phase).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Unknowns.
    pub n_pixels: usize,
    /// Lagrange interpolation band width used by the plan.
    pub interp_band: usize,
    /// Leaf clusters.
    pub n_leaves: usize,
    /// Per-level stats, top first.
    pub levels: Vec<LevelStats>,
    /// Multipole expansion flops.
    pub expansion_flops: f64,
    /// Local expansion flops.
    pub local_expansion_flops: f64,
    /// Aggregation (interp + shift) flops.
    pub aggregation_flops: f64,
    /// Translation flops.
    pub translation_flops: f64,
    /// Disaggregation flops.
    pub disaggregation_flops: f64,
    /// Near-field flops.
    pub nearfield_flops: f64,
}

impl PlanStats {
    /// Total flops for one MLFMA matvec.
    pub fn total_flops(&self) -> f64 {
        self.expansion_flops
            + self.local_expansion_flops
            + self.aggregation_flops
            + self.translation_flops
            + self.disaggregation_flops
            + self.nearfield_flops
    }

    /// Far-field pattern storage in complex words.
    pub fn pattern_words(&self) -> usize {
        self.levels.iter().map(|l| 2 * l.n_clusters * l.q).sum()
    }
}

/// Builds a translator vector directly (exposed for the accuracy ablation
/// benchmark, which sweeps L independently of the plan).
pub fn translator(k: f64, x_vec: (f64, f64), l_trunc: usize, q: usize) -> Vec<C64> {
    let dist = x_vec.0.hypot(x_vec.1);
    let phi_x = x_vec.1.atan2(x_vec.0);
    let h = hankel1_array(l_trunc, k * dist);
    (0..q)
        .map(|qi| {
            let theta = 2.0 * std::f64::consts::PI * qi as f64 / q as f64 - phi_x;
            let mut acc = h[0];
            for (m, &hm) in h.iter().enumerate().skip(1) {
                acc += C64::i_pow(m as i64) * hm * (2.0 * (m as f64 * theta).cos());
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::bessel::hankel1_0;

    fn small_plan() -> MlfmaPlan {
        MlfmaPlan::new(&Domain::new(32, 1.0), Accuracy::default())
    }

    #[test]
    fn table1_census() {
        let plan = MlfmaPlan::new(&Domain::new(64, 1.0), Accuracy::default());
        let c = plan.census();
        assert_eq!(c.near_field_types, 9);
        assert_eq!(c.expansion_types, 1);
        assert_eq!(c.translation_types_per_level, 40);
        assert_eq!(c.multipole_shift_types, 4 * (plan.levels.len() - 1));
        // every level has all 40 translators realized
        for lp in &plan.levels {
            let realized = lp.translations.iter().filter(|t| t.is_some()).count();
            assert_eq!(realized, 40, "level {}", lp.level);
        }
    }

    /// The fundamental identity: the diagonal translator applied to unit
    /// source/receive patterns reproduces H0^(1)(k |X + d|) to the target
    /// accuracy, for the closest (hardest) offset (2, 0).
    #[test]
    fn translator_reproduces_h0() {
        let plan = small_plan();
        let leaf = plan.leaf_plan();
        let k = plan.kernel.k;
        let w = leaf.width;
        let t = leaf.translations[offset_index((2, 0))]
            .as_ref()
            .expect("translator exists");
        let q = leaf.q;
        // source at Cs + ds, obs at Co + do; offset (2,0): Cs = Co + (2w, 0)
        // Tolerance depends on how close the pair sits to the separation
        // boundary: the cluster-corner worst case of the one-buffer scheme is
        // the known accuracy-limiting configuration; interior points are far
        // more accurate. The *matvec-level* 1e-5 budget is verified separately
        // against the direct product (engine tests).
        for (dox, doy, dsx, dsy, tol) in [
            (0.0, 0.0, 0.0, 0.0, 1e-7),
            (0.35 * w, -0.4 * w, -0.3 * w, 0.45 * w, 1e-5),
            (-0.49 * w, 0.49 * w, 0.49 * w, -0.49 * w, 2e-3), // corner worst case
        ] {
            let dx = dox - dsx - 2.0 * w;
            let dy = doy - dsy;
            let exact = hankel1_0(k * dx.hypot(dy));
            let mut acc = C64::ZERO;
            for (qi, &tq) in t.iter().enumerate() {
                let a = 2.0 * std::f64::consts::PI * qi as f64 / q as f64;
                // e^{i k khat . d}, d = (do - ds) relative to centers:
                let d_dot = a.cos() * (dox - dsx) + a.sin() * (doy - dsy);
                // plus the center-to-center phase is inside T via X
                acc += C64::cis(k * d_dot) * tq;
            }
            acc = acc / q as f64;
            let err = (acc - exact).abs() / exact.abs();
            assert!(err < tol, "err = {err:e} at ({dox},{doy},{dsx},{dsy})");
        }
    }

    #[test]
    fn shifts_are_unit_modulus_conjugate_pairs() {
        let plan = small_plan();
        for lp in &plan.levels[..plan.levels.len() - 1] {
            assert_eq!(lp.shift_out.len(), 4);
            for pos in 0..4 {
                for (o, i) in lp.shift_out[pos].iter().zip(&lp.shift_in[pos]) {
                    assert!((o.abs() - 1.0).abs() < 1e-12);
                    assert!((o.conj() - *i).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn expansion_matrix_shape_and_modulus() {
        let plan = small_plan();
        let e = &plan.expansion;
        assert_eq!(e.rows(), plan.leaf_plan().q);
        assert_eq!(e.cols(), LEAF_PIXELS);
        for q in 0..e.rows() {
            for j in 0..e.cols() {
                assert!((e.at(q, j).abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn near_matrices_match_kernel_elements() {
        let plan = small_plan();
        let px = plan.domain.pixel_size();
        // offset (1, 0): source leaf to the right; pixel (0,0) obs vs (0,0) src
        let idx_10 = NEAR_OFFSETS
            .iter()
            .position(|&o| o == (1, 0))
            .expect("offset");
        let m = &plan.near[idx_10];
        let expect = plan.kernel.g0_element(8.0 * px);
        assert!((m.at(0, 0) - expect).abs() < 1e-14);
        // self matrix diagonal = self term
        let idx_00 = NEAR_OFFSETS
            .iter()
            .position(|&o| o == (0, 0))
            .expect("offset");
        let s = &plan.near[idx_00];
        for d in 0..LEAF_PIXELS {
            assert!((s.at(d, d) - plan.kernel.self_term).abs() < 1e-15);
        }
    }

    #[test]
    fn stats_are_order_n() {
        // Total flops per unknown should be roughly constant across sizes:
        // O(N) complexity (paper Section III-C).
        let acc = Accuracy::default();
        let f1 = MlfmaPlan::new(&Domain::new(64, 1.0), acc).stats();
        let f2 = MlfmaPlan::new(&Domain::new(256, 1.0), acc).stats();
        let per1 = f1.total_flops() / f1.n_pixels as f64;
        let per2 = f2.total_flops() / f2.n_pixels as f64;
        assert!(
            per2 / per1 < 1.6,
            "flops per unknown should stay ~constant: {per1:.0} -> {per2:.0}"
        );
    }

    #[test]
    fn q_decreases_toward_leaves() {
        let plan = MlfmaPlan::new(&Domain::new(128, 1.0), Accuracy::default());
        for w in plan.levels.windows(2) {
            assert!(w[0].q > w[1].q, "coarser level needs more samples");
        }
    }
}
