//! Band-diagonal interpolation / anterpolation between level samplings.
//!
//! Far-field patterns at level `l` are band-limited (bandwidth `L_l`) periodic
//! functions of the plane-wave angle, sampled at `Q_l` uniform points.
//! Aggregation needs child patterns resampled onto the parent's denser grid;
//! disaggregation needs the adjoint. The paper realizes both as band-diagonal
//! matrices from *local* Lagrange interpolation (Table I); the band width is
//! the interpolation order. The quadrature-weighted transpose
//! `(Q_child / Q_parent) * interp^T` is the anterpolation (low-pass +
//! downsample) operator.

use ffw_numerics::linalg::PeriodicBandMatrix;

/// Builds the `q_dst x q_src` periodic Lagrange interpolation matrix of order
/// `p` (band width `p`), mapping samples on the uniform `q_src` grid to
/// samples on the uniform `q_dst` grid (both over `[0, 2 pi)`).
pub fn lagrange_interp_matrix(q_src: usize, q_dst: usize, p: usize) -> PeriodicBandMatrix {
    assert!(q_src >= 2 && q_dst >= 1);
    let p = p.max(2).min(q_src);
    let mut starts = Vec::with_capacity(q_dst);
    let mut weights = Vec::with_capacity(q_dst * p);
    let ratio = q_src as f64 / q_dst as f64;
    for i in 0..q_dst {
        // Target angle in source-grid units.
        let u = i as f64 * ratio;
        // p nodes centered on u: floor(u) - p/2 + 1 ..= floor(u) + p/2
        let first = u.floor() as i64 - (p as i64) / 2 + 1;
        // Lagrange weights on the (unwrapped) integer nodes.
        for j in 0..p {
            let node_j = first + j as i64;
            let mut w = 1.0f64;
            for m in 0..p {
                if m != j {
                    let node_m = first + m as i64;
                    w *= (u - node_m as f64) / (node_j - node_m) as f64;
                }
            }
            weights.push(w);
        }
        starts.push(first.rem_euclid(q_src as i64) as u32);
    }
    PeriodicBandMatrix::new(q_dst, q_src, p, starts, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::fft::resample_periodic;
    use ffw_numerics::{c64, C64};

    /// Samples a band-limited test pattern with bandwidth `l` on `q` points.
    fn band_limited(l: i64, q: usize) -> Vec<C64> {
        (0..q)
            .map(|j| {
                let a = 2.0 * std::f64::consts::PI * j as f64 / q as f64;
                let mut acc = C64::ZERO;
                for m in -l..=l {
                    let cm = c64((m as f64 * 0.71).sin() + 0.2, (m as f64 * 1.31).cos() * 0.5);
                    acc += cm * C64::cis(m as f64 * a);
                }
                acc
            })
            .collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn interpolation_matches_exact_spectral_resampling() {
        // The signal must be oversampled for *local* interpolation to work —
        // in MLFMA the oversampling is supplied by the excess-bandwidth terms
        // of the truncation formula (physical bandwidth kd < L). Use a 2x
        // oversampled source grid, as a leaf-level pattern effectively is.
        let l = 8i64;
        let q_src = 4 * l as usize + 1; // 33: 2x oversampled
        let q_dst = 67;
        let coarse = band_limited(l, q_src);
        let exact = resample_periodic(&coarse, q_dst);
        for (p, tol) in [(6usize, 5e-2), (10, 5e-3), (14, 5e-4)] {
            let m = lagrange_interp_matrix(q_src, q_dst, p);
            let mut out = vec![C64::ZERO; q_dst];
            m.apply(&coarse, &mut out);
            let scale: f64 = exact.iter().map(|v| v.abs()).fold(0.0, f64::max);
            let err = max_err(&out, &exact) / scale;
            assert!(err < tol, "p={p}: err={err:e}");
        }
    }

    #[test]
    fn thicker_band_is_more_accurate() {
        // The paper's Table I remark: accuracy grows with band width.
        let l = 10i64;
        let coarse = band_limited(l, 4 * l as usize + 3); // oversampled
        let exact = resample_periodic(&coarse, 87);
        let mut prev = f64::INFINITY;
        for p in [4usize, 8, 12] {
            let m = lagrange_interp_matrix(coarse.len(), 87, p);
            let mut out = vec![C64::ZERO; 87];
            m.apply(&coarse, &mut out);
            let err = max_err(&out, &exact);
            assert!(err < prev, "p={p} err={err:e} prev={prev:e}");
            prev = err;
        }
    }

    #[test]
    fn exact_on_coincident_grids() {
        // q_dst == q_src: every target lands exactly on a node.
        let x = band_limited(5, 23);
        let m = lagrange_interp_matrix(23, 23, 8);
        let mut out = vec![C64::ZERO; 23];
        m.apply(&x, &mut out);
        assert!(max_err(&out, &x) < 1e-12);
    }

    #[test]
    fn anterpolation_is_quadrature_adjoint_exactly() {
        // With A = (Qc/Qp) I^T, the bilinear identity
        //   (1/Qc) sum_j (A g)_j f_j == (1/Qp) sum_i g_i (I f)_i
        // holds *exactly* for arbitrary f, g — this is the algebraic property
        // the disaggregation pass relies on.
        let qc = 13;
        let qp = 31;
        let f = band_limited(4, qc);
        let g = band_limited(9, qp);
        let interp = lagrange_interp_matrix(qc, qp, 8);
        let mut if_up = vec![C64::ZERO; qp];
        interp.apply(&f, &mut if_up);
        let lhs: C64 = g.iter().zip(&if_up).map(|(a, b)| *a * *b).sum::<C64>() / qp as f64;
        let mut down = vec![C64::ZERO; qc];
        interp.apply_transpose_scaled(&g, qc as f64 / qp as f64, &mut down);
        let rhs: C64 = down.iter().zip(&f).map(|(a, b)| *a * *b).sum::<C64>() / qc as f64;
        assert!(
            (lhs - rhs).abs() < 1e-12 * lhs.abs().max(1e-12),
            "{lhs:?} vs {rhs:?}"
        );
    }
}
