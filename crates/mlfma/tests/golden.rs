//! Golden regression: MLFMA matvec vs the direct dense Green's apply on a
//! pinned geometry, with the *measured* error recorded — not just bounded.
//!
//! The unit tests in `engine.rs` assert the paper's accuracy budget
//! (`err < 1e-5`); this test additionally pins the error actually observed
//! on a fixed scene and excitation, so a change that silently degrades (or
//! "improves" — usually a sign the operator changed) the approximation
//! fails loudly with the golden number in the message. Regenerate the
//! constants by running with `--nocapture` and copying the printed values.

use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use std::sync::Arc;

/// Deterministic excitation: splitmix-style LCG, same for every run.
fn pinned_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    (0..n).map(|_| c64(next(), next())).collect()
}

/// Relative error of the MLFMA product vs the dense direct product on the
/// pinned 32x32 scene (2-level tree, 1024 unknowns, seed 2024).
fn golden_error(acc: Accuracy) -> f64 {
    let domain = ffw_geometry::Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, acc));
    let engine = MlfmaEngine::new(Arc::clone(&plan), Arc::new(Pool::new(1)));
    let x = pinned_x(plan.n_pixels(), 2024);

    let mut y = vec![C64::ZERO; plan.n_pixels()];
    engine.apply(&x, &mut y);

    let tree = ffw_geometry::QuadTree::new(&domain);
    let pos = ffw_greens::tree_positions(&domain, &tree);
    let kernel = ffw_greens::Kernel::new(domain.k0(), domain.equivalent_radius());
    let mut y_ref = vec![C64::ZERO; plan.n_pixels()];
    ffw_greens::DirectG0::new(kernel, &pos).apply(&x, &mut y_ref);

    rel_diff(&y, &y_ref)
}

// Golden values measured on the pinned scene. The matvec is deterministic
// (fixed plan, fixed excitation, partition-independent reduction), so the
// only run-to-run wiggle is libm ulps across platforms — hence the band
// rather than bit-equality.

#[test]
fn golden_default_accuracy() {
    let err = golden_error(Accuracy::default());
    println!("golden default-accuracy rel error: {err:.6e}");
    // Recorded 2026-08: 6.26e-8 on the pinned scene. Paper budget is 1e-5.
    let golden = 6.26e-8;
    assert!(
        err < 1e-5,
        "accuracy budget violated: {err:.3e} (paper budget 1e-5)"
    );
    assert!(
        err < golden * 4.0 && err > golden / 4.0,
        "error drifted off the golden value: measured {err:.3e}, recorded {golden:.1e} \
         (band x/÷4); if the operator intentionally changed, re-record"
    );
}

#[test]
fn golden_low_accuracy() {
    let err = golden_error(Accuracy::low());
    println!("golden low-accuracy rel error: {err:.6e}");
    // Recorded 2026-08: 2.23e-6 on the pinned scene — the low setting drops
    // the truncation margin, not the floor. Budget for `low` is 1e-2.
    let golden = 2.23e-6;
    assert!(err < 1e-2, "low-accuracy budget violated: {err:.3e}");
    assert!(
        err < golden * 4.0 && err > golden / 4.0,
        "error drifted off the golden value: measured {err:.3e}, recorded {golden:.1e} \
         (band x/÷4); if the operator intentionally changed, re-record"
    );
}
