//! Metamorphic properties of the MLFMA engine and the direct kernel.
//!
//! These tests never compare against an external oracle; they check
//! relations the operator must satisfy *with itself*:
//!
//! - linearity: `G0 (a x + b y) == a G0 x + b G0 y`
//! - block consistency: a fused `apply_block` panel matches per-column
//!   single-RHS applies to <= 1e-12 (bit-identical by construction, the
//!   test budget leaves headroom for future SIMD reassociation)
//! - reciprocity: the free-space Green's function is symmetric under
//!   swapping source and observer, so the direct kernel's unconjugated
//!   bilinear form is symmetric.

use ffw_geometry::Domain;
use ffw_greens::{tree_positions, DirectG0, Kernel};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use std::sync::Arc;

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            c64(a, b)
        })
        .collect()
}

fn engine(n_px: usize, threads: usize) -> MlfmaEngine {
    let domain = Domain::new(n_px, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    MlfmaEngine::new(plan, Arc::new(Pool::new(threads)))
}

#[test]
fn linearity_of_the_fast_operator() {
    let eng = engine(32, 2);
    let n = eng.n();
    let x = random_x(n, 101);
    let y = random_x(n, 102);
    let (alpha, beta) = (c64(0.7, -1.3), c64(-0.2, 0.45));
    let combo: Vec<C64> = x
        .iter()
        .zip(&y)
        .map(|(a, b)| alpha * *a + beta * *b)
        .collect();
    let mut gx = vec![C64::ZERO; n];
    let mut gy = vec![C64::ZERO; n];
    let mut gc = vec![C64::ZERO; n];
    eng.apply(&x, &mut gx);
    eng.apply(&y, &mut gy);
    eng.apply(&combo, &mut gc);
    let expect: Vec<C64> = gx
        .iter()
        .zip(&gy)
        .map(|(a, b)| alpha * *a + beta * *b)
        .collect();
    assert!(
        rel_diff(&gc, &expect) < 1e-12,
        "apply(ax+by) != a apply(x) + b apply(y): {:e}",
        rel_diff(&gc, &expect)
    );
}

/// The tentpole acceptance property: every column of a fused block apply
/// matches its own single-RHS apply to <= 1e-12, for panel widths that do
/// and do not divide the engine's chunk sizes (3 does not divide anything
/// in sight; 8 matches the leaf-task grouping).
#[test]
fn block_apply_matches_single_rhs_per_column() {
    for threads in [1usize, 3] {
        let eng = engine(32, threads);
        let n = eng.n();
        for width in [1usize, 2, 3, 8] {
            let xs: Vec<Vec<C64>> = (0..width)
                .map(|b| random_x(n, 500 + (width * 16 + b) as u64))
                .collect();
            let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
            let mut ys = vec![vec![C64::ZERO; n]; width];
            eng.apply_block(&refs, &mut ys);
            for (b, x) in xs.iter().enumerate() {
                let mut y1 = vec![C64::ZERO; n];
                eng.apply(x, &mut y1);
                let d = rel_diff(&ys[b], &y1);
                assert!(
                    d <= 1e-12,
                    "column {b} of width-{width} block (threads={threads}) drifted: {d:e}"
                );
            }
        }
    }
}

/// The block path must be bit-identical per column, not merely close:
/// the batched Krylov solvers rely on it to keep their trajectories equal
/// to the scalar path.
#[test]
fn block_apply_is_bit_identical_per_column() {
    let eng = engine(32, 2);
    let n = eng.n();
    let width = 3;
    let xs: Vec<Vec<C64>> = (0..width).map(|b| random_x(n, 900 + b as u64)).collect();
    let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
    let mut ys = vec![vec![C64::ZERO; n]; width];
    eng.apply_block(&refs, &mut ys);
    for (b, x) in xs.iter().enumerate() {
        let mut y1 = vec![C64::ZERO; n];
        eng.apply(x, &mut y1);
        assert_eq!(ys[b], y1, "column {b} not bit-identical");
    }
}

/// Repeating a block apply (workspace reuse across widths) is deterministic.
#[test]
fn repeated_block_apply_deterministic_across_width_changes() {
    let eng = engine(32, 2);
    let n = eng.n();
    let xs: Vec<Vec<C64>> = (0..8).map(|b| random_x(n, 40 + b as u64)).collect();
    let run = |width: usize| {
        let refs: Vec<&[C64]> = xs[..width].iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; n]; width];
        eng.apply_block(&refs, &mut ys);
        ys
    };
    let first = run(8);
    let _smaller = run(2); // force a workspace reallocation
    let again = run(8);
    assert_eq!(first, again);
}

/// Reciprocity of the direct kernel: swapping source and observer leaves
/// the Green's function unchanged, so `y^T G0 x == x^T G0 y` exactly (the
/// matrix is assembled symmetric) and entry-wise `g(m,n) == g(n,m)`.
#[test]
fn direct_kernel_reciprocity() {
    let domain = Domain::new(32, 1.0);
    let tree = ffw_geometry::QuadTree::new(&domain);
    let pos = tree_positions(&domain, &tree);
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let g = DirectG0::new(kernel, &pos);
    let n = pos.len();

    // Entry-wise: apply to basis vectors and swap indices.
    let mut em = vec![C64::ZERO; n];
    let mut en = vec![C64::ZERO; n];
    let (m, nn) = (37, 803);
    em[m] = c64(1.0, 0.0);
    en[nn] = c64(1.0, 0.0);
    let mut col_m = vec![C64::ZERO; n];
    let mut col_n = vec![C64::ZERO; n];
    g.apply(&em, &mut col_m);
    g.apply(&en, &mut col_n);
    assert!(
        (col_m[nn] - col_n[m]).abs() < 1e-15,
        "g({nn},{m}) != g({m},{nn})"
    );

    // Bilinear form: <y, G0 x> == <x, G0 y> without conjugation.
    let x = random_x(n, 7);
    let y = random_x(n, 8);
    let mut gx = vec![C64::ZERO; n];
    let mut gy = vec![C64::ZERO; n];
    g.apply(&x, &mut gx);
    g.apply(&y, &mut gy);
    let lhs: C64 = y.iter().zip(&gx).map(|(a, b)| *a * *b).sum();
    let rhs: C64 = x.iter().zip(&gy).map(|(a, b)| *a * *b).sum();
    assert!(
        (lhs - rhs).abs() / lhs.abs() < 1e-13,
        "bilinear form asymmetric: {lhs:?} vs {rhs:?}"
    );
}
