//! Sweeps the MLFMA accuracy parameters (truncation digits d0 and
//! interpolation band width) against the direct O(N^2) product on a 64x64
//! grid — the quick developer version of `ffw-bench --bin accuracy`.

use ffw_geometry::Domain;
use ffw_greens::{tree_positions, DirectG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use std::sync::Arc;

fn random_x(n: usize, seed: u64) -> Vec<C64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            c64(a, b)
        })
        .collect()
}

fn main() {
    let domain = Domain::new(64, 1.0);
    let tree = ffw_geometry::QuadTree::new(&domain);
    let pos = tree_positions(&domain, &tree);
    let kernel = ffw_greens::Kernel::new(domain.k0(), domain.equivalent_radius());
    let x = random_x(64 * 64, 7);
    let mut yref = vec![C64::ZERO; x.len()];
    DirectG0::new(kernel, &pos).apply(&x, &mut yref);
    for (d, p) in [
        (5.0, 8),
        (6.0, 10),
        (7.0, 12),
        (7.0, 16),
        (8.0, 12),
        (8.0, 16),
        (9.0, 16),
        (10.0, 20),
    ] {
        let acc = Accuracy {
            digits: d,
            interp_order: p,
            ..Accuracy::default()
        };
        let plan = Arc::new(MlfmaPlan::new(&domain, acc));
        let eng = MlfmaEngine::new(plan, Arc::new(Pool::new(1)));
        let mut y = vec![C64::ZERO; x.len()];
        eng.apply(&x, &mut y);
        println!("digits={d} p={p}: err={:e}", rel_diff(&y, &yref));
    }
}
