//! Property-based tests for the Krylov solvers: they must solve what they
//! claim to solve, for randomized well-conditioned systems.

use ffw_numerics::linalg::Matrix;
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_solver::{bicgstab, cg, solve_adjoint, solve_forward, IterConfig, LinOp, ScatteringOp};
use proptest::prelude::*;

fn random_mat(n: usize, m: usize, seed: u64, diag_boost: f64) -> Matrix {
    let mut s = seed.wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    Matrix::from_fn(n, m, |r, c| {
        let mut v = c64(next(), next());
        if r == c {
            v += diag_boost;
        }
        v
    })
}

fn random_vec(n: usize, seed: u64) -> Vec<C64> {
    random_mat(1, n, seed, 0.0).as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bicgstab_solves_random_dominant_systems(seed in 0u64..5000, n in 5usize..50) {
        let a = random_mat(n, n, seed, 6.0);
        let x_true = random_vec(n, seed ^ 0xabcd);
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab(&a, &b, &mut x, IterConfig { tol: 1e-10, max_iters: 400 });
        prop_assert!(stats.converged);
        prop_assert!(rel_diff(&x, &x_true) < 1e-7, "err {}", rel_diff(&x, &x_true));
    }

    #[test]
    fn cg_solves_random_hpd_systems(seed in 0u64..5000, n in 5usize..40) {
        let b_mat = random_mat(n, n, seed, 0.0);
        let mut a = b_mat.adjoint().matmul(&b_mat);
        for i in 0..n {
            *a.at_mut(i, i) += 1.5;
        }
        let x_true = random_vec(n, seed ^ 0x1234);
        let mut rhs = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut rhs);
        let mut x = vec![C64::ZERO; n];
        let stats = cg(&a, &rhs, &mut x, IterConfig { tol: 1e-11, max_iters: 500 });
        prop_assert!(stats.converged);
        prop_assert!(rel_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn forward_then_apply_recovers_rhs(seed in 0u64..5000, n in 5usize..40) {
        // solve A phi = phi_inc, then verify A phi == phi_inc
        let g0 = {
            // complex-symmetric small-norm G0 stand-in
            let mut m = random_mat(n, n, seed, 0.0);
            for r in 0..n {
                for c in 0..r {
                    let v = m.at(r, c).scale(0.15);
                    *m.at_mut(r, c) = v;
                    *m.at_mut(c, r) = v;
                }
                let v = m.at(r, r).scale(0.15);
                *m.at_mut(r, r) = v;
            }
            m
        };
        let object: Vec<C64> = random_vec(n, seed ^ 0x77).iter().map(|v| v.scale(0.5)).collect();
        let phi_inc = random_vec(n, seed ^ 0x99);
        let mut phi = vec![C64::ZERO; n];
        let stats = solve_forward(&g0, &object, &phi_inc, &mut phi, IterConfig { tol: 1e-10, max_iters: 500 });
        prop_assert!(stats.converged);
        let a = ScatteringOp::new(&g0, &object);
        let mut back = vec![C64::ZERO; n];
        a.apply(&phi, &mut back);
        prop_assert!(rel_diff(&back, &phi_inc) < 1e-8);
    }

    #[test]
    fn forward_and_adjoint_solutions_are_consistent(seed in 0u64..2000, n in 5usize..30) {
        // <A^{-1} b, c> == <b, A^{-H} c> for random b, c
        let g0 = {
            let mut m = random_mat(n, n, seed, 0.0);
            for r in 0..n {
                for c in 0..=r {
                    let v = m.at(r, c).scale(0.12);
                    *m.at_mut(r, c) = v;
                    *m.at_mut(c, r) = v;
                }
            }
            m
        };
        let object: Vec<C64> = random_vec(n, seed ^ 0x7).iter().map(|v| v.scale(0.4)).collect();
        let b = random_vec(n, seed ^ 0x8);
        let c = random_vec(n, seed ^ 0x9);
        let cfg = IterConfig { tol: 1e-12, max_iters: 600 };
        let mut x = vec![C64::ZERO; n];
        prop_assert!(solve_forward(&g0, &object, &b, &mut x, cfg).converged);
        let mut z = vec![C64::ZERO; n];
        prop_assert!(solve_adjoint(&g0, &object, &c, &mut z, cfg).converged);
        let lhs = ffw_numerics::vecops::zdotc(&x, &c);
        let rhs = ffw_numerics::vecops::zdotc(&b, &z);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()), "{lhs:?} vs {rhs:?}");
    }
}
