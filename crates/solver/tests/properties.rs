//! Property-based tests for the iterative solvers: they must solve what
//! they claim to solve, for randomized well-conditioned systems — and the
//! Born-series engine must additionally honor its contraction certificate:
//! once the admission check accepts a contrast, the residual is *guaranteed*
//! to shrink geometrically, with an iteration count that is a deterministic
//! function of the problem alone (never of panel width or run order).

use ffw_numerics::linalg::Matrix;
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::{c64, C64};
use ffw_solver::{
    bicgstab, cg, estimate_g0_norm, solve_adjoint, solve_forward, BornSeriesBackend,
    ForwardBackend, IterConfig, LinOp, ScatteringOp, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED,
};
use proptest::prelude::*;

fn random_mat(n: usize, m: usize, seed: u64, diag_boost: f64) -> Matrix {
    let mut s = seed.wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    Matrix::from_fn(n, m, |r, c| {
        let mut v = c64(next(), next());
        if r == c {
            v += diag_boost;
        }
        v
    })
}

fn random_vec(n: usize, seed: u64) -> Vec<C64> {
    random_mat(1, n, seed, 0.0).as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bicgstab_solves_random_dominant_systems(seed in 0u64..5000, n in 5usize..50) {
        let a = random_mat(n, n, seed, 6.0);
        let x_true = random_vec(n, seed ^ 0xabcd);
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab(&a, &b, &mut x, IterConfig { tol: 1e-10, max_iters: 400 });
        prop_assert!(stats.converged);
        prop_assert!(rel_diff(&x, &x_true) < 1e-7, "err {}", rel_diff(&x, &x_true));
    }

    #[test]
    fn cg_solves_random_hpd_systems(seed in 0u64..5000, n in 5usize..40) {
        let b_mat = random_mat(n, n, seed, 0.0);
        let mut a = b_mat.adjoint().matmul(&b_mat);
        for i in 0..n {
            *a.at_mut(i, i) += 1.5;
        }
        let x_true = random_vec(n, seed ^ 0x1234);
        let mut rhs = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut rhs);
        let mut x = vec![C64::ZERO; n];
        let stats = cg(&a, &rhs, &mut x, IterConfig { tol: 1e-11, max_iters: 500 });
        prop_assert!(stats.converged);
        prop_assert!(rel_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn forward_then_apply_recovers_rhs(seed in 0u64..5000, n in 5usize..40) {
        // solve A phi = phi_inc, then verify A phi == phi_inc
        let g0 = {
            // complex-symmetric small-norm G0 stand-in
            let mut m = random_mat(n, n, seed, 0.0);
            for r in 0..n {
                for c in 0..r {
                    let v = m.at(r, c).scale(0.15);
                    *m.at_mut(r, c) = v;
                    *m.at_mut(c, r) = v;
                }
                let v = m.at(r, r).scale(0.15);
                *m.at_mut(r, r) = v;
            }
            m
        };
        let object: Vec<C64> = random_vec(n, seed ^ 0x77).iter().map(|v| v.scale(0.5)).collect();
        let phi_inc = random_vec(n, seed ^ 0x99);
        let mut phi = vec![C64::ZERO; n];
        let stats = solve_forward(&g0, &object, &phi_inc, &mut phi, IterConfig { tol: 1e-10, max_iters: 500 });
        prop_assert!(stats.converged);
        let a = ScatteringOp::new(&g0, &object);
        let mut back = vec![C64::ZERO; n];
        a.apply(&phi, &mut back);
        prop_assert!(rel_diff(&back, &phi_inc) < 1e-8);
    }

    #[test]
    fn forward_and_adjoint_solutions_are_consistent(seed in 0u64..2000, n in 5usize..30) {
        // <A^{-1} b, c> == <b, A^{-H} c> for random b, c
        let g0 = {
            let mut m = random_mat(n, n, seed, 0.0);
            for r in 0..n {
                for c in 0..=r {
                    let v = m.at(r, c).scale(0.12);
                    *m.at_mut(r, c) = v;
                    *m.at_mut(c, r) = v;
                }
            }
            m
        };
        let object: Vec<C64> = random_vec(n, seed ^ 0x7).iter().map(|v| v.scale(0.4)).collect();
        let b = random_vec(n, seed ^ 0x8);
        let c = random_vec(n, seed ^ 0x9);
        let cfg = IterConfig { tol: 1e-12, max_iters: 600 };
        let mut x = vec![C64::ZERO; n];
        prop_assert!(solve_forward(&g0, &object, &b, &mut x, cfg).converged);
        let mut z = vec![C64::ZERO; n];
        prop_assert!(solve_adjoint(&g0, &object, &c, &mut z, cfg).converged);
        let lhs = ffw_numerics::vecops::zdotc(&x, &c);
        let rhs = ffw_numerics::vecops::zdotc(&b, &z);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()), "{lhs:?} vs {rhs:?}");
    }
}

/// A random complex-symmetric `G0` plus an object scaled so the Born-series
/// contraction factor lands at `target_kappa` (estimated norm, safety
/// inflation included) — i.e. admissible by construction, with a tunable
/// margin to the bound.
fn admissible_system(n: usize, seed: u64, target_kappa: f64) -> (Matrix, Vec<C64>, f64) {
    let mut g0 = random_mat(n, n, seed, 0.0);
    for r in 0..n {
        for c in 0..=r {
            let v = g0.at(r, c).scale(0.3);
            *g0.at_mut(r, c) = v;
            *g0.at_mut(c, r) = v;
        }
    }
    let g0_norm = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
    let raw = random_vec(n, seed ^ 0xfeed);
    let max_abs = raw.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let scale = target_kappa / (g0_norm * max_abs);
    let object: Vec<C64> = raw.iter().map(|v| v.scale(scale)).collect();
    (g0, object, g0_norm)
}

/// True residual `||b - A x|| / ||b||` under the scattering operator.
fn true_residual(g0: &Matrix, object: &[C64], b: &[C64], x: &[C64]) -> f64 {
    let a = ScatteringOp::new(g0, object);
    let mut ax = vec![C64::ZERO; b.len()];
    a.apply(x, &mut ax);
    let num: f64 = b
        .iter()
        .zip(&ax)
        .map(|(bi, ai)| (*bi - *ai).norm_sqr())
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Admission implies contraction: for any contrast under the bound, the
    // residual after m+1 Born iterations is at most `kappa` times the
    // residual after m (small slack for the norm estimate and roundoff),
    // and strictly smaller — the certificate the admission check sells.
    #[test]
    fn born_series_contracts_geometrically(seed in 0u64..3000, n in 5usize..30) {
        let kappa_target = 0.3 + (seed % 5) as f64 * 0.1; // 0.3..=0.7
        let (g0, object, g0_norm) = admissible_system(n, seed, kappa_target);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let kappa = backend.kappa();
        prop_assert!(kappa < 0.95);
        let b = random_vec(n, seed ^ 0xb0b0);
        let mut prev = true_residual(&g0, &object, &b, &vec![C64::ZERO; n]);
        for m in 1..=8usize {
            let mut x = vec![C64::ZERO; n];
            // tol 0 disables the convergence exit, so exactly m update steps run.
            let stats = backend.solve(&b, &mut x, IterConfig { tol: 0.0, max_iters: m });
            prop_assert_eq!(stats.iterations, m);
            let res = true_residual(&g0, &object, &b, &x);
            prop_assert!(
                res <= prev * kappa * 1.05 + 1e-14,
                "iteration {} broke the contraction: {} -> {} (kappa {})",
                m, prev, res, kappa
            );
            prop_assert!(res < prev, "residual did not strictly decrease");
            prev = res;
        }
    }

    // Iteration counts are a pure function of (operator, rhs, tol): two
    // runs agree bit-for-bit, and slicing the same right-hand sides into
    // panels of any width changes neither the counts nor the iterates.
    #[test]
    fn born_series_counts_are_deterministic_and_panel_independent(
        seed in 0u64..3000, n in 5usize..24, width in 1usize..7
    ) {
        let (g0, object, g0_norm) = admissible_system(n, seed, 0.5);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let cfg = IterConfig { tol: 1e-10, max_iters: 400 };
        let cols = 6usize;
        let bs: Vec<Vec<C64>> = (0..cols).map(|c| random_vec(n, seed ^ (c as u64) << 3)).collect();

        // Reference: scalar solves, run twice to pin determinism.
        let mut ref_stats = Vec::new();
        let mut ref_x = Vec::new();
        for b in &bs {
            let mut x = vec![C64::ZERO; n];
            let s1 = backend.solve(b, &mut x, cfg);
            let mut x2 = vec![C64::ZERO; n];
            let s2 = backend.solve(b, &mut x2, cfg);
            prop_assert_eq!(s1.iterations, s2.iterations);
            prop_assert_eq!(s1.matvecs, s2.matvecs);
            prop_assert_eq!(&x, &x2);
            prop_assert!(s1.converged);
            ref_stats.push(s1);
            ref_x.push(x);
        }

        // Panels of `width` columns: identical counts and iterates.
        for chunk_start in (0..cols).step_by(width) {
            let chunk_end = (chunk_start + width).min(cols);
            let refs: Vec<&[C64]> = bs[chunk_start..chunk_end].iter().map(Vec::as_slice).collect();
            let mut xs = vec![vec![C64::ZERO; n]; refs.len()];
            let stats = backend.solve_block(&refs, &mut xs, cfg);
            for (k, s) in stats.iter().enumerate() {
                let c = chunk_start + k;
                prop_assert_eq!(
                    s.iterations, ref_stats[c].iterations,
                    "panel width {} changed column {}'s count", width, c
                );
                prop_assert_eq!(s.matvecs, ref_stats[c].matvecs);
                prop_assert_eq!(&xs[k], &ref_x[c], "panel width {} changed column {}", width, c);
            }
        }
    }
}
