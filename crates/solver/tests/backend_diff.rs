//! Differential cross-validation of the two forward backends.
//!
//! The Krylov (BiCGStab) and Born-series (relaxed Richardson) engines solve
//! the same system `(I - G0 diag(O)) phi = phi_inc` by entirely different
//! routes, so agreement between them is strong evidence that *both* are
//! right: a sign error, a stale-operator bug, or a convergence-threshold
//! mixup in either engine shows up as a field mismatch far above the shared
//! tolerance. The suite sweeps phantoms (annulus, point scatterer, lossy
//! medium) × contrast levels × accuracy settings, checks full DBIM
//! reconstructions under both backends, and pins the typed admission error
//! for contrasts outside the Born-series convergence bound.
//!
//! The pinned 32×32 geometry has `||G0|| ≈ 0.20` and the phantom rasterizer
//! carries the `k0^2 ≈ 39.5` factor into the object, so `kappa ≈ 7.9 ×
//! contrast`: every contrast here up to 0.1 is admissible, and 0.15 is
//! provably outside the bound.

use ffw_geometry::{Domain, Point2, TransducerArray};
use ffw_inverse::{dbim, synthesize_measurements, DbimConfig, DbimError, ImagingSetup, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Annulus, Cylinder, Phantom};
use ffw_solver::{
    estimate_g0_norm, make_backend, BackendChoice, BackendError, IterConfig, NORM_ESTIMATE_ITERS,
    NORM_ESTIMATE_SEED,
};
use std::sync::Arc;

/// One shared 32×32 imaging problem: geometry, G0 and the true object.
struct Problem {
    setup: ImagingSetup,
    g0: MlfmaG0,
    object: Vec<C64>,
}

/// The three phantom families the suite cross-validates on.
#[derive(Clone, Copy)]
enum Shape {
    /// Hollow ring — exercises interior multiple scattering.
    Annulus,
    /// Single isolated scatterer well under a wavelength across.
    Point,
    /// Absorbing cylinder: the object picks up an imaginary part, so the
    /// backends must agree on genuinely complex spectra, not just real ones.
    Lossy,
}

fn problem(shape: Shape, contrast: f64) -> Problem {
    let domain = Domain::new(32, 1.0);
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(8, ring),
    );
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(2)))));
    let raster = match shape {
        Shape::Annulus => Annulus {
            center: Point2::ZERO,
            inner: 0.15 * domain.side(),
            outer: 0.28 * domain.side(),
            contrast,
        }
        .rasterize(&domain),
        Shape::Point => Cylinder {
            center: Point2 {
                x: 0.1 * domain.side(),
                y: -0.05 * domain.side(),
            },
            radius: 0.04 * domain.side(),
            contrast,
        }
        .rasterize(&domain),
        Shape::Lossy => Cylinder {
            center: Point2::ZERO,
            radius: 0.25 * domain.side(),
            contrast,
        }
        .rasterize(&domain),
    };
    let mut object = object_from_contrast(&domain, &setup.tree, &raster);
    if matches!(shape, Shape::Lossy) {
        // Absorption: rotate the contrast into the complex plane. |O| is
        // preserved up to the factor below, so admission margins carry over.
        let loss = C64::new(1.0, 0.35);
        for o in &mut object {
            *o *= loss;
        }
    }
    Problem { setup, g0, object }
}

fn rel_err(a: &[C64], b: &[C64]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

/// Solves the forward system for every transmitter with both backends at
/// `cfg` and returns the worst relative field disagreement.
fn worst_field_gap(p: &Problem, cfg: IterConfig) -> f64 {
    let g0_norm = estimate_g0_norm(&p.g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
    let krylov = make_backend(BackendChoice::Bicgstab, &p.g0, &p.object, 0.0).expect("krylov");
    let born =
        make_backend(BackendChoice::BornSeries, &p.g0, &p.object, g0_norm).expect("born admission");
    let n = p.setup.n_pixels();
    let mut worst: f64 = 0.0;
    for t in 0..p.setup.n_tx() {
        let b = p.setup.incident(t);
        let mut xk = vec![C64::ZERO; n];
        let mut xb = vec![C64::ZERO; n];
        let sk = krylov.solve(b, &mut xk, cfg);
        let sb = born.solve(b, &mut xb, cfg);
        assert!(sk.converged, "krylov failed to converge (tx {t})");
        assert!(sb.converged, "born series failed to converge (tx {t})");
        worst = worst.max(rel_err(&xb, &xk));

        // Adjoint solves must agree too — the DBIM gradient is built on them.
        let mut zk = vec![C64::ZERO; n];
        let mut zb = vec![C64::ZERO; n];
        assert!(krylov.solve_adjoint(b, &mut zk, cfg).converged);
        assert!(born.solve_adjoint(b, &mut zb, cfg).converged);
        worst = worst.max(rel_err(&zb, &zk));
    }
    worst
}

/// Tentpole check: fields agree to 1e-10 across phantoms × contrasts ×
/// accuracy settings. The shared solve tolerance is two decades below the
/// agreement bar, so each engine's own truncation error cannot mask a
/// disagreement between them.
#[test]
fn backends_agree_on_forward_and_adjoint_fields() {
    let accuracies = [
        IterConfig {
            tol: 1e-12,
            max_iters: 2000,
        },
        IterConfig {
            tol: 1e-13,
            max_iters: 4000,
        },
    ];
    for shape in [Shape::Annulus, Shape::Point, Shape::Lossy] {
        for contrast in [0.01, 0.03, 0.06] {
            let p = problem(shape, contrast);
            for cfg in accuracies {
                let gap = worst_field_gap(&p, cfg);
                assert!(
                    gap <= 1e-10,
                    "field gap {gap:.3e} > 1e-10 (contrast {contrast}, tol {})",
                    cfg.tol
                );
            }
        }
    }
}

/// Full DBIM reconstructions under both backends agree to 1e-8. The outer
/// nonlinear iteration amplifies any forward-solve discrepancy through the
/// gradient, so this bounds the end-to-end effect of swapping engines.
#[test]
fn dbim_reconstructions_agree_across_backends() {
    let p = problem(Shape::Annulus, 0.03);
    let measured = synthesize_measurements(&p.setup, &p.g0, &p.object, Default::default());
    let run = |backend: BackendChoice| {
        let cfg = DbimConfig {
            iterations: 3,
            forward: IterConfig {
                tol: 1e-12,
                max_iters: 2000,
            },
            backend,
            ..Default::default()
        };
        dbim(&p.setup, &p.g0, &measured, &cfg).expect("dbim")
    };
    let krylov = run(BackendChoice::Bicgstab);
    let born = run(BackendChoice::BornSeries);
    let gap = rel_err(&born.object, &krylov.object);
    assert!(gap <= 1e-8, "reconstruction gap {gap:.3e} > 1e-8");
    // Identical solve structure: same number of forward-class solves and
    // the same measurement-residual trajectory shape.
    assert_eq!(born.forward_solves, krylov.forward_solves);
    assert!((born.final_residual - krylov.final_residual).abs() <= 1e-8);
}

/// Outside the convergence bound the Born-series backend must refuse at
/// build time with the typed error — never iterate and diverge.
#[test]
fn over_contrast_is_a_typed_admission_error() {
    let p = problem(Shape::Annulus, 0.15);
    let g0_norm = estimate_g0_norm(&p.g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
    match make_backend(BackendChoice::BornSeries, &p.g0, &p.object, g0_norm) {
        Err(BackendError::ContrastTooHigh { kappa, limit }) => {
            assert!(kappa >= limit, "kappa {kappa} should exceed limit {limit}");
        }
        Ok(_) => panic!("contrast 0.15 must be rejected (kappa ≈ 1.2)"),
    }
    // The same object sails through the Krylov arm, which accepts any
    // contrast — the bound is a Born-series property, not a problem property.
    assert!(make_backend(BackendChoice::Bicgstab, &p.g0, &p.object, 0.0).is_ok());
}

/// DBIM with an inadmissible contrast surfaces the same typed error through
/// [`DbimError::Backend`] instead of a panic or a silent divergence.
#[test]
fn dbim_propagates_the_admission_error() {
    let p = problem(Shape::Lossy, 0.3);
    let measured = synthesize_measurements(&p.setup, &p.g0, &p.object, Default::default());
    let cfg = DbimConfig {
        iterations: 8,
        backend: BackendChoice::BornSeries,
        ..Default::default()
    };
    // The *first* outer iteration starts from the zero background, which is
    // always admissible; the error can only fire once the object estimate
    // has grown toward the 0.3-contrast truth (kappa ≈ 2.5 at convergence,
    // crossing the 0.95 bound within the first few outer steps).
    match dbim(&p.setup, &p.g0, &measured, &cfg) {
        Err(DbimError::Backend(BackendError::ContrastTooHigh { .. })) => {}
        other => panic!("expected ContrastTooHigh, got {other:?}"),
    }
}
