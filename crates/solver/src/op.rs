//! Abstract linear operators.
//!
//! Everything the Krylov solvers touch is a [`LinOp`]: the MLFMA engine, the
//! dense reference operators, the scattering system `A = I - G0 diag(O)` and
//! its adjoint, and the Fréchet derivative of the inverse problem.

use ffw_numerics::linalg::Matrix;
use ffw_numerics::C64;

/// A linear operator `y = A x` over complex vectors.
pub trait LinOp: Sync {
    /// Output dimension (rows).
    fn dim_out(&self) -> usize;
    /// Input dimension (columns).
    fn dim_in(&self) -> usize;
    /// Computes `y = A x` (overwrites `y`).
    fn apply(&self, x: &[C64], y: &mut [C64]);
}

impl LinOp for Matrix {
    fn dim_out(&self) -> usize {
        self.rows()
    }
    fn dim_in(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.matvec(x, y);
    }
}

/// The identity operator.
pub struct IdentityOp(pub usize);

impl LinOp for IdentityOp {
    fn dim_out(&self) -> usize {
        self.0
    }
    fn dim_in(&self) -> usize {
        self.0
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        y.copy_from_slice(x);
    }
}

/// A diagonal operator `y = diag(d) x`.
pub struct DiagonalOp(pub Vec<C64>);

impl LinOp for DiagonalOp {
    fn dim_out(&self) -> usize {
        self.0.len()
    }
    fn dim_in(&self) -> usize {
        self.0.len()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        for ((yi, xi), di) in y.iter_mut().zip(x).zip(&self.0) {
            *yi = *xi * *di;
        }
    }
}

/// A closure-backed operator, handy for composing pipelines without new types.
pub struct FnOp<F: Fn(&[C64], &mut [C64]) + Sync> {
    dim_out: usize,
    dim_in: usize,
    f: F,
}

impl<F: Fn(&[C64], &mut [C64]) + Sync> FnOp<F> {
    /// Wraps a closure as an operator with the given dimensions.
    pub fn new(dim_out: usize, dim_in: usize, f: F) -> Self {
        FnOp { dim_out, dim_in, f }
    }
}

impl<F: Fn(&[C64], &mut [C64]) + Sync> LinOp for FnOp<F> {
    fn dim_out(&self) -> usize {
        self.dim_out
    }
    fn dim_in(&self) -> usize {
        self.dim_in
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        (self.f)(x, y);
    }
}

/// Counts applications of an inner operator (used to measure "MLFMA
/// multiplications per forward solution", the paper's Fig. 13 statistic).
pub struct CountingOp<'a, A: LinOp + ?Sized> {
    inner: &'a A,
    count: std::sync::atomic::AtomicUsize,
}

impl<'a, A: LinOp + ?Sized> CountingOp<'a, A> {
    /// Wraps `inner`.
    pub fn new(inner: &'a A) -> Self {
        CountingOp {
            inner,
            count: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of `apply` calls so far.
    pub fn count(&self) -> usize {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<A: LinOp + ?Sized> LinOp for CountingOp<'_, A> {
    fn dim_out(&self) -> usize {
        self.inner.dim_out()
    }
    fn dim_in(&self) -> usize {
        self.inner.dim_in()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.apply(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::c64;

    #[test]
    fn identity_and_diagonal() {
        let x = vec![c64(1.0, 2.0), c64(-3.0, 0.5)];
        let mut y = vec![C64::ZERO; 2];
        IdentityOp(2).apply(&x, &mut y);
        assert_eq!(x, y);
        let d = DiagonalOp(vec![c64(2.0, 0.0), c64(0.0, 1.0)]);
        d.apply(&x, &mut y);
        assert_eq!(y[0], c64(2.0, 4.0));
        assert_eq!(y[1], c64(-0.5, -3.0));
    }

    #[test]
    fn fn_op_and_counting() {
        let op = FnOp::new(2, 2, |x: &[C64], y: &mut [C64]| {
            y[0] = x[1];
            y[1] = x[0];
        });
        let counted = CountingOp::new(&op);
        let x = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let mut y = vec![C64::ZERO; 2];
        counted.apply(&x, &mut y);
        counted.apply(&x, &mut y);
        assert_eq!(counted.count(), 2);
        assert_eq!(y[0], x[1]);
    }
}
