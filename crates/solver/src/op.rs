//! Abstract linear operators.
//!
//! Everything the Krylov solvers touch is a [`LinOp`]: the MLFMA engine, the
//! dense reference operators, the scattering system `A = I - G0 diag(O)` and
//! its adjoint, and the Fréchet derivative of the inverse problem.

use ffw_numerics::linalg::Matrix;
use ffw_numerics::C64;

/// A linear operator `y = A x` over complex vectors.
pub trait LinOp: Sync {
    /// Output dimension (rows).
    fn dim_out(&self) -> usize;
    /// Input dimension (columns).
    fn dim_in(&self) -> usize;
    /// Computes `y = A x` (overwrites `y`).
    fn apply(&self, x: &[C64], y: &mut [C64]);
}

impl LinOp for Matrix {
    fn dim_out(&self) -> usize {
        self.rows()
    }
    fn dim_in(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.matvec(x, y);
    }
}

/// A linear operator that can apply itself to a block of `B` right-hand
/// sides in one pass: `ys[b] = A xs[b]` for every column `b`.
///
/// The default implementation loops the single-RHS [`LinOp::apply`] over the
/// columns, which is *bit-identical* to `B` scalar applies — so any operator
/// gets block semantics for free and fused implementations (the MLFMA
/// engine's single-traversal panel path) are a pure optimization. Fused
/// overrides must keep each column's arithmetic independent: the batched
/// Krylov solvers rely on per-column results matching the single-RHS path.
pub trait BlockLinOp: LinOp {
    /// Computes `ys[b] = A xs[b]` for all columns (overwrites `ys`).
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        assert_eq!(xs.len(), ys.len(), "block width mismatch");
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            self.apply(x, y);
        }
    }
}

impl BlockLinOp for Matrix {}

/// The identity operator.
pub struct IdentityOp(pub usize);

impl LinOp for IdentityOp {
    fn dim_out(&self) -> usize {
        self.0
    }
    fn dim_in(&self) -> usize {
        self.0
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        y.copy_from_slice(x);
    }
}

impl BlockLinOp for IdentityOp {}

/// A diagonal operator `y = diag(d) x`.
pub struct DiagonalOp(pub Vec<C64>);

impl LinOp for DiagonalOp {
    fn dim_out(&self) -> usize {
        self.0.len()
    }
    fn dim_in(&self) -> usize {
        self.0.len()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        for ((yi, xi), di) in y.iter_mut().zip(x).zip(&self.0) {
            *yi = *xi * *di;
        }
    }
}

impl BlockLinOp for DiagonalOp {}

/// A closure-backed operator, handy for composing pipelines without new types.
pub struct FnOp<F: Fn(&[C64], &mut [C64]) + Sync> {
    dim_out: usize,
    dim_in: usize,
    f: F,
}

impl<F: Fn(&[C64], &mut [C64]) + Sync> FnOp<F> {
    /// Wraps a closure as an operator with the given dimensions.
    pub fn new(dim_out: usize, dim_in: usize, f: F) -> Self {
        FnOp { dim_out, dim_in, f }
    }
}

impl<F: Fn(&[C64], &mut [C64]) + Sync> LinOp for FnOp<F> {
    fn dim_out(&self) -> usize {
        self.dim_out
    }
    fn dim_in(&self) -> usize {
        self.dim_in
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        (self.f)(x, y);
    }
}

impl<F: Fn(&[C64], &mut [C64]) + Sync> BlockLinOp for FnOp<F> {}

/// Counts applications of an inner operator (used to measure "MLFMA
/// multiplications per forward solution", the paper's Fig. 13 statistic).
pub struct CountingOp<'a, A: LinOp + ?Sized> {
    inner: &'a A,
    count: std::sync::atomic::AtomicUsize,
}

impl<'a, A: LinOp + ?Sized> CountingOp<'a, A> {
    /// Wraps `inner`.
    pub fn new(inner: &'a A) -> Self {
        CountingOp {
            inner,
            count: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of `apply` calls so far.
    pub fn count(&self) -> usize {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<A: LinOp + ?Sized> LinOp for CountingOp<'_, A> {
    fn dim_out(&self) -> usize {
        self.inner.dim_out()
    }
    fn dim_in(&self) -> usize {
        self.inner.dim_in()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.apply(x, y);
    }
}

impl<A: BlockLinOp + ?Sized> BlockLinOp for CountingOp<'_, A> {
    /// A fused block apply counts as one application *per column* so the
    /// "MLFMA multiplications per forward solution" statistic stays
    /// comparable between the batched and single-RHS paths.
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        self.count
            .fetch_add(xs.len(), std::sync::atomic::Ordering::Relaxed);
        self.inner.apply_block(xs, ys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::c64;

    #[test]
    fn identity_and_diagonal() {
        let x = vec![c64(1.0, 2.0), c64(-3.0, 0.5)];
        let mut y = vec![C64::ZERO; 2];
        IdentityOp(2).apply(&x, &mut y);
        assert_eq!(x, y);
        let d = DiagonalOp(vec![c64(2.0, 0.0), c64(0.0, 1.0)]);
        d.apply(&x, &mut y);
        assert_eq!(y[0], c64(2.0, 4.0));
        assert_eq!(y[1], c64(-0.5, -3.0));
    }

    #[test]
    fn fn_op_and_counting() {
        let op = FnOp::new(2, 2, |x: &[C64], y: &mut [C64]| {
            y[0] = x[1];
            y[1] = x[0];
        });
        let counted = CountingOp::new(&op);
        let x = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let mut y = vec![C64::ZERO; 2];
        counted.apply(&x, &mut y);
        counted.apply(&x, &mut y);
        assert_eq!(counted.count(), 2);
        assert_eq!(y[0], x[1]);
    }

    #[test]
    fn default_block_apply_matches_column_loop_exactly() {
        let a = Matrix::from_fn(3, 3, |r, c| c64((r * 3 + c) as f64 * 0.3, 0.1 * c as f64));
        let x1 = vec![c64(1.0, 2.0), c64(-0.5, 0.0), c64(0.2, -0.7)];
        let x2 = vec![c64(0.0, 1.0), c64(3.0, -2.0), c64(-1.1, 0.4)];
        let mut ys = vec![vec![C64::ZERO; 3]; 2];
        a.apply_block(&[&x1, &x2], &mut ys);
        let mut y1 = vec![C64::ZERO; 3];
        let mut y2 = vec![C64::ZERO; 3];
        a.apply(&x1, &mut y1);
        a.apply(&x2, &mut y2);
        assert_eq!(ys[0], y1);
        assert_eq!(ys[1], y2);
    }

    #[test]
    fn counting_op_counts_block_columns() {
        let a = Matrix::from_fn(2, 2, |r, c| c64((r + c) as f64, 0.0));
        let counted = CountingOp::new(&a);
        let x1 = vec![c64(1.0, 0.0); 2];
        let x2 = vec![c64(0.0, 1.0); 2];
        let x3 = vec![c64(2.0, 2.0); 2];
        let mut ys = vec![vec![C64::ZERO; 2]; 3];
        counted.apply_block(&[&x1, &x2, &x3], &mut ys);
        assert_eq!(counted.count(), 3, "one column-equivalent per RHS");
    }
}
