//! Compute-integrity layer: ABFT checksum verification of operator applies
//! and Krylov drift guards.
//!
//! A silent bit-flip inside an MLFMA apply or a Krylov update propagates
//! unchecked into the reconstruction — the one fault class the message-level
//! CRC/ABFT machinery of `ffw-mpi` cannot see, because the corruption happens
//! *between* the checked boundaries. This module closes that gap with the
//! classic Huang–Abraham algorithm-based fault-tolerance identity: for any
//! linear operator, `A (Σ_b x_b) = Σ_b (A x_b)` up to floating-point
//! rounding, so a *checksum column* (the sum of the panel's right-hand
//! sides) predicts the sum of the panel's outputs to a calibrated
//! rounding-level tolerance, and any corruption larger than that tolerance
//! breaks the identity.
//!
//! Two cooperating detectors implement the detect → recompute → escalate
//! ladder:
//!
//! * [`VerifiedBlockOp`] wraps any [`BlockLinOp`] and folds every panel of
//!   every `apply_block` call into a running checksum window. Every
//!   [`VerifyConfig::period`] panels (period 1 = per-panel, the textbook
//!   form) one extra checksum apply verifies the whole window elementwise.
//!   A mismatch inside the current panel is *recomputed* in place (bounded
//!   by the retry budget); a mismatch attributable to an already-consumed
//!   panel cannot be silently repaired and is *escalated* as a typed
//!   [`FaultError::ComputeCorruption`] for the caller (Krylov rollback, a
//!   DBIM pass retry, or the distributed restart path) to recover.
//! * [`DriftGuard`] audits the Krylov recurrences themselves: the solvers
//!   recompute the *true* residual `b - A x` every few iterations and treat
//!   recursive-vs-true divergence beyond tolerance as detected corruption,
//!   rolling back to the last verified iterate instead of silently
//!   converging to a wrong answer.
//!
//! The window form exists for performance: a fused width-`B` panel costs far
//! less than `B` single applies, so a per-panel ride-along checksum column
//! would cost `~1/B` of the panel *plus* the SIMD-remainder penalty of an
//! odd width — measured ~36% at `B = 8` on the pinned workload. Amortizing
//! one checksum apply over a `period`-panel window brings the measured
//! overhead under the 5% budget (`ffw-bench --bin sdc_overhead` gates this)
//! while still covering every column of every panel.

use crate::op::{BlockLinOp, LinOp};
use ffw_fault::{ComputeFault, FaultError, RetryPolicy};
use ffw_numerics::C64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default elementwise relative checksum tolerance.
///
/// The checksum identity holds to floating-point rounding (the operator is
/// applied exactly, linearity is exact in exact arithmetic), measured at
/// `<= 3e-13` of the accumulated elementwise scale across both MLFMA
/// accuracy settings on windows of 64 columns — so `1e-9` keeps more than
/// three orders of margin against false positives while still detecting any
/// flip that perturbs a lane by more than a part in `10^7` of its panel
/// scale (every exponent bit, and mantissa bits down to ~bit 30).
pub const DEFAULT_CHECKSUM_REL_TOL: f64 = 1e-9;

/// Default number of panels folded into one checksum verification.
///
/// One checksum apply costs roughly a third of a fused width-8 panel on the
/// pinned workload, so amortizing it over 16 panels keeps the steady-state
/// verification overhead near 2% — comfortably inside the 5% budget gated by
/// `ffw-bench --bin sdc_overhead`. Detection latency is bounded by the
/// window: corruption in a consumed panel is caught at most `period - 1`
/// panels later and escalated for rollback/retry recovery.
pub const DEFAULT_VERIFY_PERIOD: usize = 16;

/// Default relative recursive-vs-true residual divergence tolerated by
/// [`DriftGuard`] before an iterate is declared corrupted.
pub const DEFAULT_DRIFT_REL_TOL: f64 = 1e-8;

/// Default number of update steps between [`DriftGuard`] true-residual
/// audits.
pub const DEFAULT_DRIFT_PERIOD: usize = 8;

/// A deterministic fault hook: called once per logical panel with the
/// 1-based panel index, returns the fault (if any) scheduled for that panel.
///
/// `ffw-fault`'s `ActiveFaults::on_apply` advances its own per-rank counter,
/// so production injectors ignore the argument; unit tests key off it.
pub type ComputeInjector = Arc<dyn Fn(u64) -> Option<ComputeFault> + Send + Sync>;

/// Configuration for [`VerifiedBlockOp`].
#[derive(Clone)]
pub struct VerifyConfig {
    /// Elementwise relative checksum tolerance (scaled by the accumulated
    /// elementwise magnitudes, so the check is scale-invariant). Derive it
    /// from the MLFMA accuracy setting via `Accuracy::checksum_rel_tol()`.
    pub rel_tol: f64,
    /// Absolute floor added to the elementwise scale so exactly-zero windows
    /// cannot divide by zero.
    pub abs_floor: f64,
    /// Panels per checksum verification; `1` verifies (and can recompute)
    /// every panel before its outputs are released.
    pub period: usize,
    /// Recompute budget per verification (initial compute + this many
    /// recomputes before escalating).
    pub max_recomputes: u32,
    /// Stage label carried by escalated errors (e.g. `mlfma.apply_block`).
    pub stage: String,
    /// Rank carried by escalated errors (0 in serial runs).
    pub rank: usize,
    /// Deterministic fault hook applied to panel outputs before
    /// verification; `None` in production.
    pub injector: Option<ComputeInjector>,
}

impl std::fmt::Debug for VerifyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyConfig")
            .field("rel_tol", &self.rel_tol)
            .field("abs_floor", &self.abs_floor)
            .field("period", &self.period)
            .field("max_recomputes", &self.max_recomputes)
            .field("stage", &self.stage)
            .field("rank", &self.rank)
            .field("injector", &self.injector.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            rel_tol: DEFAULT_CHECKSUM_REL_TOL,
            abs_floor: 1e-300,
            period: DEFAULT_VERIFY_PERIOD,
            max_recomputes: RetryPolicy::default().max_retries,
            stage: "mlfma.apply_block".into(),
            rank: 0,
            injector: None,
        }
    }
}

impl VerifyConfig {
    /// A config with the given checksum tolerance and every other knob at
    /// its default.
    pub fn with_rel_tol(rel_tol: f64) -> Self {
        VerifyConfig {
            rel_tol,
            ..Self::default()
        }
    }

    /// Per-panel verification (period 1): every panel is checked — and can
    /// be recomputed bit-identically — before its outputs are released.
    pub fn immediate(mut self) -> Self {
        self.period = 1;
        self
    }
}

/// Running checksum window state (interior-mutable behind one mutex).
struct Window {
    /// Data panels folded into the pending window.
    panels: usize,
    /// Running checksum input: `Σ_panels Σ_b x_b`.
    x_cs: Vec<C64>,
    /// Running expected checksum output: `Σ_panels Σ_b y_b`.
    y_sum: Vec<C64>,
    /// Running elementwise magnitude scale: `Σ_panels Σ_b ‖y_b[i]‖₁`
    /// (1-norm `|re| + |im|` — within `√2` of the modulus and sqrt-free,
    /// since this accumulates on every lane of every panel).
    abs_acc: Vec<f64>,
}

impl Window {
    fn new(n: usize) -> Self {
        Window {
            panels: 0,
            x_cs: vec![C64::ZERO; n],
            y_sum: vec![C64::ZERO; n],
            abs_acc: vec![0.0; n],
        }
    }

    fn reset(&mut self) {
        self.panels = 0;
        self.x_cs.iter_mut().for_each(|v| *v = C64::ZERO);
        self.y_sum.iter_mut().for_each(|v| *v = C64::ZERO);
        self.abs_acc.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// ABFT checksum-verifying wrapper around a [`BlockLinOp`].
///
/// Data panels pass through the inner operator untouched (each column stays
/// bit-identical to an unwrapped apply); the wrapper folds every panel into
/// the running checksum window and verifies the window every
/// [`VerifyConfig::period`] panels with one extra checksum apply. Callers
/// that finish a logical unit of work (a DBIM pass, a distributed solve)
/// should call [`Self::flush`] so a partially-filled window is verified
/// before its outputs are trusted, and must poll [`Self::take_corruption`]
/// for escalated faults — [`LinOp::apply`] cannot return errors, so
/// escalation is a side channel by construction.
pub struct VerifiedBlockOp<'a, A: BlockLinOp + ?Sized> {
    inner: &'a A,
    cfg: VerifyConfig,
    window: Mutex<Window>,
    /// Total logical data panels seen (1-based index of the latest panel).
    panel_index: AtomicU64,
    /// Checksum mismatches observed.
    detected: AtomicU64,
    /// Mismatches repaired by recomputing the pending panel in place.
    recomputed: AtomicU64,
    /// Mismatches that exhausted the recompute budget and were escalated.
    escalated: AtomicU64,
    /// Escalated typed error awaiting pickup by the caller.
    corruption: Mutex<Option<FaultError>>,
    /// An injected fault that landed on an all-zero panel output (nothing
    /// detectable to corrupt), deferred to the next nonzero panel.
    deferred_fault: Mutex<Option<ComputeFault>>,
}

impl<'a, A: BlockLinOp + ?Sized> VerifiedBlockOp<'a, A> {
    /// Wraps `inner` with the given verification config.
    pub fn new(inner: &'a A, cfg: VerifyConfig) -> Self {
        let n = inner.dim_out();
        assert_eq!(
            inner.dim_in(),
            n,
            "checksum columns need a square operator (dim_in == dim_out)"
        );
        assert!(cfg.period >= 1, "verification period must be >= 1");
        VerifiedBlockOp {
            inner,
            cfg,
            window: Mutex::new(Window::new(n)),
            panel_index: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            recomputed: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            corruption: Mutex::new(None),
            deferred_fault: Mutex::new(None),
        }
    }

    /// Checksum mismatches observed so far.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::SeqCst)
    }

    /// Mismatches repaired by in-place panel recomputation.
    pub fn recomputed(&self) -> u64 {
        self.recomputed.load(Ordering::SeqCst)
    }

    /// Mismatches escalated as typed errors.
    pub fn escalated(&self) -> u64 {
        self.escalated.load(Ordering::SeqCst)
    }

    /// Takes the pending escalated error, if any. After an escalation the
    /// window restarts clean, so a caller that recovers (rolls back or
    /// retries a pass) can keep using the wrapper.
    pub fn take_corruption(&self) -> Option<FaultError> {
        self.corruption.lock().unwrap().take()
    }

    /// True if an escalated error is pending.
    pub fn is_tainted(&self) -> bool {
        self.corruption.lock().unwrap().is_some()
    }

    /// Verifies a partially-filled window (one checksum apply, bounded
    /// recomputes of the checksum apply itself). Call at the end of a
    /// logical unit of work, before trusting its outputs.
    ///
    /// An `Err` here means corruption landed in a panel that has already
    /// been consumed: the caller must recover (rollback / pass retry /
    /// restart) — the same error is also left in [`Self::take_corruption`]
    /// unless the caller takes it from the returned value.
    pub fn flush(&self) -> Result<(), FaultError> {
        let mut w = self.window.lock().unwrap();
        if w.panels == 0 {
            return self.pending_or_ok();
        }
        let panel = self.panel_index.load(Ordering::SeqCst);
        let outcome = self.verify_window(&mut w, panel, None);
        drop(w);
        match outcome {
            WindowOutcome::Clean | WindowOutcome::Recovered => self.pending_or_ok(),
            WindowOutcome::Escalated(e) => Err(e),
        }
    }

    fn pending_or_ok(&self) -> Result<(), FaultError> {
        match &*self.corruption.lock().unwrap() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Runs the checksum apply for the pending window and compares. When the
    /// current panel is still in hand (`pending` is `Some`), a mismatch
    /// recomputes that panel too; otherwise only the checksum apply itself
    /// can be recomputed and a persistent mismatch escalates.
    fn verify_window(
        &self,
        w: &mut Window,
        panel: u64,
        mut pending: Option<PendingPanel<'_, '_>>,
    ) -> WindowOutcome {
        let n = w.y_sum.len();
        let mut y_cs = vec![C64::ZERO; n];
        let mut repaired = false;
        let attempts = self.cfg.max_recomputes + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Recompute whatever is still in hand: always the checksum
                // apply, plus the pending data panel when there is one.
                if let Some(p) = pending.as_mut() {
                    p.recompute(self.inner, attempt, w);
                }
            }
            self.inner.apply(&w.x_cs, &mut y_cs);
            match checksum_mismatch(&y_cs, &w.y_sum, &w.abs_acc, &self.cfg) {
                None => {
                    if attempt > 0 {
                        repaired = true;
                        self.recomputed.fetch_add(1, Ordering::SeqCst);
                        ffw_obs::counter("sdc.recomputed").inc();
                        ffw_obs::event(
                            "sdc.recomputed",
                            &format!(
                                "{} panel #{panel} verified after {attempt} recompute(s)",
                                self.cfg.stage
                            ),
                        );
                    }
                    w.reset();
                    return if repaired {
                        WindowOutcome::Recovered
                    } else {
                        WindowOutcome::Clean
                    };
                }
                Some((i, d)) => {
                    self.detected.fetch_add(1, Ordering::SeqCst);
                    ffw_obs::counter("sdc.detected").inc();
                    ffw_obs::event(
                        "sdc.detected",
                        &format!(
                            "{} panel #{panel}: checksum residual {d:.3e} at element {i} \
                             (attempt {})",
                            self.cfg.stage,
                            attempt + 1
                        ),
                    );
                }
            }
        }
        // Recompute budget exhausted: the corruption is outside what we can
        // recompute (an already-consumed panel, or it keeps reappearing).
        // Escalate and restart the window clean so the caller's recovery
        // (rollback / pass retry / restart) can proceed.
        w.reset();
        let err = FaultError::ComputeCorruption {
            rank: self.cfg.rank,
            stage: self.cfg.stage.clone(),
            panel,
            attempts,
        };
        self.escalated.fetch_add(1, Ordering::SeqCst);
        ffw_obs::counter("sdc.escalated").inc();
        ffw_obs::event("sdc.escalated", &err.to_string());
        *self.corruption.lock().unwrap() = Some(err.clone());
        WindowOutcome::Escalated(err)
    }
}

/// Outcome of one window verification.
enum WindowOutcome {
    Clean,
    Recovered,
    Escalated(FaultError),
}

/// The panel still in hand during `apply_block`, recomputable in place.
struct PendingPanel<'x, 'y> {
    xs: &'x [&'x [C64]],
    ys: &'y mut [Vec<C64>],
    fault: Option<ComputeFault>,
    /// Window sums *before* this panel was folded in, so a recompute can
    /// re-fold cleanly.
    y_sum_before: Vec<C64>,
    abs_before: Vec<f64>,
}

impl PendingPanel<'_, '_> {
    /// Re-applies the panel (the injector corrupts the first
    /// `fault.times` attempts, so attempt `times` onward is clean), then
    /// re-folds its contribution into the window sums.
    fn recompute<A: BlockLinOp + ?Sized>(&mut self, inner: &A, attempt: u32, w: &mut Window) {
        inner.apply_block(self.xs, self.ys);
        if let Some(f) = self.fault {
            if attempt < f.times {
                // The fault only reached this panel because its output is
                // nonzero, and recomputed outputs are bit-identical, so the
                // probe lands on the same lane every attempt.
                flip_panel_bit_detectable(self.ys, f.slot, f.bit);
            }
        }
        w.y_sum.copy_from_slice(&self.y_sum_before);
        w.abs_acc.copy_from_slice(&self.abs_before);
        fold_outputs(self.ys, &mut w.y_sum, &mut w.abs_acc);
    }
}

/// Folds a panel's outputs into the running expected-sum and scale vectors.
fn fold_outputs(ys: &[Vec<C64>], y_sum: &mut [C64], abs_acc: &mut [f64]) {
    for y in ys {
        for (i, v) in y.iter().enumerate() {
            y_sum[i] += *v;
            abs_acc[i] += v.re.abs() + v.im.abs();
        }
    }
}

/// Elementwise checksum check: returns the first failing element and its
/// residual, or `None` if the window verifies. Non-finite residuals fail
/// explicitly (`NaN > tol` is false, so the comparison alone cannot be
/// trusted to catch them).
fn checksum_mismatch(
    y_cs: &[C64],
    y_sum: &[C64],
    abs_acc: &[f64],
    cfg: &VerifyConfig,
) -> Option<(usize, f64)> {
    for i in 0..y_cs.len() {
        let d = (y_cs[i] - y_sum[i]).abs();
        let scale = cfg.abs_floor + y_cs[i].re.abs() + y_cs[i].im.abs() + abs_acc[i];
        if !d.is_finite() || d > cfg.rel_tol * scale {
            return Some((i, d));
        }
    }
    None
}

/// Flips one bit of one `f64` lane in a panel of outputs.
///
/// Lanes are numbered column-major: lane `l = slot mod (width * n * 2)`
/// addresses column `l / (2n)`, element `(l mod 2n) / 2`, and the real
/// (even) or imaginary (odd) component. `bit` is taken mod 64: bits 0–51
/// are mantissa, 52–62 exponent, 63 the sign.
pub fn flip_panel_bit(ys: &mut [Vec<C64>], slot: u64, bit: u32) {
    let width = ys.len();
    if width == 0 {
        return;
    }
    let n = ys[0].len();
    let lanes = (width * n * 2) as u64;
    let lane = (slot % lanes) as usize;
    let col = lane / (2 * n);
    let rem = lane % (2 * n);
    let idx = rem / 2;
    let mask = 1u64 << (bit % 64);
    let v = &mut ys[col][idx];
    if rem.is_multiple_of(2) {
        v.re = f64::from_bits(v.re.to_bits() ^ mask);
    } else {
        v.im = f64::from_bits(v.im.to_bits() ^ mask);
    }
}

/// Like [`flip_panel_bit`], but probes forward (wrapping) from the lane
/// addressed by `slot` to the first lane whose magnitude is within a factor
/// of 100 of the panel's largest component, and flips that lane instead.
///
/// A bit flip in a lane that is many orders of magnitude below the panel's
/// scale perturbs the checksum by less than the calibrated tolerance — it
/// is *undetectable by construction*, and by the same rounding argument it
/// is harmless. The seeded fault matrix exists to prove the detect →
/// recompute → escalate ladder end to end, so its injections must land
/// where the contract applies: on lanes whose corruption matters. With the
/// magnitude floor, any scheduled flip (mantissa bit ≥ ~36, or any exponent
/// bit) perturbs the lane by at least `~1e-7` of the panel scale — two
/// orders above the worst calibrated tolerance. Probing is deterministic in
/// the panel contents, and recomputed panels are bit-identical, so repeated
/// injections of the same fault hit the same lane.
///
/// Returns `false` — flipping nothing — when the panel's output is entirely
/// zero: no lane of an all-zero panel can carry a detectable flip (the
/// injected denormal is absorbed below one ulp of any consumer), so the
/// caller defers the fault to the next panel instead.
pub fn flip_panel_bit_detectable(ys: &mut [Vec<C64>], slot: u64, bit: u32) -> bool {
    let width = ys.len();
    if width == 0 {
        return false;
    }
    let n = ys[0].len();
    let lanes = (width * n * 2) as u64;
    let comp = |ys: &[Vec<C64>], lane: usize| -> f64 {
        let col = lane / (2 * n);
        let rem = lane % (2 * n);
        let v = ys[col][rem / 2];
        if rem.is_multiple_of(2) {
            v.re.abs()
        } else {
            v.im.abs()
        }
    };
    let mut vmax = 0.0f64;
    for lane in 0..lanes as usize {
        vmax = vmax.max(comp(ys, lane));
    }
    if vmax == 0.0 {
        return false;
    }
    let start = slot % lanes;
    let mut lane = start;
    let floor = vmax * 1e-2;
    for k in 0..lanes {
        let cand = (start + k) % lanes;
        if comp(ys, cand as usize) >= floor {
            lane = cand;
            break;
        }
    }
    flip_panel_bit(ys, lane, bit);
    true
}

impl<A: BlockLinOp + ?Sized> LinOp for VerifiedBlockOp<'_, A> {
    fn dim_out(&self) -> usize {
        self.inner.dim_out()
    }
    fn dim_in(&self) -> usize {
        self.inner.dim_in()
    }
    /// A scalar apply is a width-1 panel: it flows through the same checksum
    /// window (and the same injection/recompute machinery) as block applies.
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        let mut ys = vec![vec![C64::ZERO; y.len()]];
        self.apply_block(&[x], &mut ys);
        y.copy_from_slice(&ys[0]);
    }
}

impl<A: BlockLinOp + ?Sized> BlockLinOp for VerifiedBlockOp<'_, A> {
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        if xs.is_empty() {
            return;
        }
        let panel = self.panel_index.fetch_add(1, Ordering::SeqCst) + 1;
        let mut fault = self
            .deferred_fault
            .lock()
            .unwrap()
            .take()
            .or_else(|| self.cfg.injector.as_ref().and_then(|f| f(panel)));

        self.inner.apply_block(xs, ys);
        if let Some(f) = fault {
            if !flip_panel_bit_detectable(ys, f.slot, f.bit) {
                // All-zero panel output: nothing detectable to corrupt.
                // Defer the fault so this seed still exercises the ladder.
                *self.deferred_fault.lock().unwrap() = Some(f);
                fault = None;
            }
        }

        let mut guard = self.window.lock().unwrap();
        let w = &mut *guard;
        // The pre-fold snapshot is only needed when this call reaches the
        // window boundary (a recompute must be able to re-fold the pending
        // panel cleanly) — interior panels skip the two O(n) clones.
        let boundary = w.panels + 1 >= self.cfg.period;
        let before = boundary.then(|| (w.y_sum.clone(), w.abs_acc.clone()));
        for x in xs {
            for (acc, v) in w.x_cs.iter_mut().zip(x.iter()) {
                *acc += *v;
            }
        }
        fold_outputs(ys, &mut w.y_sum, &mut w.abs_acc);
        w.panels += 1;

        if let Some((y_sum_before, abs_before)) = before {
            let pending = PendingPanel {
                xs,
                ys,
                fault,
                y_sum_before,
                abs_before,
            };
            self.verify_window(w, panel, Some(pending));
        }
    }
}

/// Krylov drift guard: bounded rollback-and-replay recovery driven by
/// periodic true-residual audits inside the iterative solvers.
///
/// The guarded solver entry points snapshot their full recurrence state at
/// every passed audit; when the recursive residual diverges from the true
/// residual `b - A x` by more than `rel_tol` (relative to `‖b‖`), the
/// solver restores the last verified snapshot and replays. Transient
/// corruption replays clean; deterministic corruption re-detects and is
/// bounded by `max_rollbacks`, after which the guard escalates and the
/// solve is surfaced unconverged instead of silently wrong.
#[derive(Debug)]
pub struct DriftGuard {
    /// Update steps between true-residual audits.
    pub period: usize,
    /// Tolerated recursive-vs-true relative divergence.
    pub rel_tol: f64,
    /// Rollbacks allowed per solve column before escalating.
    pub max_rollbacks: u32,
    detected: AtomicU64,
    rolled_back: AtomicU64,
    escalated: AtomicU64,
}

impl Default for DriftGuard {
    fn default() -> Self {
        DriftGuard::new(DEFAULT_DRIFT_PERIOD, DEFAULT_DRIFT_REL_TOL, 2)
    }
}

impl DriftGuard {
    /// A guard auditing every `period` steps at tolerance `rel_tol`,
    /// escalating after `max_rollbacks` rollbacks of the same column.
    pub fn new(period: usize, rel_tol: f64, max_rollbacks: u32) -> Self {
        assert!(period >= 1, "drift audit period must be >= 1");
        DriftGuard {
            period,
            rel_tol,
            max_rollbacks,
            detected: AtomicU64::new(0),
            rolled_back: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
        }
    }

    /// Drift detections so far.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::SeqCst)
    }

    /// Update steps discarded by rollbacks so far.
    pub fn rolled_back(&self) -> u64 {
        self.rolled_back.load(Ordering::SeqCst)
    }

    /// Columns whose rollback budget was exhausted.
    pub fn escalated(&self) -> u64 {
        self.escalated.load(Ordering::SeqCst)
    }

    pub(crate) fn record_detected(&self) {
        self.detected.fetch_add(1, Ordering::SeqCst);
        ffw_obs::counter("sdc.detected").inc();
        ffw_obs::event("sdc.detected", "krylov.drift: recursive residual diverged");
    }

    pub(crate) fn record_rollback(&self, steps: u64) {
        self.rolled_back.fetch_add(steps, Ordering::SeqCst);
        ffw_obs::counter("sdc.recomputed").inc();
        ffw_obs::event(
            "sdc.recomputed",
            &format!("krylov.drift: rolled back {steps} step(s) to last verified iterate"),
        );
    }

    pub(crate) fn record_escalated(&self) {
        self.escalated.fetch_add(1, Ordering::SeqCst);
        ffw_obs::counter("sdc.escalated").inc();
        ffw_obs::event(
            "sdc.escalated",
            "krylov.drift: rollback budget exhausted; surfacing unconverged",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::FnOp;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::{c64, C64};
    use std::sync::atomic::AtomicU64;

    fn test_matrix(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            let d = if r == c { 2.5 } else { 0.0 };
            c64(
                d + 0.3 / (1.0 + (r as f64 - c as f64).abs()),
                0.1 / (1.0 + (r + c) as f64),
            )
        })
    }

    fn test_panel(n: usize, width: usize, seed: u64) -> Vec<Vec<C64>> {
        let mut s = seed;
        (0..width)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                        c64(a, b)
                    })
                    .collect()
            })
            .collect()
    }

    fn injector_at(panel: u64, fault: ComputeFault) -> ComputeInjector {
        Arc::new(move |p| if p == panel { Some(fault) } else { None })
    }

    #[test]
    fn clean_panels_pass_through_bit_identically() {
        let a = test_matrix(12);
        let v = VerifiedBlockOp::new(&a, VerifyConfig::default());
        let xs = test_panel(12, 4, 7);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; 12]; 4];
        let mut want = vec![vec![C64::ZERO; 12]; 4];
        v.apply_block(&refs, &mut ys);
        a.apply_block(&refs, &mut want);
        assert_eq!(ys, want, "verification must not perturb data columns");
        assert!(v.flush().is_ok());
        assert_eq!(v.detected(), 0);
        assert_eq!(v.escalated(), 0);
    }

    #[test]
    fn scalar_apply_flows_through_the_window() {
        let a = test_matrix(9);
        let v = VerifiedBlockOp::new(&a, VerifyConfig::default().immediate());
        let x = test_panel(9, 1, 3).pop().unwrap();
        let mut y = vec![C64::ZERO; 9];
        let mut want = vec![C64::ZERO; 9];
        v.apply(&x, &mut y);
        a.apply(&x, &mut want);
        assert_eq!(y, want);
        assert!(v.flush().is_ok());
    }

    #[test]
    fn immediate_mode_recomputes_a_transient_flip_bit_identically() {
        let a = test_matrix(16);
        let mut cfg = VerifyConfig::default().immediate();
        cfg.injector = Some(injector_at(
            2,
            ComputeFault {
                slot: 11,
                bit: 55,
                times: 1,
            },
        ));
        let v = VerifiedBlockOp::new(&a, cfg);
        let xs = test_panel(16, 3, 21);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; 16]; 3];
        let mut want = vec![vec![C64::ZERO; 16]; 3];
        a.apply_block(&refs, &mut want);

        v.apply_block(&refs, &mut ys); // panel 1: clean
        assert_eq!(ys, want);
        v.apply_block(&refs, &mut ys); // panel 2: flipped once, recomputed
        assert_eq!(ys, want, "recovered panel must be bit-identical");
        assert_eq!(v.detected(), 1);
        assert_eq!(v.recomputed(), 1);
        assert_eq!(v.escalated(), 0);
        assert!(v.take_corruption().is_none());
    }

    #[test]
    fn persistent_flip_escalates_a_typed_error() {
        let a = test_matrix(10);
        let mut cfg = VerifyConfig::default().immediate();
        let budget = cfg.max_recomputes;
        cfg.injector = Some(injector_at(
            1,
            ComputeFault {
                slot: 4,
                bit: 60,
                times: budget + 1, // survives every recompute
            },
        ));
        cfg.stage = "test.apply".into();
        cfg.rank = 3;
        let v = VerifiedBlockOp::new(&a, cfg);
        let xs = test_panel(10, 2, 5);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; 10]; 2];
        v.apply_block(&refs, &mut ys);
        assert_eq!(v.escalated(), 1);
        match v.take_corruption() {
            Some(FaultError::ComputeCorruption {
                rank,
                stage,
                panel,
                attempts,
            }) => {
                assert_eq!(rank, 3);
                assert_eq!(stage, "test.apply");
                assert_eq!(panel, 1);
                assert_eq!(attempts, budget + 1);
            }
            other => panic!("expected ComputeCorruption, got {other:?}"),
        }
        // After escalation the window restarts clean.
        v.apply_block(&refs, &mut ys);
        assert!(v.flush().is_ok());
    }

    #[test]
    fn windowed_flip_in_a_consumed_panel_is_detected_and_escalated() {
        let a = test_matrix(14);
        let mut cfg = VerifyConfig {
            period: 4,
            ..VerifyConfig::default()
        };
        // Corrupt panel 2; detection can only happen at the window boundary
        // (panel 4), by which point panel 2's outputs are long consumed.
        cfg.injector = Some(injector_at(
            2,
            ComputeFault {
                slot: 3,
                bit: 53,
                times: 1,
            },
        ));
        let v = VerifiedBlockOp::new(&a, cfg);
        let xs = test_panel(14, 2, 9);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; 14]; 2];
        for _ in 0..4 {
            v.apply_block(&refs, &mut ys);
        }
        assert!(v.detected() >= 1, "boundary check must notice the flip");
        assert_eq!(v.escalated(), 1, "consumed panels cannot be recomputed");
        assert!(matches!(
            v.take_corruption(),
            Some(FaultError::ComputeCorruption { panel: 4, .. })
        ));
    }

    #[test]
    fn flush_verifies_a_partial_window() {
        let a = test_matrix(8);
        let mut cfg = VerifyConfig {
            period: 100, // never reached by panel count
            ..VerifyConfig::default()
        };
        cfg.injector = Some(injector_at(
            1,
            ComputeFault {
                slot: 0,
                bit: 58,
                times: u32::MAX, // persists through flush's recomputes
            },
        ));
        let v = VerifiedBlockOp::new(&a, cfg);
        let xs = test_panel(8, 2, 13);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; 8]; 2];
        v.apply_block(&refs, &mut ys);
        assert_eq!(v.detected(), 0, "no boundary hit yet");
        let err = v.flush().unwrap_err();
        assert!(matches!(err, FaultError::ComputeCorruption { .. }));
    }

    #[test]
    fn mantissa_and_exponent_flips_are_both_detected_at_period_one() {
        let a = test_matrix(12);
        for bit in [36, 44, 51, 52, 56, 62] {
            let mut cfg = VerifyConfig::default().immediate();
            cfg.injector = Some(injector_at(
                1,
                ComputeFault {
                    slot: 17,
                    bit,
                    times: 1,
                },
            ));
            let v = VerifiedBlockOp::new(&a, cfg);
            let xs = test_panel(12, 4, 31);
            let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
            let mut ys = vec![vec![C64::ZERO; 12]; 4];
            v.apply_block(&refs, &mut ys);
            assert_eq!(v.detected(), 1, "bit {bit} must be detected");
            assert_eq!(v.recomputed(), 1, "bit {bit} must be recovered");
        }
    }

    #[test]
    fn nan_poisoned_panel_is_detected_not_compared_through() {
        // A lane forced to NaN makes the checksum residual NaN; the explicit
        // finite check must catch it even though `NaN > tol` is false.
        let n = 6;
        let calls = AtomicU64::new(0);
        let poison = FnOp::new(n, n, move |x: &[C64], y: &mut [C64]| {
            let c = calls.fetch_add(1, Ordering::SeqCst);
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = *xi * c64(2.0, 0.0);
            }
            if c == 0 {
                y[3] = c64(f64::NAN, 0.0); // only the first apply is poisoned
            }
        });
        let v = VerifiedBlockOp::new(&poison, VerifyConfig::default().immediate());
        let xs = test_panel(n, 1, 77);
        let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut ys = vec![vec![C64::ZERO; n]; 1];
        v.apply_block(&refs, &mut ys);
        assert_eq!(v.detected(), 1);
        assert!(ys[0].iter().all(|v| v.re.is_finite() && v.im.is_finite()));
    }

    #[test]
    fn flip_panel_bit_addresses_lanes_column_major() {
        let mut ys = vec![vec![C64::ZERO; 3]; 2];
        // lane 7 = col 1 (7 / 6), rem 1 -> element 0, imaginary part
        flip_panel_bit(&mut ys, 7, 52);
        assert_eq!(ys[0], vec![C64::ZERO; 3]);
        assert_eq!(ys[1][0].re, 0.0);
        assert_eq!(ys[1][0].im.to_bits(), 1u64 << 52);
        // flipping the same lane again restores it
        flip_panel_bit(&mut ys, 7, 52);
        assert_eq!(ys[1][0], C64::ZERO);
    }

    #[test]
    fn detectable_flip_probes_past_negligible_lanes() {
        // Lane 0 (ys[0][0].re) is ~12 orders below the panel scale: a
        // mantissa flip there would be invisible to the checksum, so the
        // probing injector must walk forward to the first lane that
        // matters. Lane 3 (ys[0][1].im) is the first within the floor.
        let mut ys = vec![vec![c64(1e-12, 0.0), c64(0.0, 2.0), c64(5.0, -1.0)]];
        let mut want = ys.clone();
        flip_panel_bit_detectable(&mut ys, 0, 52);
        flip_panel_bit(&mut want, 3, 52);
        assert_eq!(ys, want, "probe must land on the first significant lane");
        // A slot already on a significant lane is used as addressed.
        let mut ys = vec![vec![c64(1.0, 2.0), c64(3.0, 4.0)]];
        let mut want = ys.clone();
        flip_panel_bit_detectable(&mut ys, 2, 40);
        flip_panel_bit(&mut want, 2, 40);
        assert_eq!(ys, want);
        // An all-zero panel carries no detectable lane: the probe declines
        // to flip (the caller defers the fault to the next panel).
        let mut ys = vec![vec![C64::ZERO; 4]];
        assert!(!flip_panel_bit_detectable(&mut ys, 5, 60));
        assert_eq!(ys, vec![vec![C64::ZERO; 4]]);
    }

    #[test]
    fn drift_guard_counts_and_defaults() {
        let g = DriftGuard::default();
        assert_eq!(g.period, DEFAULT_DRIFT_PERIOD);
        assert_eq!(g.max_rollbacks, 2);
        g.record_detected();
        g.record_rollback(3);
        g.record_escalated();
        assert_eq!(g.detected(), 1);
        assert_eq!(g.rolled_back(), 3);
        assert_eq!(g.escalated(), 1);
    }
}
