//! The forward-scattering system and its adjoint.
//!
//! Discretized volume integral equation (paper Eq. 3):
//! `phi = [I - G0 diag(O)]^{-1} phi_inc`, i.e. the system
//! `A phi = phi_inc` with `A = I - G0 diag(O)`.
//!
//! The adjoint system `A^H z = rhs` is needed for the DBIM gradient
//! (`grad = F^H b`, Section VI-B). Because `G0` is *complex symmetric*
//! (`G0^T = G0`, a property of the reciprocal Green's function), its
//! Hermitian transpose is its conjugate: `G0^H x = conj(G0 conj(x))` — so the
//! same MLFMA engine serves both systems without any new operators.

use crate::block::bicgstab_block;
use crate::krylov::{bicgstab, IterConfig, SolveStats};
use crate::op::{BlockLinOp, LinOp};
use ffw_numerics::C64;

/// `A = I - G0 diag(O)`: the forward-scattering operator.
pub struct ScatteringOp<'a, G: LinOp + ?Sized> {
    g0: &'a G,
    object: &'a [C64],
}

impl<'a, G: LinOp + ?Sized> ScatteringOp<'a, G> {
    /// Builds the operator for the object contrast function `O` (tree order).
    pub fn new(g0: &'a G, object: &'a [C64]) -> Self {
        assert_eq!(g0.dim_in(), object.len());
        assert_eq!(g0.dim_out(), object.len());
        ScatteringOp { g0, object }
    }
}

impl<G: LinOp + ?Sized> LinOp for ScatteringOp<'_, G> {
    fn dim_out(&self) -> usize {
        self.object.len()
    }
    fn dim_in(&self) -> usize {
        self.object.len()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        let n = x.len();
        let mut ox = vec![C64::ZERO; n];
        for ((o, xi), oi) in ox.iter_mut().zip(x).zip(self.object) {
            *o = *xi * *oi;
        }
        self.g0.apply(&ox, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = *xi - *yi;
        }
    }
}

impl<G: BlockLinOp + ?Sized> BlockLinOp for ScatteringOp<'_, G> {
    /// Column-wise identical to [`LinOp::apply`]; the `G0` product is fused.
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        assert_eq!(xs.len(), ys.len(), "block width mismatch");
        let oxs: Vec<Vec<C64>> = xs
            .iter()
            .map(|x| {
                x.iter()
                    .zip(self.object)
                    .map(|(xi, oi)| *xi * *oi)
                    .collect()
            })
            .collect();
        let ox_refs: Vec<&[C64]> = oxs.iter().map(|v| v.as_slice()).collect();
        self.g0.apply_block(&ox_refs, ys);
        for (y, x) in ys.iter_mut().zip(xs) {
            for (yi, xi) in y.iter_mut().zip(*x) {
                *yi = *xi - *yi;
            }
        }
    }
}

/// `A^H = I - diag(conj(O)) G0^H`, realized via the conjugation trick.
pub struct AdjointScatteringOp<'a, G: LinOp + ?Sized> {
    g0: &'a G,
    object: &'a [C64],
}

impl<'a, G: LinOp + ?Sized> AdjointScatteringOp<'a, G> {
    /// Builds the adjoint operator.
    pub fn new(g0: &'a G, object: &'a [C64]) -> Self {
        assert_eq!(g0.dim_in(), object.len());
        AdjointScatteringOp { g0, object }
    }
}

impl<G: LinOp + ?Sized> LinOp for AdjointScatteringOp<'_, G> {
    fn dim_out(&self) -> usize {
        self.object.len()
    }
    fn dim_in(&self) -> usize {
        self.object.len()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        // G0^H x = conj(G0 conj(x))
        let xc: Vec<C64> = x.iter().map(|v| v.conj()).collect();
        self.g0.apply(&xc, y);
        for ((yi, xi), oi) in y.iter_mut().zip(x).zip(self.object) {
            *yi = *xi - oi.conj() * yi.conj();
        }
    }
}

impl<G: BlockLinOp + ?Sized> BlockLinOp for AdjointScatteringOp<'_, G> {
    /// Column-wise identical to [`LinOp::apply`]; the `G0` product is fused.
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        assert_eq!(xs.len(), ys.len(), "block width mismatch");
        let xcs: Vec<Vec<C64>> = xs
            .iter()
            .map(|x| x.iter().map(|v| v.conj()).collect())
            .collect();
        let xc_refs: Vec<&[C64]> = xcs.iter().map(|v| v.as_slice()).collect();
        self.g0.apply_block(&xc_refs, ys);
        for (y, x) in ys.iter_mut().zip(xs) {
            for ((yi, xi), oi) in y.iter_mut().zip(*x).zip(self.object) {
                *yi = *xi - oi.conj() * yi.conj();
            }
        }
    }
}

/// Applies `G0^H x` using a symmetric `G0` (conjugation trick), standalone.
pub fn g0_adjoint_apply<G: LinOp + ?Sized>(g0: &G, x: &[C64], y: &mut [C64]) {
    let xc: Vec<C64> = x.iter().map(|v| v.conj()).collect();
    g0.apply(&xc, y);
    for v in y.iter_mut() {
        *v = v.conj();
    }
}

/// Block form of [`g0_adjoint_apply`]: `ys[b] = G0^H xs[b]` fused into one
/// block apply of the symmetric `G0`.
pub fn g0_adjoint_apply_block<G: BlockLinOp + ?Sized>(g0: &G, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
    let xcs: Vec<Vec<C64>> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.conj()).collect())
        .collect();
    let xc_refs: Vec<&[C64]> = xcs.iter().map(|v| v.as_slice()).collect();
    g0.apply_block(&xc_refs, ys);
    for y in ys.iter_mut() {
        for v in y.iter_mut() {
            *v = v.conj();
        }
    }
}

/// Solves the forward problem `[I - G0 diag(O)] phi = phi_inc` with BiCGStab.
/// `phi` should carry the initial guess (zero, or a previous field for warm
/// starts); it is overwritten with the solution.
pub fn solve_forward<G: LinOp + ?Sized>(
    g0: &G,
    object: &[C64],
    phi_inc: &[C64],
    phi: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    let a = ScatteringOp::new(g0, object);
    bicgstab(&a, phi_inc, phi, cfg)
}

/// Solves the adjoint problem `A^H z = rhs`.
pub fn solve_adjoint<G: LinOp + ?Sized>(
    g0: &G,
    object: &[C64],
    rhs: &[C64],
    z: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    let a = AdjointScatteringOp::new(g0, object);
    bicgstab(&a, rhs, z, cfg)
}

/// Batched forward solve: all transmitter systems share the same scattering
/// operator and iterate in lockstep (one fused `G0` block apply per Krylov
/// step). `phis[b]` carries each column's initial guess and is overwritten.
pub fn solve_forward_block<G: BlockLinOp + ?Sized>(
    g0: &G,
    object: &[C64],
    phi_incs: &[&[C64]],
    phis: &mut [Vec<C64>],
    cfg: IterConfig,
) -> Vec<SolveStats> {
    let a = ScatteringOp::new(g0, object);
    bicgstab_block(&a, phi_incs, phis, cfg)
}

/// Batched adjoint solve `A^H zs[b] = rhss[b]`, lockstep across columns.
pub fn solve_adjoint_block<G: BlockLinOp + ?Sized>(
    g0: &G,
    object: &[C64],
    rhss: &[&[C64]],
    zs: &mut [Vec<C64>],
    cfg: IterConfig,
) -> Vec<SolveStats> {
    let a = AdjointScatteringOp::new(g0, object);
    bicgstab_block(&a, rhss, zs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::c64;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::vecops::{rel_diff, zdotc};

    /// A small random complex-symmetric "G0" stand-in.
    fn symmetric_g0(n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0.2 * (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5)
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let v = c64(next(), next());
                *m.at_mut(r, c) = v;
                *m.at_mut(c, r) = v;
            }
        }
        m
    }

    fn random_vec(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    #[test]
    fn scattering_op_matches_assembled_matrix() {
        let n = 24;
        let g0 = symmetric_g0(n, 1);
        let o = random_vec(n, 2);
        let a_op = ScatteringOp::new(&g0, &o);
        // assemble I - G0 diag(O)
        let assembled = Matrix::from_fn(n, n, |r, c| {
            let v = -(g0.at(r, c) * o[c]);
            if r == c {
                v + C64::ONE
            } else {
                v
            }
        });
        let x = random_vec(n, 3);
        let mut y1 = vec![C64::ZERO; n];
        let mut y2 = vec![C64::ZERO; n];
        a_op.apply(&x, &mut y1);
        assembled.matvec(&x, &mut y2);
        assert!(rel_diff(&y1, &y2) < 1e-13);
    }

    #[test]
    fn adjoint_satisfies_inner_product_identity() {
        let n = 20;
        let g0 = symmetric_g0(n, 5);
        let o = random_vec(n, 6);
        let a = ScatteringOp::new(&g0, &o);
        let ah = AdjointScatteringOp::new(&g0, &o);
        let x = random_vec(n, 7);
        let y = random_vec(n, 8);
        let mut ax = vec![C64::ZERO; n];
        let mut ahy = vec![C64::ZERO; n];
        a.apply(&x, &mut ax);
        ah.apply(&y, &mut ahy);
        let lhs = zdotc(&ax, &y);
        let rhs = zdotc(&x, &ahy);
        assert!(
            (lhs - rhs).abs() < 1e-12 * lhs.abs().max(1.0),
            "{lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn forward_solve_recovers_field() {
        let n = 24;
        let g0 = symmetric_g0(n, 9);
        let o: Vec<C64> = random_vec(n, 10).iter().map(|v| *v * 0.5).collect();
        let phi_true = random_vec(n, 11);
        // phi_inc = A phi_true
        let a = ScatteringOp::new(&g0, &o);
        let mut phi_inc = vec![C64::ZERO; n];
        a.apply(&phi_true, &mut phi_inc);
        let mut phi = vec![C64::ZERO; n];
        let stats = solve_forward(
            &g0,
            &o,
            &phi_inc,
            &mut phi,
            IterConfig {
                tol: 1e-11,
                max_iters: 500,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(rel_diff(&phi, &phi_true) < 1e-9);
    }

    #[test]
    fn zero_object_forward_solution_is_incident_field() {
        // With O = 0 the system is the identity: phi = phi_inc in 0 iterations.
        let n = 16;
        let g0 = symmetric_g0(n, 20);
        let o = vec![C64::ZERO; n];
        let phi_inc = random_vec(n, 21);
        let mut phi = vec![C64::ZERO; n];
        let stats = solve_forward(&g0, &o, &phi_inc, &mut phi, IterConfig::default());
        assert!(stats.converged);
        assert!(rel_diff(&phi, &phi_inc) < 1e-10);
        assert!(stats.iterations <= 1);
    }

    #[test]
    fn g0_adjoint_apply_is_hermitian_transpose() {
        let n = 15;
        let g0 = symmetric_g0(n, 30);
        let x = random_vec(n, 31);
        let mut y = vec![C64::ZERO; n];
        g0_adjoint_apply(&g0, &x, &mut y);
        let gh = g0.adjoint();
        let mut y2 = vec![C64::ZERO; n];
        gh.matvec(&x, &mut y2);
        assert!(rel_diff(&y, &y2) < 1e-13);
    }
}
