//! Batched BiCGStab: `B` independent systems sharing one operator, iterated
//! in lockstep so every operator application is a fused block apply.
//!
//! The paper's first parallel dimension is independent illuminations; this
//! solver is how the serial code exploits it. All `B` transmitter systems
//! share `A = I - G0 diag(O)`, so each Krylov step needs the *same* operator
//! applied to `B` different vectors — exactly what
//! [`BlockLinOp::apply_block`] fuses into one tree traversal.
//!
//! Numerics contract: each column runs the *identical* floating-point
//! recurrence as the scalar [`crate::bicgstab`] — per-column scalars, per
//! column inner products, same branch structure — so a column's trajectory
//! (iterates, residuals, iteration count) is bit-identical to solving it
//! alone, provided the operator's `apply_block` is column-wise identical to
//! `apply` (true for the default loop implementation and for the MLFMA
//! engine's fused panel path). Convergence masking: a column that converges
//! (or breaks down) *freezes* — its iterate is never touched again and it is
//! excluded from subsequent block applies — while the remaining columns keep
//! iterating until all are done.

use crate::krylov::{finite_c, BreakdownKind, IterConfig, SolveError, SolveStats};
use crate::op::BlockLinOp;
use crate::verify::DriftGuard;
use ffw_numerics::vecops::{axpy, norm2, zdotc};
use ffw_numerics::C64;

/// Applies `a` to the selected columns of `input`, writing the matching
/// columns of `output`, via one fused block apply.
pub(crate) fn apply_cols<A: BlockLinOp + ?Sized>(
    a: &A,
    cols: &[usize],
    input: &[Vec<C64>],
    output: &mut [Vec<C64>],
) {
    if cols.is_empty() {
        return;
    }
    let xs: Vec<&[C64]> = cols.iter().map(|&c| input[c].as_slice()).collect();
    let mut ys: Vec<Vec<C64>> = cols
        .iter()
        .map(|&c| std::mem::take(&mut output[c]))
        .collect();
    a.apply_block(&xs, &mut ys);
    for (&c, y) in cols.iter().zip(ys) {
        output[c] = y;
    }
}

/// A per-column recurrence snapshot taken at a passed drift audit. Every
/// snapshot is a *top-of-loop* state (the next action is the rho inner
/// product), so a rolled-back column resumes the lockstep loop directly.
struct ColSnap {
    x: Vec<C64>,
    r: Vec<C64>,
    p: Vec<C64>,
    v: Vec<C64>,
    rho: C64,
    alpha: C64,
    omega: C64,
    res: f64,
    iters: usize,
    matvecs: usize,
}

/// `‖r_rec - (b - A x)‖ / ‖b‖`: how far the recursive residual has drifted
/// from the truth. One extra operator apply (charged to `verify_matvecs`).
pub(crate) fn residual_drift<A: BlockLinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &[C64],
    r_rec: &[C64],
    b_norm: f64,
) -> f64 {
    let n = b.len();
    let mut r_true = vec![C64::ZERO; n];
    a.apply(x, &mut r_true);
    let mut diff2 = 0.0f64;
    for i in 0..n {
        let d = r_rec[i] - (b[i] - r_true[i]);
        diff2 += d.norm_sqr();
    }
    diff2.sqrt() / b_norm
}

/// Restores column `c` to its last verified snapshot after a failed audit.
/// Applies spent on the discarded segment move from `matvecs` to
/// `verify_matvecs`; the discarded steps are counted in `rolled`. Returns
/// `true` if the column may replay (rollback budget left), `false` if the
/// guard escalated (caller freezes the column unconverged at the restored —
/// last verified — iterate).
#[allow(clippy::too_many_arguments)]
fn guard_recover(
    g: &DriftGuard,
    c: usize,
    snap: &ColSnap,
    x: &mut [C64],
    r: &mut [C64],
    p: &mut [C64],
    v: &mut [C64],
    rho: &mut C64,
    alpha: &mut C64,
    omega: &mut C64,
    res: &mut f64,
    iters: &mut usize,
    matvecs: &mut usize,
    verify_mv: &mut usize,
    rolled: &mut usize,
    rollbacks: &mut u32,
) -> bool {
    g.record_detected();
    let steps = *iters - snap.iters;
    *verify_mv += *matvecs - snap.matvecs;
    *rolled += steps;
    x.copy_from_slice(&snap.x);
    r.copy_from_slice(&snap.r);
    p.copy_from_slice(&snap.p);
    v.copy_from_slice(&snap.v);
    *rho = snap.rho;
    *alpha = snap.alpha;
    *omega = snap.omega;
    *res = snap.res;
    *iters = snap.iters;
    *matvecs = snap.matvecs;
    if *rollbacks < g.max_rollbacks {
        *rollbacks += 1;
        g.record_rollback(steps as u64);
        true
    } else {
        g.record_escalated();
        ffw_obs::event(
            "solver.breakdown",
            &format!(
                "bicgstab_block column {c}: residual drift persisted through \
                 {rollbacks} rollback(s); surfacing unconverged"
            ),
        );
        false
    }
}

/// Solves `A xs[c] = bs[c]` for all `B` columns with lockstep BiCGStab and
/// per-column convergence masking. Each `xs[c]` carries its initial guess
/// (zero, or a warm start) and is overwritten with that column's solution.
///
/// Per-column semantics match the scalar [`crate::bicgstab`] exactly: a
/// breakdown (rho underflow, NaN/Inf iterate) freezes *only* that column,
/// which reports honest unconverged [`SolveStats`] with its iterate left at
/// the last finite value; sibling columns are unaffected and keep iterating.
pub fn bicgstab_block<A: BlockLinOp + ?Sized>(
    a: &A,
    bs: &[&[C64]],
    xs: &mut [Vec<C64>],
    cfg: IterConfig,
) -> Vec<SolveStats> {
    bicgstab_block_impl(a, bs, xs, cfg, None)
}

/// [`bicgstab_block`] with a [`DriftGuard`] auditing every column: the true
/// residual `b - A x` is recomputed every [`DriftGuard::period`] update
/// steps *and* at every would-be convergence, and recursive-vs-true
/// divergence beyond [`DriftGuard::rel_tol`] rolls the column back to its
/// last verified snapshot and replays. Transient corruption replays clean
/// (the final iterate is bit-identical to an uncorrupted solve);
/// deterministic corruption re-detects until [`DriftGuard::max_rollbacks`]
/// is exhausted, at which point the guard escalates
/// (`guard.escalated() > 0`) and the column is surfaced unconverged at its
/// last verified iterate — never silently converged.
///
/// On a clean run the audits touch no recurrence state, so every column's
/// trajectory — iterates, residuals, `iterations`, `matvecs` — is
/// bit-identical to the unguarded solve; the audit applies are reported in
/// `verify_matvecs`.
pub fn bicgstab_block_guarded<A: BlockLinOp + ?Sized>(
    a: &A,
    bs: &[&[C64]],
    xs: &mut [Vec<C64>],
    cfg: IterConfig,
    guard: &DriftGuard,
) -> Vec<SolveStats> {
    bicgstab_block_impl(a, bs, xs, cfg, Some(guard))
}

/// Scalar guarded BiCGStab: a width-1 [`bicgstab_block_guarded`] (the block
/// solver's columns are bit-identical to scalar solves), with drift
/// escalation surfaced as a typed [`SolveError::Breakdown`] of kind
/// [`BreakdownKind::Drift`] instead of a counter the caller must poll.
pub fn bicgstab_guarded<A: BlockLinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    guard: &DriftGuard,
) -> Result<SolveStats, SolveError> {
    let escalated_before = guard.escalated();
    let mut xs = vec![x.to_vec()];
    let stats = bicgstab_block_impl(a, &[b], &mut xs, cfg, Some(guard))
        .pop()
        .expect("one column");
    x.copy_from_slice(&xs[0]);
    if guard.escalated() > escalated_before {
        return Err(SolveError::Breakdown {
            kind: BreakdownKind::Drift,
            iterations: stats.iterations,
            matvecs: stats.matvecs,
            rel_residual: stats.rel_residual,
            restarts: guard.max_rollbacks,
        });
    }
    Ok(stats)
}

fn bicgstab_block_impl<A: BlockLinOp + ?Sized>(
    a: &A,
    bs: &[&[C64]],
    xs: &mut [Vec<C64>],
    cfg: IterConfig,
    guard: Option<&DriftGuard>,
) -> Vec<SolveStats> {
    let nb = bs.len();
    assert_eq!(xs.len(), nb, "solution block width mismatch");
    if nb == 0 {
        return Vec::new();
    }
    let n = a.dim_in();
    assert_eq!(a.dim_out(), n);
    for (b, x) in bs.iter().zip(xs.iter()) {
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
    }
    let _span = ffw_obs::span("solver.bicgstab");
    if ffw_obs::enabled() {
        ffw_obs::histogram("solver.bicgstab.panel_width").record(nb as u64);
    }

    let mut stats: Vec<Option<SolveStats>> = vec![None; nb];
    let mut b_norm = vec![0.0f64; nb];
    let mut iters = vec![0usize; nb];
    let mut matvecs = vec![0usize; nb];
    let mut res = vec![0.0f64; nb];
    let mut rho = vec![C64::ONE; nb];
    let mut alpha = vec![C64::ONE; nb];
    let mut omega = vec![C64::ONE; nb];
    let mut rho_new = vec![C64::ZERO; nb];
    let mut r: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut r_hat: Vec<Vec<C64>> = vec![Vec::new(); nb];
    let mut v: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut p: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut s: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut t: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut x_prev = vec![C64::ZERO; n];

    // Drift-guard bookkeeping (all zeros / unused when `guard` is None).
    let mut verify_mv = vec![0usize; nb];
    let mut rolled = vec![0usize; nb];
    let mut rollbacks = vec![0u32; nb];
    let mut snaps: Vec<Option<ColSnap>> = (0..nb).map(|_| None).collect();

    let freeze_breakdown = |c: usize,
                            kind: BreakdownKind,
                            iters: usize,
                            matvecs: usize,
                            verify_matvecs: usize,
                            rolled_back: usize,
                            last_res: f64|
     -> SolveStats {
        ffw_obs::event(
            "solver.breakdown",
            &format!("bicgstab_block column {c}: {kind} at iter {iters}"),
        );
        SolveStats {
            verify_matvecs,
            rolled_back,
            iterations: iters,
            matvecs,
            rel_residual: last_res,
            converged: false,
        }
    };

    // Zero right-hand sides are solved exactly by x = 0 (scalar semantics).
    let mut live: Vec<usize> = Vec::with_capacity(nb);
    for c in 0..nb {
        b_norm[c] = norm2(bs[c]);
        if b_norm[c] == 0.0 {
            xs[c].iter_mut().for_each(|v| *v = C64::ZERO);
            stats[c] = Some(SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: 0,
                rel_residual: 0.0,
                converged: true,
            });
        } else {
            live.push(c);
        }
    }

    // Fresh residuals r = b - A x, one fused apply over all live columns.
    apply_cols(a, &live, xs, &mut r);
    let mut active: Vec<usize> = Vec::with_capacity(live.len());
    for &c in &live {
        matvecs[c] += 1;
        for i in 0..n {
            r[c][i] = bs[c][i] - r[c][i];
        }
        r_hat[c] = r[c].clone();
        res[c] = norm2(&r[c]) / b_norm[c];
        if !res[c].is_finite() {
            stats[c] = Some(freeze_breakdown(
                c,
                BreakdownKind::NonFinite,
                0,
                matvecs[c],
                0,
                0,
                f64::NAN,
            ));
            continue;
        }
        ffw_obs::series_push("solver.bicgstab.residual", res[c]);
        if res[c] < cfg.tol {
            stats[c] = Some(SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: matvecs[c],
                rel_residual: res[c],
                converged: true,
            });
            continue;
        }
        if guard.is_some() {
            // Baseline snapshot: the fresh residual *is* the true residual,
            // so the cycle-start state is verified by construction and is
            // the rollback target until the first periodic audit passes.
            snaps[c] = Some(ColSnap {
                x: xs[c].clone(),
                r: r[c].clone(),
                p: p[c].clone(),
                v: v[c].clone(),
                rho: rho[c],
                alpha: alpha[c],
                omega: omega[c],
                res: res[c],
                iters: iters[c],
                matvecs: matvecs[c],
            });
        }
        active.push(c);
    }

    while !active.is_empty() {
        // Columns rolled back mid-pass re-enter the lockstep loop here.
        let mut resumed: Vec<usize> = Vec::new();
        // Budget + rho checks; columns freezing here skip the fused applies.
        let mut after_rho = Vec::with_capacity(active.len());
        for &c in &active {
            if iters[c] >= cfg.max_iters {
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res[c],
                    converged: false,
                });
                continue;
            }
            let rn = zdotc(&r_hat[c], &r[c]);
            if !finite_c(rn) {
                stats[c] = Some(freeze_breakdown(
                    c,
                    BreakdownKind::NonFinite,
                    iters[c],
                    matvecs[c],
                    verify_mv[c],
                    rolled[c],
                    res[c],
                ));
                continue;
            }
            if rn.abs() < 1e-300 {
                stats[c] = Some(freeze_breakdown(
                    c,
                    BreakdownKind::RhoZero,
                    iters[c],
                    matvecs[c],
                    verify_mv[c],
                    rolled[c],
                    res[c],
                ));
                continue;
            }
            rho_new[c] = rn;
            iters[c] += 1;
            let beta = (rn / rho[c]) * (alpha[c] / omega[c]);
            for i in 0..n {
                p[c][i] = r[c][i] + beta * (p[c][i] - omega[c] * v[c][i]);
            }
            after_rho.push(c);
        }
        active = after_rho;

        // v = A p, fused.
        apply_cols(a, &active, &p, &mut v);
        let mut after_s = Vec::with_capacity(active.len());
        for &c in &active {
            matvecs[c] += 1;
            alpha[c] = rho_new[c] / zdotc(&r_hat[c], &v[c]);
            for i in 0..n {
                s[c][i] = r[c][i] - alpha[c] * v[c][i];
            }
            let s_norm = norm2(&s[c]) / b_norm[c];
            if s_norm < cfg.tol {
                axpy(alpha[c], &p[c], &mut xs[c]);
                if let Some(g) = guard {
                    // Audit the would-be convergence: the recursive residual
                    // here is `s` and the candidate iterate is x + alpha p.
                    verify_mv[c] += 1;
                    let drift = residual_drift(a, bs[c], &xs[c], &s[c], b_norm[c]);
                    if !(drift.is_finite() && drift <= g.rel_tol) {
                        let snap = snaps[c].as_ref().expect("guarded columns have a snapshot");
                        if guard_recover(
                            g,
                            c,
                            snap,
                            &mut xs[c],
                            &mut r[c],
                            &mut p[c],
                            &mut v[c],
                            &mut rho[c],
                            &mut alpha[c],
                            &mut omega[c],
                            &mut res[c],
                            &mut iters[c],
                            &mut matvecs[c],
                            &mut verify_mv[c],
                            &mut rolled[c],
                            &mut rollbacks[c],
                        ) {
                            resumed.push(c);
                        } else {
                            stats[c] = Some(SolveStats {
                                verify_matvecs: verify_mv[c],
                                rolled_back: rolled[c],
                                iterations: iters[c],
                                matvecs: matvecs[c],
                                rel_residual: res[c],
                                converged: false,
                            });
                        }
                        continue;
                    }
                }
                ffw_obs::series_push("solver.bicgstab.residual", s_norm);
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: s_norm,
                    converged: true,
                });
                continue;
            }
            after_s.push(c);
        }
        active = after_s;

        // t = A s, fused.
        apply_cols(a, &active, &s, &mut t);
        let mut after_update = Vec::with_capacity(active.len());
        for &c in &active {
            matvecs[c] += 1;
            let tt = zdotc(&t[c], &t[c]);
            omega[c] = zdotc(&t[c], &s[c]) / tt;
            // Snapshot x first so a non-finite update rolls back instead of
            // poisoning the iterate (same contract as the scalar cycle).
            x_prev.copy_from_slice(&xs[c]);
            for i in 0..n {
                xs[c][i] += alpha[c] * p[c][i] + omega[c] * s[c][i];
                r[c][i] = s[c][i] - omega[c] * t[c][i];
            }
            let res_new = norm2(&r[c]) / b_norm[c];
            if !res_new.is_finite() {
                // The rolled-back iterate does not contain this step's
                // update, so the step is not counted (`SolveStats` contract:
                // iterations = update steps reflected in the iterate).
                xs[c].copy_from_slice(&x_prev);
                iters[c] -= 1;
                stats[c] = Some(freeze_breakdown(
                    c,
                    BreakdownKind::NonFinite,
                    iters[c],
                    matvecs[c],
                    verify_mv[c],
                    rolled[c],
                    res[c],
                ));
                continue;
            }
            res[c] = res_new;
            ffw_obs::series_push("solver.bicgstab.residual", res_new);
            if res_new < cfg.tol {
                if let Some(g) = guard {
                    verify_mv[c] += 1;
                    let drift = residual_drift(a, bs[c], &xs[c], &r[c], b_norm[c]);
                    if !(drift.is_finite() && drift <= g.rel_tol) {
                        let snap = snaps[c].as_ref().expect("guarded columns have a snapshot");
                        if guard_recover(
                            g,
                            c,
                            snap,
                            &mut xs[c],
                            &mut r[c],
                            &mut p[c],
                            &mut v[c],
                            &mut rho[c],
                            &mut alpha[c],
                            &mut omega[c],
                            &mut res[c],
                            &mut iters[c],
                            &mut matvecs[c],
                            &mut verify_mv[c],
                            &mut rolled[c],
                            &mut rollbacks[c],
                        ) {
                            resumed.push(c);
                        } else {
                            stats[c] = Some(SolveStats {
                                verify_matvecs: verify_mv[c],
                                rolled_back: rolled[c],
                                iterations: iters[c],
                                matvecs: matvecs[c],
                                rel_residual: res[c],
                                converged: false,
                            });
                        }
                        continue;
                    }
                }
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res_new,
                    converged: true,
                });
                continue;
            }
            rho[c] = rho_new[c];
            if let Some(g) = guard {
                if iters[c].is_multiple_of(g.period) {
                    // Periodic audit at a top-of-loop state: pass refreshes
                    // the rollback snapshot, failure rolls back (or, with
                    // the budget exhausted, escalates and freezes).
                    verify_mv[c] += 1;
                    let drift = residual_drift(a, bs[c], &xs[c], &r[c], b_norm[c]);
                    if drift.is_finite() && drift <= g.rel_tol {
                        snaps[c] = Some(ColSnap {
                            x: xs[c].clone(),
                            r: r[c].clone(),
                            p: p[c].clone(),
                            v: v[c].clone(),
                            rho: rho[c],
                            alpha: alpha[c],
                            omega: omega[c],
                            res: res[c],
                            iters: iters[c],
                            matvecs: matvecs[c],
                        });
                    } else {
                        let snap = snaps[c].as_ref().expect("guarded columns have a snapshot");
                        if guard_recover(
                            g,
                            c,
                            snap,
                            &mut xs[c],
                            &mut r[c],
                            &mut p[c],
                            &mut v[c],
                            &mut rho[c],
                            &mut alpha[c],
                            &mut omega[c],
                            &mut res[c],
                            &mut iters[c],
                            &mut matvecs[c],
                            &mut verify_mv[c],
                            &mut rolled[c],
                            &mut rollbacks[c],
                        ) {
                            resumed.push(c);
                        } else {
                            stats[c] = Some(SolveStats {
                                verify_matvecs: verify_mv[c],
                                rolled_back: rolled[c],
                                iterations: iters[c],
                                matvecs: matvecs[c],
                                rel_residual: res[c],
                                converged: false,
                            });
                        }
                        continue;
                    }
                }
            }
            after_update.push(c);
        }
        active = after_update;
        if !resumed.is_empty() {
            active.extend(resumed);
            active.sort_unstable();
        }
    }

    let out: Vec<SolveStats> = stats
        .into_iter()
        .map(|s| s.expect("every column finalized"))
        .collect();
    if ffw_obs::enabled() {
        for st in &out {
            ffw_obs::counter("solver.bicgstab.solves").inc();
            ffw_obs::counter("solver.bicgstab.iters").add(st.iterations as u64);
            ffw_obs::counter("solver.bicgstab.matvecs").add(st.matvecs as u64);
            ffw_obs::histogram("solver.bicgstab.iters_per_solve").record(st.iterations as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::bicgstab;
    use crate::op::DiagonalOp;
    use ffw_numerics::c64;
    use ffw_numerics::linalg::Matrix;

    fn random_mat(n: usize, seed: u64, diag_boost: f64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |r, c| {
            let mut v = c64(next(), next());
            if r == c {
                v += diag_boost;
            }
            v
        })
    }

    fn random_vec(n: usize, seed: u64) -> Vec<C64> {
        let m = random_mat(n, seed, 0.0);
        (0..n).map(|i| m.at(0, i)).collect()
    }

    #[test]
    fn width_one_is_bit_identical_to_scalar_path() {
        let n = 48;
        let a = random_mat(n, 3, 7.0);
        let b = random_vec(n, 11);
        let cfg = IterConfig {
            tol: 1e-9,
            max_iters: 300,
        };
        let mut x_scalar = vec![C64::ZERO; n];
        let scalar = bicgstab(&a, &b, &mut x_scalar, cfg);
        let mut xs = vec![vec![C64::ZERO; n]];
        let block = bicgstab_block(&a, &[&b], &mut xs, cfg);
        assert_eq!(block.len(), 1);
        assert_eq!(block[0], scalar);
        assert_eq!(xs[0], x_scalar, "B=1 iterates must match bit-for-bit");
    }

    #[test]
    fn breakdown_iteration_count_reproduces_the_returned_iterate() {
        // Same SolveStats contract as the scalar path: a phase-3 rollback
        // must not be counted, so a clean width-1 replay capped at the
        // reported `iterations` lands on the identical iterate.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 24;
        let m = random_mat(n, 77, 6.0);
        let b = random_vec(n, 79);
        let calls = AtomicUsize::new(0);
        let poisoned = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            // Applies 1..=5 healthy; apply 6 (the `A p` of iteration 3)
            // poisons the step with NaN, forcing the phase-3 rollback.
            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= 6 {
                out.iter_mut().for_each(|o| *o = c64(f64::NAN, f64::NAN));
            } else {
                use crate::op::LinOp;
                m.apply(v, out);
            }
        });
        let cfg = IterConfig {
            tol: 1e-14,
            max_iters: 50,
        };
        let mut xs = vec![vec![C64::ZERO; n]];
        let stats = bicgstab_block(&poisoned, &[&b], &mut xs, cfg);
        assert!(!stats[0].converged);
        assert_eq!(stats[0].iterations, 2, "rolled-back step must not count");

        let mut xs_replay = vec![vec![C64::ZERO; n]];
        let replay = bicgstab_block(
            &m,
            &[&b],
            &mut xs_replay,
            IterConfig {
                tol: 1e-14,
                max_iters: stats[0].iterations,
            },
        );
        assert_eq!(replay[0].iterations, stats[0].iterations);
        assert_eq!(xs_replay[0], xs[0], "replay at the reported count differs");
    }

    #[test]
    fn every_column_matches_its_own_scalar_solve() {
        let n = 40;
        let a = random_mat(n, 5, 8.0);
        let cfg = IterConfig {
            tol: 1e-8,
            max_iters: 200,
        };
        let bs: Vec<Vec<C64>> = (0..5).map(|i| random_vec(n, 100 + i)).collect();
        let b_refs: Vec<&[C64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut xs = vec![vec![C64::ZERO; n]; 5];
        let block = bicgstab_block(&a, &b_refs, &mut xs, cfg);
        for (c, b) in bs.iter().enumerate() {
            let mut x_scalar = vec![C64::ZERO; n];
            let scalar = bicgstab(&a, b, &mut x_scalar, cfg);
            assert_eq!(block[c], scalar, "column {c} stats");
            assert_eq!(xs[c], x_scalar, "column {c} iterate");
        }
    }

    #[test]
    fn frozen_column_is_never_updated() {
        // One easy RHS (exact solution as the initial guess: converges at
        // iteration 0 and freezes immediately) alongside one hard RHS that
        // needs real iterations. The frozen column's iterate must come out
        // bit-identical to the value it froze at.
        let n = 32;
        let a = random_mat(n, 9, 6.0);
        let cfg = IterConfig {
            tol: 1e-8,
            max_iters: 200,
        };
        let x_true = random_vec(n, 21);
        let mut b_easy = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b_easy);
        let b_hard = random_vec(n, 23);
        let mut xs = vec![x_true.clone(), vec![C64::ZERO; n]];
        let stats = bicgstab_block(&a, &[&b_easy, &b_hard], &mut xs, cfg);
        assert!(stats[0].converged);
        assert_eq!(stats[0].iterations, 0, "easy column converges up front");
        assert_eq!(xs[0], x_true, "frozen column must not be touched");
        assert!(stats[1].converged, "{:?}", stats[1]);
        assert!(stats[1].iterations > 0, "hard column actually iterated");
    }

    #[test]
    fn breakdown_in_one_column_does_not_poison_siblings() {
        // diag(0, 2, 3, ...) is singular in its first coordinate only: a RHS
        // supported there breaks down (alpha divides by zero), while a RHS in
        // the operator's range solves fine. The sibling must match its scalar
        // solve bit-for-bit and the broken column must stay finite.
        let n = 12;
        let mut d = vec![C64::ZERO; n];
        for (i, v) in d.iter_mut().enumerate().skip(1) {
            *v = c64(1.0 + i as f64, 0.0);
        }
        let a = DiagonalOp(d.clone());
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 50,
        };
        let mut b_bad = vec![C64::ZERO; n];
        b_bad[0] = c64(1.0, 0.5);
        let mut b_good = vec![C64::ZERO; n];
        for (i, v) in b_good.iter_mut().enumerate().skip(1) {
            *v = c64(0.3 * i as f64, -0.1);
        }
        let mut xs = vec![vec![C64::ZERO; n], vec![C64::ZERO; n]];
        let stats = bicgstab_block(&a, &[&b_bad, &b_good], &mut xs, cfg);
        assert!(!stats[0].converged, "{:?}", stats[0]);
        assert!(
            xs[0].iter().all(|v| v.re.is_finite() && v.im.is_finite()),
            "broken column's iterate must be rolled back to a finite value"
        );
        let mut x_scalar = vec![C64::ZERO; n];
        let scalar = bicgstab(&a, &b_good, &mut x_scalar, cfg);
        assert_eq!(stats[1], scalar, "sibling stats unaffected by breakdown");
        assert_eq!(xs[1], x_scalar, "sibling iterate unaffected by breakdown");
    }

    #[test]
    fn zero_rhs_column_short_circuits() {
        let n = 10;
        let a = random_mat(n, 13, 5.0);
        let b_zero = vec![C64::ZERO; n];
        let b_live = random_vec(n, 17);
        let mut xs = vec![random_vec(n, 19), vec![C64::ZERO; n]];
        let stats = bicgstab_block(&a, &[&b_zero, &b_live], &mut xs, IterConfig::default());
        assert!(stats[0].converged);
        assert_eq!(stats[0].iterations, 0);
        assert_eq!(stats[0].matvecs, 0);
        assert!(xs[0].iter().all(|v| v.abs() == 0.0));
        assert!(stats[1].converged);
    }

    #[test]
    fn empty_block_is_a_noop() {
        let a = random_mat(4, 1, 5.0);
        let stats = bicgstab_block(&a, &[], &mut [], IterConfig::default());
        assert!(stats.is_empty());
    }

    #[test]
    fn guarded_clean_run_is_bit_identical_and_audited() {
        // Audits read state but never write it, so a corruption-free guarded
        // solve must reproduce the unguarded trajectory exactly — same
        // iterate bits, same per-column iteration/matvec counts — while
        // charging its audit applies to `verify_matvecs`.
        let n = 40;
        let a = random_mat(n, 101, 7.0);
        let bs: Vec<Vec<C64>> = (0..3).map(|i| random_vec(n, 110 + i)).collect();
        let b_refs: Vec<&[C64]> = bs.iter().map(|b| b.as_slice()).collect();
        let cfg = IterConfig {
            tol: 1e-9,
            max_iters: 300,
        };
        let mut xs_plain = vec![vec![C64::ZERO; n]; 3];
        let plain = bicgstab_block(&a, &b_refs, &mut xs_plain, cfg);
        let guard = DriftGuard::new(4, 1e-8, 2);
        let mut xs_guarded = vec![vec![C64::ZERO; n]; 3];
        let guarded = bicgstab_block_guarded(&a, &b_refs, &mut xs_guarded, cfg, &guard);
        assert_eq!(guard.detected(), 0, "clean run must not trip the guard");
        for c in 0..3 {
            assert_eq!(xs_guarded[c], xs_plain[c], "column {c} iterate");
            assert_eq!(guarded[c].iterations, plain[c].iterations);
            assert_eq!(guarded[c].matvecs, plain[c].matvecs, "column {c}");
            assert_eq!(guarded[c].rel_residual, plain[c].rel_residual);
            assert!(guarded[c].converged);
            assert!(guarded[c].verify_matvecs > 0, "column {c} was audited");
            assert_eq!(guarded[c].rolled_back, 0);
        }
    }

    #[test]
    fn transient_corruption_rolls_back_to_a_bit_identical_solve() {
        // One operator apply returns a wildly wrong panel (a bit-flip stand-in
        // far above audit tolerance); every other apply is clean. The guard
        // must detect the drift, roll back to the last verified snapshot, and
        // replay to the exact iterate of a fully clean solve.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 36;
        let m = random_mat(n, 131, 7.0);
        let b = random_vec(n, 137);
        let cfg = IterConfig {
            tol: 1e-9,
            max_iters: 300,
        };
        let mut x_clean = vec![vec![C64::ZERO; n]];
        let clean = bicgstab_block(&m, &[&b], &mut x_clean, cfg);
        assert!(clean[0].converged);

        let calls = AtomicUsize::new(0);
        let corrupting = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            m.matvec(v, out);
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == 4 {
                out[0] += c64(75.0, -40.0);
            }
        });
        let guard = DriftGuard::new(4, 1e-8, 3);
        let mut xs = vec![vec![C64::ZERO; n]];
        let stats = bicgstab_block_guarded(&corrupting, &[&b], &mut xs, cfg, &guard);
        assert!(guard.detected() >= 1, "corruption must be detected");
        assert!(guard.rolled_back() >= 1, "steps must be discarded");
        assert_eq!(guard.escalated(), 0, "transient fault must recover");
        assert!(stats[0].converged, "{:?}", stats[0]);
        assert!(stats[0].rolled_back >= 1);
        assert_eq!(
            xs[0], x_clean[0],
            "recovered solve must match the clean solve bit-for-bit"
        );
        assert_eq!(stats[0].iterations, clean[0].iterations);
        assert_eq!(stats[0].matvecs, clean[0].matvecs);
    }

    #[test]
    fn persistent_corruption_escalates_typed() {
        // Inconsistent corruption on every apply after the initial residual:
        // the recurrence can never be reconciled with any fixed operator, so
        // each replay re-detects until the rollback budget is spent and the
        // guard escalates instead of reporting convergence.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 24;
        let m = random_mat(n, 151, 6.0);
        let b = random_vec(n, 157);
        let cfg = IterConfig {
            tol: 1e-9,
            max_iters: 200,
        };
        let calls = AtomicUsize::new(0);
        let corrupting = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            m.matvec(v, out);
            let k = calls.fetch_add(1, Ordering::Relaxed) + 1;
            if k >= 2 {
                // call-dependent garbage: no consistent linear system exists
                out[0] += c64(10.0 + k as f64, -(k as f64));
            }
        });
        let guard = DriftGuard::new(4, 1e-8, 2);
        let mut xs = vec![vec![C64::ZERO; n]];
        let stats = bicgstab_block_guarded(&corrupting, &[&b], &mut xs, cfg, &guard);
        assert_eq!(guard.escalated(), 1, "budget exhausted must escalate");
        assert!(
            !stats[0].converged,
            "never report convergence: {:?}",
            stats[0]
        );
        assert!(
            xs[0].iter().all(|v| v.re.is_finite() && v.im.is_finite()),
            "escalated column freezes at the last verified iterate"
        );

        // The scalar wrapper surfaces the same outcome as a typed breakdown.
        calls.store(0, Ordering::Relaxed);
        let guard2 = DriftGuard::new(4, 1e-8, 2);
        let mut x = vec![C64::ZERO; n];
        let err = bicgstab_guarded(&corrupting, &b, &mut x, cfg, &guard2)
            .expect_err("persistent corruption must not yield Ok");
        match err {
            SolveError::Breakdown { kind, .. } => {
                assert_eq!(kind, BreakdownKind::Drift, "typed as drift corruption")
            }
        }
    }
}
