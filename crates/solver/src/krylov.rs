//! Krylov-subspace iterative solvers.
//!
//! The paper's forward solver is the biconjugate gradient stabilized method
//! (BiCGStab, Section III-A), terminated at 1e-4 relative residual
//! (Section V-B). CG is provided for Hermitian positive-definite systems and
//! CGNR (CG on the normal equations) solves the least-squares problems of the
//! linear Born inversion baseline.

use crate::op::LinOp;
use ffw_numerics::vecops::{axpy, norm2, sub_into, zdotc};
use ffw_numerics::C64;
use std::fmt;

/// Outcome of an iterative solve.
///
/// These semantics are shared by every engine in the workspace (scalar and
/// block BiCGStab, the distributed solvers, and the Born-series backend) so
/// cross-backend comparisons are apples-to-apples:
///
/// - `iterations` counts the update steps *reflected in the returned
///   iterate*. A step whose update is rolled back (e.g. a non-finite
///   BiCGStab phase-3 update restores the pre-step `x`) is not counted:
///   re-running the same solve with `max_iters` set to the reported count
///   reproduces the returned iterate bit-for-bit.
/// - `matvecs` counts operator applications whose step survived into the
///   returned trajectory (a single non-finite phase-3 rollback keeps its
///   applies here, matching the historical accounting the BENCH iteration
///   gates pin).
/// - `verify_matvecs` counts operator applications spent on compute
///   integrity instead: drift-guard true-residual audits, plus the applies
///   of iterations a [`crate::DriftGuard`] rollback discarded. Keeping them
///   out of `matvecs` preserves the per-solver `matvecs`/`iterations`
///   invariants (e.g. BiCGStab's `2 i + 1`) that the BENCH gates rely on.
/// - `rolled_back` counts update steps discarded by drift-guard rollbacks
///   (they are also absent from `iterations`).
#[derive(Clone, Debug, PartialEq)]
pub struct SolveStats {
    /// Update steps reflected in the returned iterate (see type docs).
    pub iterations: usize,
    /// Operator applications (matvecs) performed for the returned
    /// trajectory.
    pub matvecs: usize,
    /// Operator applications spent on integrity verification and on
    /// rolled-back trajectory segments (see type docs).
    pub verify_matvecs: usize,
    /// Update steps discarded by drift-guard rollbacks.
    pub rolled_back: usize,
    /// Final relative residual norm `||b - A x|| / ||b||`.
    pub rel_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// What broke a Krylov iteration down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakdownKind {
    /// The BiCGStab rho inner product underflowed to (numerical) zero, so
    /// the recurrence cannot continue.
    RhoZero,
    /// The iterate or residual became NaN/Inf (division by a vanishing
    /// inner product, singular operator, overflow).
    NonFinite,
    /// A [`crate::DriftGuard`] audit found the recursive residual diverged
    /// from the true residual `b - A x` and the rollback budget could not
    /// repair it — suspected compute corruption, surfaced instead of a
    /// silently wrong convergence.
    Drift,
}

impl fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakdownKind::RhoZero => f.write_str("rho underflow"),
            BreakdownKind::NonFinite => f.write_str("non-finite residual"),
            BreakdownKind::Drift => {
                f.write_str("unresolved residual drift (suspected compute corruption)")
            }
        }
    }
}

/// Typed failure of a checked Krylov solve. Surfaced only after the solver
/// has already attempted its automatic restart budget; the iterate `x` is
/// left at the last finite value, never poisoned with NaN.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The iteration broke down and restarts did not recover it.
    Breakdown {
        /// What broke down.
        kind: BreakdownKind,
        /// Iterations completed before the (final) breakdown.
        iterations: usize,
        /// Operator applications performed.
        matvecs: usize,
        /// Last finite relative residual observed.
        rel_residual: f64,
        /// Automatic restarts attempted before giving up.
        restarts: u32,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Breakdown {
                kind,
                iterations,
                rel_residual,
                restarts,
                ..
            } => write!(
                f,
                "Krylov breakdown ({kind}) after {iterations} iterations and \
                 {restarts} restart(s); last finite relative residual {rel_residual:.3e}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

pub(crate) fn finite_c(v: C64) -> bool {
    v.re.is_finite() && v.im.is_finite()
}

/// How one BiCGStab cycle (fresh residual to termination) ended.
enum CycleEnd {
    Converged(f64),
    MaxIters(f64),
    Breakdown { kind: BreakdownKind, res: f64 },
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct IterConfig {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for IterConfig {
    fn default() -> Self {
        // The paper's forward-solver setting (Section V-B).
        IterConfig {
            tol: 1e-4,
            max_iters: 1000,
        }
    }
}

/// One BiCGStab cycle: build a fresh residual from the current `x` and
/// iterate until convergence, the (shared) iteration budget, or a breakdown.
/// On breakdown `x` is restored to the last finite iterate.
fn bicgstab_cycle<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    b_norm: f64,
    iters: &mut usize,
    matvecs: &mut usize,
) -> CycleEnd {
    let n = b.len();
    let mut r = vec![C64::ZERO; n];
    a.apply(x, &mut r);
    *matvecs += 1;
    sub_into(b, &r.clone(), &mut r); // r = b - A x
    let r_hat = r.clone();
    let mut rho = C64::ONE;
    let mut alpha = C64::ONE;
    let mut omega = C64::ONE;
    let mut v = vec![C64::ZERO; n];
    let mut p = vec![C64::ZERO; n];
    let mut s = vec![C64::ZERO; n];
    let mut t = vec![C64::ZERO; n];
    let mut x_prev = vec![C64::ZERO; n];

    let mut res = norm2(&r) / b_norm;
    if !res.is_finite() {
        return CycleEnd::Breakdown {
            kind: BreakdownKind::NonFinite,
            res: f64::NAN,
        };
    }
    ffw_obs::series_push("solver.bicgstab.residual", res);
    if res < cfg.tol {
        return CycleEnd::Converged(res);
    }

    loop {
        if *iters >= cfg.max_iters {
            return CycleEnd::MaxIters(res);
        }
        let rho_new = zdotc(&r_hat, &r);
        if !finite_c(rho_new) {
            return CycleEnd::Breakdown {
                kind: BreakdownKind::NonFinite,
                res,
            };
        }
        if rho_new.abs() < 1e-300 {
            return CycleEnd::Breakdown {
                kind: BreakdownKind::RhoZero,
                res,
            };
        }
        *iters += 1;
        let beta = (rho_new / rho) * (alpha / omega);
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.apply(&p, &mut v);
        *matvecs += 1;
        alpha = rho_new / zdotc(&r_hat, &v);
        // s = r - alpha v
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_norm = norm2(&s) / b_norm;
        if s_norm < cfg.tol {
            axpy(alpha, &p, x);
            ffw_obs::series_push("solver.bicgstab.residual", s_norm);
            return CycleEnd::Converged(s_norm);
        }
        a.apply(&s, &mut t);
        *matvecs += 1;
        let tt = zdotc(&t, &t);
        omega = zdotc(&t, &s) / tt;
        // x += alpha p + omega s; r = s - omega t. Snapshot x first so a
        // non-finite update can be rolled back instead of poisoning the
        // iterate (the historical silent-divergence bug: NaN residuals fail
        // every `<` comparison, so the loop ran to max_iters and reported a
        // NaN x as if it were a best effort).
        x_prev.copy_from_slice(x);
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        let res_new = norm2(&r) / b_norm;
        if !res_new.is_finite() {
            // The rolled-back iterate does not contain this step's update,
            // so the step must not be counted: `iterations` means "update
            // steps reflected in the returned iterate".
            x.copy_from_slice(&x_prev);
            *iters -= 1;
            return CycleEnd::Breakdown {
                kind: BreakdownKind::NonFinite,
                res,
            };
        }
        res = res_new;
        ffw_obs::series_push("solver.bicgstab.residual", res);
        if res < cfg.tol {
            return CycleEnd::Converged(res);
        }
        rho = rho_new;
    }
}

fn bicgstab_impl<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    max_restarts: u32,
) -> Result<SolveStats, SolveError> {
    let _span = ffw_obs::span("solver.bicgstab");
    let out = bicgstab_impl_inner(a, b, x, cfg, max_restarts);
    if ffw_obs::enabled() {
        let (it, mv) = match &out {
            Ok(s) => (s.iterations, s.matvecs),
            Err(SolveError::Breakdown {
                iterations,
                matvecs,
                ..
            }) => (*iterations, *matvecs),
        };
        ffw_obs::counter("solver.bicgstab.solves").inc();
        ffw_obs::counter("solver.bicgstab.iters").add(it as u64);
        ffw_obs::counter("solver.bicgstab.matvecs").add(mv as u64);
        ffw_obs::histogram("solver.bicgstab.iters_per_solve").record(it as u64);
        if let Err(e) = &out {
            ffw_obs::event("solver.breakdown", &format!("bicgstab: {e}"));
        }
    }
    out
}

fn bicgstab_impl_inner<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    max_restarts: u32,
) -> Result<SolveStats, SolveError> {
    let n = b.len();
    assert_eq!(a.dim_in(), n);
    assert_eq!(a.dim_out(), n);
    assert_eq!(x.len(), n);
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return Ok(SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        });
    }
    let mut iters = 0usize;
    let mut matvecs = 0usize;
    let mut restarts = 0u32;
    loop {
        match bicgstab_cycle(a, b, x, cfg, b_norm, &mut iters, &mut matvecs) {
            CycleEnd::Converged(res) => {
                return Ok(SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: true,
                })
            }
            CycleEnd::MaxIters(res) => {
                return Ok(SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: false,
                })
            }
            CycleEnd::Breakdown { kind, res } => {
                let x_finite = x.iter().all(|v| finite_c(*v));
                if restarts < max_restarts && iters < cfg.max_iters && x_finite {
                    // Restart from the last finite iterate: the next cycle
                    // re-derives r and r_hat from the current x, which breaks
                    // the degenerate Krylov directions that caused the
                    // breakdown while keeping the progress made so far.
                    restarts += 1;
                    ffw_obs::event(
                        "solver.restart",
                        &format!("bicgstab restart {restarts} after {kind} at iter {iters}"),
                    );
                    continue;
                }
                return Err(SolveError::Breakdown {
                    kind,
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    restarts,
                });
            }
        }
    }
}

/// Unpreconditioned BiCGStab: solves `A x = b`, starting from the provided
/// `x` (commonly zero). Two matvecs per iteration — the dominant cost the
/// MLFMA accelerates (paper Fig. 4).
///
/// On a rho-underflow or NaN/Inf breakdown this returns honest unconverged
/// stats with `x` left at the last *finite* iterate (never NaN). Callers
/// that need to distinguish breakdown from slow convergence should use
/// [`bicgstab_checked`], which also retries once before giving up.
pub fn bicgstab<A: LinOp + ?Sized>(a: &A, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
    match bicgstab_impl(a, b, x, cfg, 0) {
        Ok(stats) => stats,
        Err(SolveError::Breakdown {
            iterations,
            matvecs,
            rel_residual,
            ..
        }) => SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations,
            matvecs,
            rel_residual,
            converged: false,
        },
    }
}

/// BiCGStab with typed breakdown reporting: on rho underflow or a NaN/Inf
/// iterate the solve automatically restarts once from the last finite
/// iterate (fresh residual and shadow residual), and only if the restarted
/// cycle breaks down too does it surface [`SolveError::Breakdown`]. The
/// iteration budget in `cfg` is shared across restarts.
pub fn bicgstab_checked<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> Result<SolveStats, SolveError> {
    bicgstab_impl(a, b, x, cfg, 1)
}

/// Conjugate gradients for Hermitian positive-definite `A`.
pub fn cg<A: LinOp + ?Sized>(a: &A, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
    let n = b.len();
    assert_eq!(x.len(), n);
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        };
    }
    let mut r = vec![C64::ZERO; n];
    let mut matvecs = 0usize;
    a.apply(x, &mut r);
    matvecs += 1;
    sub_into(b, &r.clone(), &mut r);
    let mut p = r.clone();
    let mut ap = vec![C64::ZERO; n];
    let mut rs = zdotc(&r, &r);
    let mut res = rs.re.sqrt() / b_norm;
    for iter in 1..=cfg.max_iters {
        if res < cfg.tol {
            return SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: iter - 1,
                matvecs,
                rel_residual: res,
                converged: true,
            };
        }
        a.apply(&p, &mut ap);
        matvecs += 1;
        let alpha = rs / zdotc(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = zdotc(&r, &r);
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
        res = rs.re.sqrt() / b_norm;
    }
    SolveStats {
        verify_matvecs: 0,
        rolled_back: 0,
        iterations: cfg.max_iters,
        matvecs,
        rel_residual: res,
        converged: res < cfg.tol,
    }
}

/// CGNR: least-squares `min ||A x - b||` via CG on `A^H A x = A^H b`.
///
/// `a` maps `n -> m`, `a_adj` maps `m -> n` and must be the true adjoint.
pub fn cgnr<A: LinOp + ?Sized, AH: LinOp + ?Sized>(
    a: &A,
    a_adj: &AH,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    let n = a.dim_in();
    let m = a.dim_out();
    assert_eq!(b.len(), m);
    assert_eq!(x.len(), n);
    let mut rhs = vec![C64::ZERO; n];
    a_adj.apply(b, &mut rhs);
    let normal = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
        let mut mid = vec![C64::ZERO; m];
        a.apply(v, &mut mid);
        a_adj.apply(&mid, out);
    });
    let mut stats = cg(&normal, &rhs, x, cfg);
    stats.matvecs *= 2; // each normal-equation apply is two operator applies
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::{c64, vecops::rel_diff};

    fn random_mat(n: usize, m: usize, seed: u64, diag_boost: f64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, m, |r, c| {
            let mut v = c64(next(), next());
            if r == c {
                v += diag_boost;
            }
            v
        })
    }

    fn random_vec(n: usize, seed: u64) -> Vec<C64> {
        let m = random_mat(1, n, seed, 0.0);
        m.as_slice().to_vec()
    }

    #[test]
    fn bicgstab_solves_diagonally_dominant_system() {
        let n = 60;
        let a = random_mat(n, n, 3, 8.0);
        let x_true = random_vec(n, 5);
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab(
            &a,
            &b,
            &mut x,
            IterConfig {
                tol: 1e-10,
                max_iters: 500,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(
            rel_diff(&x, &x_true) < 1e-8,
            "err {}",
            rel_diff(&x, &x_true)
        );
        assert_eq!(stats.matvecs, 2 * stats.iterations + 1);
    }

    #[test]
    fn bicgstab_residual_is_truthful() {
        let n = 40;
        let a = random_mat(n, n, 13, 6.0);
        let b = random_vec(n, 17);
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab(
            &a,
            &b,
            &mut x,
            IterConfig {
                tol: 1e-8,
                max_iters: 300,
            },
        );
        let mut r = vec![C64::ZERO; n];
        a.matvec(&x, &mut r);
        let resid: f64 = r
            .iter()
            .zip(&b)
            .map(|(ax, bb)| (*ax - *bb).norm_sqr())
            .sum::<f64>()
            .sqrt()
            / ffw_numerics::vecops::norm2(&b);
        assert!(stats.converged);
        assert!(
            (resid - stats.rel_residual).abs() < 1e-6,
            "{resid} vs {stats:?}"
        );
    }

    #[test]
    fn bicgstab_zero_rhs() {
        let a = random_mat(10, 10, 1, 4.0);
        let b = vec![C64::ZERO; 10];
        let mut x = random_vec(10, 2);
        let stats = bicgstab(&a, &b, &mut x, IterConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|v| v.abs() == 0.0));
    }

    #[test]
    fn cg_solves_hermitian_pd() {
        // A = B^H B + 2I is Hermitian positive definite.
        let n = 30;
        let b_mat = random_mat(n, n, 7, 0.0);
        let mut a = b_mat.adjoint().matmul(&b_mat);
        for i in 0..n {
            *a.at_mut(i, i) += 2.0;
        }
        let x_true = random_vec(n, 9);
        let mut rhs = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut rhs);
        let mut x = vec![C64::ZERO; n];
        let stats = cg(
            &a,
            &rhs,
            &mut x,
            IterConfig {
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(stats.converged);
        assert!(rel_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn cgnr_solves_overdetermined_least_squares() {
        // 50 equations, 20 unknowns: residual must be orthogonal to range(A).
        let m = 50;
        let n = 20;
        let a = random_mat(m, n, 11, 0.0);
        let b = random_vec(m, 13);
        let a_adj = a.adjoint();
        let mut x = vec![C64::ZERO; n];
        let stats = cgnr(
            &a,
            &a_adj,
            &b,
            &mut x,
            IterConfig {
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(stats.converged);
        // optimality: A^H (A x - b) = 0
        let mut ax = vec![C64::ZERO; m];
        a.matvec(&x, &mut ax);
        let r: Vec<C64> = ax.iter().zip(&b).map(|(u, v)| *u - *v).collect();
        let mut grad = vec![C64::ZERO; n];
        a_adj.matvec(&r, &mut grad);
        assert!(
            ffw_numerics::vecops::norm2(&grad) < 1e-8 * ffw_numerics::vecops::norm2(&b),
            "normal-equation residual too large"
        );
    }

    #[test]
    fn max_iters_reports_unconverged() {
        let n = 50;
        let a = random_mat(n, n, 23, 0.3); // poorly conditioned
        let b = random_vec(n, 29);
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab(
            &a,
            &b,
            &mut x,
            IterConfig {
                tol: 1e-14,
                max_iters: 2,
            },
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 2);
    }

    #[test]
    fn breakdown_on_singular_operator_is_typed_not_silent() {
        // Regression test for the silent-divergence bug: with a singular
        // operator, alpha = rho / <r_hat, A p> divides by zero and poisons
        // the iterate with NaN. NaN fails every `<` comparison, so the old
        // loop ran on and "reported the iterate" even though the residual
        // was NaN. The zero operator is maximally singular.
        let n = 8;
        let zero_op = crate::op::FnOp::new(n, n, |_v: &[C64], out: &mut [C64]| {
            out.iter_mut().for_each(|o| *o = C64::ZERO);
        });
        let b = vec![c64(1.0, 0.5); n];

        let mut x = vec![C64::ZERO; n];
        let err = bicgstab_checked(&zero_op, &b, &mut x, IterConfig::default())
            .expect_err("singular operator must surface a typed breakdown");
        let SolveError::Breakdown { kind, restarts, .. } = err;
        assert_eq!(kind, BreakdownKind::NonFinite);
        assert_eq!(restarts, 1, "one automatic restart before surfacing");
        assert!(
            x.iter().all(|v| v.re.is_finite() && v.im.is_finite()),
            "iterate must be rolled back to the last finite value"
        );

        // The plain entry point must now report honest unconverged stats
        // with a finite residual, instead of a NaN iterate.
        let mut x2 = vec![C64::ZERO; n];
        let stats = bicgstab(&zero_op, &b, &mut x2, IterConfig::default());
        assert!(!stats.converged);
        assert!(stats.rel_residual.is_finite());
        assert!(x2.iter().all(|v| v.re.is_finite() && v.im.is_finite()));
    }

    #[test]
    fn breakdown_iteration_count_reproduces_the_returned_iterate() {
        // SolveStats contract: after a phase-3 rollback, `iterations` must
        // equal the number of update steps actually present in the returned
        // iterate — so a clean re-run capped at that count is bit-identical.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 24;
        let m = random_mat(n, n, 77, 6.0);
        let b = random_vec(n, 79);
        // Applies 1..=5 are healthy (init residual + two full iterations);
        // apply 6 is the `A p` of iteration 3 and poisons it with NaN,
        // forcing the phase-3 rollback.
        let calls = AtomicUsize::new(0);
        let poisoned = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            if calls.fetch_add(1, Ordering::Relaxed) + 1 >= 6 {
                out.iter_mut().for_each(|o| *o = c64(f64::NAN, f64::NAN));
            } else {
                m.apply(v, out);
            }
        });
        let cfg = IterConfig {
            tol: 1e-14,
            max_iters: 50,
        };
        let mut x_broken = vec![C64::ZERO; n];
        let stats = bicgstab(&poisoned, &b, &mut x_broken, cfg);
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 2, "rolled-back step must not count");
        assert!(x_broken.iter().all(|v| finite_c(*v)));

        let mut x_replay = vec![C64::ZERO; n];
        let replay = bicgstab(
            &m,
            &b,
            &mut x_replay,
            IterConfig {
                tol: 1e-14,
                max_iters: stats.iterations,
            },
        );
        assert_eq!(replay.iterations, stats.iterations);
        assert_eq!(x_replay, x_broken, "replay at the reported count differs");
    }

    #[test]
    fn checked_solve_matches_plain_on_healthy_system() {
        let n = 40;
        let a = random_mat(n, n, 41, 7.0);
        let b = random_vec(n, 43);
        let cfg = IterConfig {
            tol: 1e-9,
            max_iters: 300,
        };
        let mut x_plain = vec![C64::ZERO; n];
        let plain = bicgstab(&a, &b, &mut x_plain, cfg);
        let mut x_checked = vec![C64::ZERO; n];
        let checked = bicgstab_checked(&a, &b, &mut x_checked, cfg).expect("healthy system");
        assert_eq!(plain, checked);
        assert_eq!(x_plain, x_checked);
        assert!(checked.converged);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 40;
        let a = random_mat(n, n, 31, 6.0);
        let x_true = random_vec(n, 33);
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut cold = vec![C64::ZERO; n];
        let cold_stats = bicgstab(
            &a,
            &b,
            &mut cold,
            IterConfig {
                tol: 1e-9,
                max_iters: 300,
            },
        );
        // warm start from a slightly perturbed solution
        let mut warm: Vec<C64> = x_true.iter().map(|v| *v * 1.001).collect();
        let warm_stats = bicgstab(
            &a,
            &b,
            &mut warm,
            IterConfig {
                tol: 1e-9,
                max_iters: 300,
            },
        );
        assert!(warm_stats.iterations <= cold_stats.iterations);
    }
}
