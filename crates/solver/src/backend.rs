//! The forward-backend seam: forward/adjoint solves as a *configuration*,
//! not a code path.
//!
//! Every consumer of the forward-scattering system `A = I - G0 diag(O)` —
//! the DBIM driver, the CLI, the service — talks to a [`ForwardBackend`]
//! and names no solver. Two engines implement the trait today:
//!
//! * [`BicgstabBackend`] — the paper's MLFMA+BiCGStab Krylov path
//!   (wrapping [`crate::forward`]);
//! * [`crate::bornseries::BornSeriesBackend`] — the convergent Born-series
//!   fixed-point engine (no Krylov recurrence at all), admissible whenever
//!   the contrast bound `kappa = ||G0|| * max|O| < 1` holds.
//!
//! A third backend drops in by implementing the four `solve*` methods and
//! adding one arm to [`make_backend`]; `dbim()` and every caller above it
//! are untouched. The trait contract:
//!
//! * `solve`/`solve_block` solve `A x = b`; `solve_adjoint*` solve
//!   `A^H x = b`. `x` carries the initial guess (zero or a warm start) and
//!   is overwritten with the solution.
//! * The block variants iterate all columns against one shared operator so
//!   applies fuse into [`crate::op::BlockLinOp::apply_block`] panels, with
//!   per-RHS convergence masking; each column's trajectory must be
//!   bit-identical to the scalar solve of that column alone, at any panel
//!   width.
//! * Returned [`SolveStats`] follow one shared meaning: `iterations` counts
//!   the update steps reflected in the returned iterate, `matvecs` the
//!   operator applications performed on the column's behalf.

use crate::block::bicgstab_block_guarded;
use crate::forward::{
    solve_adjoint, solve_adjoint_block, solve_forward, solve_forward_block, AdjointScatteringOp,
    ScatteringOp,
};
use crate::krylov::{IterConfig, SolveStats};
use crate::op::{BlockLinOp, LinOp};
use crate::verify::DriftGuard;
use ffw_numerics::vecops::norm2;
use ffw_numerics::{c64, C64};

/// Which forward engine services the solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// MLFMA+BiCGStab — the paper's Krylov path, robust at any contrast.
    #[default]
    Bicgstab,
    /// Convergent Born series — preconditioned fixed-point iteration,
    /// admissible only under the contrast bound (`kappa < 1`).
    BornSeries,
}

impl BackendChoice {
    /// Canonical CLI/spec spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendChoice::Bicgstab => "bicgstab",
            BackendChoice::BornSeries => "born-series",
        }
    }

    /// All recognized spellings, for help/error text.
    pub const NAMES: [&'static str; 2] = ["bicgstab", "born-series"];
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bicgstab" => Ok(BackendChoice::Bicgstab),
            "born-series" | "born_series" | "bornseries" => Ok(BackendChoice::BornSeries),
            other => Err(format!(
                "unknown backend `{other}` (expected one of: {})",
                BackendChoice::NAMES.join(", ")
            )),
        }
    }
}

/// Why a backend refused to service the system it was built for.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// The Born-series contraction bound fails: `kappa >= limit`, so the
    /// fixed-point iteration has no convergence guarantee for this object.
    ContrastTooHigh {
        /// The measured bound `||G0|| * max|O|`.
        kappa: f64,
        /// The admission limit (strictly below 1 for convergence margin).
        limit: f64,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::ContrastTooHigh { kappa, limit } => write!(
                f,
                "contrast too high for the Born-series backend: \
                 kappa = ||G0||*max|O| = {kappa:.4} >= {limit} — the fixed-point \
                 iteration is not a contraction; use the bicgstab backend"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Admission limit on `kappa`: strictly below 1 so the guaranteed geometric
/// rate leaves a usable iteration budget (`0.95^n` reaches 1e-4 in ~180
/// steps).
pub const KAPPA_LIMIT: f64 = 0.95;

/// A forward engine bound to one `(G0, object)` pair. See the module docs
/// for the trait contract.
pub trait ForwardBackend: Sync {
    /// Stable engine name (matches [`BackendChoice::as_str`]).
    fn name(&self) -> &'static str;
    /// Solves `A x = b` for one right-hand side.
    fn solve(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats;
    /// Solves `A^H x = b` for one right-hand side.
    fn solve_adjoint(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats;
    /// Solves `A xs[c] = bs[c]` for a panel of columns in lockstep.
    fn solve_block(&self, bs: &[&[C64]], xs: &mut [Vec<C64>], cfg: IterConfig) -> Vec<SolveStats>;
    /// Solves `A^H xs[c] = bs[c]` for a panel of columns in lockstep.
    fn solve_adjoint_block(
        &self,
        bs: &[&[C64]],
        xs: &mut [Vec<C64>],
        cfg: IterConfig,
    ) -> Vec<SolveStats>;
}

/// The MLFMA+BiCGStab engine: wraps [`crate::forward`]'s solve entry points
/// behind the backend seam.
pub struct BicgstabBackend<'a, G: BlockLinOp + ?Sized> {
    g0: &'a G,
    object: &'a [C64],
    guard: Option<&'a DriftGuard>,
}

impl<'a, G: BlockLinOp + ?Sized> BicgstabBackend<'a, G> {
    /// Binds the engine to one `(G0, object)` pair.
    pub fn new(g0: &'a G, object: &'a [C64]) -> Self {
        assert_eq!(g0.dim_in(), object.len());
        assert_eq!(g0.dim_out(), object.len());
        BicgstabBackend {
            g0,
            object,
            guard: None,
        }
    }

    /// Attaches a [`DriftGuard`]: every solve audits the Krylov recurrence's
    /// recursive residual against the true `b - A x` and rolls back to the
    /// last verified iterate on divergence (see
    /// [`crate::bicgstab_block_guarded`]). An escalated column surfaces as
    /// `converged: false` in its [`SolveStats`]; callers inspect the guard's
    /// counters to distinguish escalation from a plain budget freeze.
    pub fn with_guard(mut self, guard: &'a DriftGuard) -> Self {
        self.guard = Some(guard);
        self
    }
}

impl<G: BlockLinOp + ?Sized> ForwardBackend for BicgstabBackend<'_, G> {
    fn name(&self) -> &'static str {
        BackendChoice::Bicgstab.as_str()
    }
    fn solve(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
        match self.guard {
            None => solve_forward(self.g0, self.object, b, x, cfg),
            Some(g) => {
                let a = ScatteringOp::new(self.g0, self.object);
                let mut xs = vec![x.to_vec()];
                let stats = bicgstab_block_guarded(&a, &[b], &mut xs, cfg, g);
                x.copy_from_slice(&xs[0]);
                stats.into_iter().next().expect("one column")
            }
        }
    }
    fn solve_adjoint(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
        match self.guard {
            None => solve_adjoint(self.g0, self.object, b, x, cfg),
            Some(g) => {
                let a = AdjointScatteringOp::new(self.g0, self.object);
                let mut xs = vec![x.to_vec()];
                let stats = bicgstab_block_guarded(&a, &[b], &mut xs, cfg, g);
                x.copy_from_slice(&xs[0]);
                stats.into_iter().next().expect("one column")
            }
        }
    }
    fn solve_block(&self, bs: &[&[C64]], xs: &mut [Vec<C64>], cfg: IterConfig) -> Vec<SolveStats> {
        match self.guard {
            None => solve_forward_block(self.g0, self.object, bs, xs, cfg),
            Some(g) => {
                let a = ScatteringOp::new(self.g0, self.object);
                bicgstab_block_guarded(&a, bs, xs, cfg, g)
            }
        }
    }
    fn solve_adjoint_block(
        &self,
        bs: &[&[C64]],
        xs: &mut [Vec<C64>],
        cfg: IterConfig,
    ) -> Vec<SolveStats> {
        match self.guard {
            None => solve_adjoint_block(self.g0, self.object, bs, xs, cfg),
            Some(g) => {
                let a = AdjointScatteringOp::new(self.g0, self.object);
                bicgstab_block_guarded(&a, bs, xs, cfg, g)
            }
        }
    }
}

/// Builds the chosen backend for one `(G0, object)` pair.
///
/// `g0_norm` is the spectral-norm estimate from [`estimate_g0_norm`]; it is
/// only consulted by the Born-series arm (the Krylov arm accepts any
/// contrast), so bicgstab callers may pass `0.0`. The estimate is a property
/// of `G0` alone — compute it once per run and reuse it across outer
/// iterations while the *object* changes underneath.
pub fn make_backend<'a, G: BlockLinOp + ?Sized>(
    choice: BackendChoice,
    g0: &'a G,
    object: &'a [C64],
    g0_norm: f64,
) -> Result<Box<dyn ForwardBackend + 'a>, BackendError> {
    match choice {
        BackendChoice::Bicgstab => Ok(Box::new(BicgstabBackend::new(g0, object))),
        BackendChoice::BornSeries => Ok(Box::new(crate::bornseries::BornSeriesBackend::new(
            g0, object, g0_norm,
        )?)),
    }
}

/// [`make_backend`] with a [`DriftGuard`] attached: both engines audit
/// their recursive residual against the true `b - A x` every
/// [`DriftGuard::period`] steps and at every would-be convergence, rolling
/// back to the last verified iterate on divergence and escalating (column
/// surfaced unconverged, guard counter bumped) once the rollback budget is
/// spent. Clean solves are bit-identical to the unguarded backend's block
/// path.
pub fn make_backend_guarded<'a, G: BlockLinOp + ?Sized>(
    choice: BackendChoice,
    g0: &'a G,
    object: &'a [C64],
    g0_norm: f64,
    guard: &'a DriftGuard,
) -> Result<Box<dyn ForwardBackend + 'a>, BackendError> {
    match choice {
        BackendChoice::Bicgstab => Ok(Box::new(BicgstabBackend::new(g0, object).with_guard(guard))),
        BackendChoice::BornSeries => Ok(Box::new(
            crate::bornseries::BornSeriesBackend::new(g0, object, g0_norm)?.with_guard(guard),
        )),
    }
}

/// Power-iteration rounds used by [`estimate_g0_norm`]'s default entry.
pub const NORM_ESTIMATE_ITERS: usize = 24;

/// Deterministic seed for the norm-estimation start vector.
pub const NORM_ESTIMATE_SEED: u64 = 0x5eed_f0f0_1234_abcd;

/// Safety inflation on the power-iteration estimate: power iteration
/// converges to `||G0||` from below, so the admission test uses a slightly
/// inflated value to keep the contraction margin honest.
const NORM_SAFETY: f64 = 1.05;

/// Estimates `||G0||_2` by `iters` rounds of power iteration on `G0^H G0`,
/// using the complex-symmetry conjugation trick (`G0^H x = conj(G0 conj(x))`)
/// so one operator serves both applications — the same assumption
/// [`crate::forward::AdjointScatteringOp`] already makes.
///
/// The start vector is derived deterministically from `seed` (splitmix64),
/// so the estimate is bit-identical across runs, thread counts and panel
/// widths. The converged-from-below estimate is inflated by 5% before being
/// returned, erring on the side of *rejecting* marginal contrasts.
pub fn estimate_g0_norm<G: LinOp + ?Sized>(g0: &G, iters: usize, seed: u64) -> f64 {
    let n = g0.dim_in();
    assert_eq!(g0.dim_out(), n);
    assert!(n > 0, "empty operator");
    let _span = ffw_obs::span("solver.norm_estimate");
    let mut state = seed;
    let mut split = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut v: Vec<C64> = (0..n).map(|_| c64(split(), split())).collect();
    let mut w = vec![C64::ZERO; n];
    let mut u = vec![C64::ZERO; n];
    let mut sigma_sqr = 0.0f64;
    for _ in 0..iters.max(1) {
        let vn = norm2(&v);
        if vn == 0.0 {
            return 0.0; // G0^H G0 annihilated the start vector: null operator
        }
        let inv = 1.0 / vn;
        for x in v.iter_mut() {
            *x *= inv;
        }
        g0.apply(&v, &mut w);
        crate::forward::g0_adjoint_apply(g0, &w, &mut u);
        sigma_sqr = norm2(&u); // ||G0^H G0 v|| -> largest singular value^2
        std::mem::swap(&mut v, &mut u);
    }
    let est = sigma_sqr.sqrt() * NORM_SAFETY;
    if ffw_obs::enabled() {
        ffw_obs::gauge("solver.g0_norm_estimate").set(est);
    }
    est
}

/// Largest object magnitude `max|O|` — the other factor of the contrast
/// bound. Recompute per outer DBIM iteration: the object changes.
pub fn max_object_abs(object: &[C64]) -> f64 {
    object.iter().fold(0.0f64, |m, o| m.max(o.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::linalg::Matrix;

    fn symmetric_g0(n: usize, seed: u64, scale: f64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            scale * (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5)
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let v = c64(next(), next());
                *m.at_mut(r, c) = v;
                *m.at_mut(c, r) = v;
            }
        }
        m
    }

    #[test]
    fn backend_choice_round_trips_through_strings() {
        for c in [BackendChoice::Bicgstab, BackendChoice::BornSeries] {
            let parsed: BackendChoice = c.as_str().parse().expect("canonical spelling");
            assert_eq!(parsed, c);
        }
        assert!("lu-decomposition".parse::<BackendChoice>().is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Bicgstab);
    }

    #[test]
    fn norm_estimate_brackets_the_true_spectral_norm() {
        let n = 40;
        let g0 = symmetric_g0(n, 7, 0.3);
        // true ||G0||_2 via dense power iteration with many rounds
        let reference = estimate_g0_norm(&g0, 400, 1) / NORM_SAFETY;
        let est = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
        assert!(
            est >= reference * 0.999,
            "estimate {est} below reference {reference}"
        );
        assert!(
            est <= reference * 1.10,
            "estimate {est} too far above reference {reference}"
        );
    }

    #[test]
    fn norm_estimate_is_deterministic() {
        let g0 = symmetric_g0(24, 11, 0.25);
        let a = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
        let b = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn zero_operator_norm_is_zero() {
        let g0 = Matrix::zeros(8, 8);
        assert_eq!(estimate_g0_norm(&g0, 8, 3), 0.0);
    }

    #[test]
    fn make_backend_rejects_over_contrast_born_series() {
        let n = 16;
        let g0 = symmetric_g0(n, 5, 0.4);
        let g0_norm = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
        // object scaled so kappa lands far above the limit
        let object: Vec<C64> = (0..n)
            .map(|_| c64(2.0 * KAPPA_LIMIT / g0_norm.max(1e-12), 0.0))
            .collect();
        let err = make_backend(BackendChoice::BornSeries, &g0, &object, g0_norm)
            .err()
            .expect("over-contrast object must be rejected");
        let BackendError::ContrastTooHigh { kappa, limit } = err;
        assert!(kappa >= limit);
        assert_eq!(limit, KAPPA_LIMIT);
        // ...while the Krylov backend accepts the same object
        assert!(make_backend(BackendChoice::Bicgstab, &g0, &object, g0_norm).is_ok());
    }
}
