//! Preconditioning for the Krylov solvers — the paper's Section VIII
//! future-work item ("preconditioning of the system to address situations
//! where the problem goes into resonance and near-resonance frequencies").

use crate::krylov::{IterConfig, SolveStats};
use crate::op::LinOp;
use ffw_numerics::vecops::{norm2, norm2_sqr, sub_into, zdotc};
use ffw_numerics::C64;

/// An (approximate) inverse `z ~ A^{-1} r` applied as `z = M r`.
pub trait Precond: Sync {
    /// Applies the preconditioner: `z = M r`.
    fn apply(&self, r: &[C64], z: &mut [C64]);
}

/// The trivial preconditioner `M = I`.
pub struct IdentityPrecond;

impl Precond for IdentityPrecond {
    fn apply(&self, r: &[C64], z: &mut [C64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(d)^{-1}` given the diagonal.
pub struct JacobiPrecond(pub Vec<C64>);

impl Precond for JacobiPrecond {
    fn apply(&self, r: &[C64], z: &mut [C64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.0) {
            *zi = *ri / *di;
        }
    }
}

/// Right-preconditioned BiCGStab: solves `A M y = b`, `x = M y`, but in the
/// standard formulation that updates `x` directly (Templates, ch. 2.3.8).
/// Residuals are true residuals of `A x = b`, so convergence reporting is
/// comparable to the unpreconditioned solver.
pub fn bicgstab_precond<A: LinOp + ?Sized, M: Precond + ?Sized>(
    a: &A,
    m: &M,
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    let n = b.len();
    assert_eq!(x.len(), n);
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        };
    }
    let mut matvecs = 0usize;
    let mut r = vec![C64::ZERO; n];
    a.apply(x, &mut r);
    matvecs += 1;
    sub_into(b, &r.clone(), &mut r);
    let r_hat = r.clone();
    let mut rho = C64::ONE;
    let mut alpha = C64::ONE;
    let mut omega = C64::ONE;
    let mut v = vec![C64::ZERO; n];
    let mut p = vec![C64::ZERO; n];
    let mut p_hat = vec![C64::ZERO; n];
    let mut s = vec![C64::ZERO; n];
    let mut s_hat = vec![C64::ZERO; n];
    let mut t = vec![C64::ZERO; n];
    let mut res = norm2(&r) / b_norm;
    if res < cfg.tol {
        return SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs,
            rel_residual: res,
            converged: true,
        };
    }
    for iter in 1..=cfg.max_iters {
        let rho_new = zdotc(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: iter - 1,
                matvecs,
                rel_residual: res,
                converged: false,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        m.apply(&p, &mut p_hat);
        a.apply(&p_hat, &mut v);
        matvecs += 1;
        alpha = rho_new / zdotc(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm2_sqr(&s).sqrt() / b_norm < cfg.tol {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            return SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: iter,
                matvecs,
                rel_residual: norm2(&s) / b_norm,
                converged: true,
            };
        }
        m.apply(&s, &mut s_hat);
        a.apply(&s_hat, &mut t);
        matvecs += 1;
        omega = zdotc(&t, &s) / zdotc(&t, &t);
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        res = norm2(&r) / b_norm;
        if res < cfg.tol {
            return SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: iter,
                matvecs,
                rel_residual: res,
                converged: true,
            };
        }
        rho = rho_new;
    }
    SolveStats {
        verify_matvecs: 0,
        rolled_back: 0,
        iterations: cfg.max_iters,
        matvecs,
        rel_residual: res,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::bicgstab;
    use ffw_numerics::c64;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::vecops::rel_diff;

    fn ill_conditioned(n: usize, seed: u64) -> Matrix {
        // strongly varying diagonal + small random coupling
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |r, c| {
            if r == c {
                c64(0.02 + 3.0 * (r as f64 / n as f64).powi(3), 0.1)
            } else {
                c64(next(), next()).scale(0.003)
            }
        })
    }

    #[test]
    fn identity_precond_matches_plain_bicgstab() {
        let n = 40;
        let a = ill_conditioned(n, 1);
        let b: Vec<C64> = (0..n).map(|i| c64(1.0, i as f64 * 0.1)).collect();
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 800,
        };
        let mut x1 = vec![C64::ZERO; n];
        let s1 = bicgstab(&a, &b, &mut x1, cfg);
        let mut x2 = vec![C64::ZERO; n];
        let s2 = bicgstab_precond(&a, &IdentityPrecond, &b, &mut x2, cfg);
        assert!(s1.converged && s2.converged);
        assert!(rel_diff(&x1, &x2) < 1e-7);
    }

    #[test]
    fn jacobi_precond_cuts_iterations_on_skewed_diagonal() {
        let n = 60;
        let a = ill_conditioned(n, 3);
        let b: Vec<C64> = (0..n).map(|i| c64((i % 7) as f64, 1.0)).collect();
        let cfg = IterConfig {
            tol: 1e-8,
            max_iters: 2000,
        };
        let mut x_plain = vec![C64::ZERO; n];
        let plain = bicgstab(&a, &b, &mut x_plain, cfg);
        let diag: Vec<C64> = (0..n).map(|i| a.at(i, i)).collect();
        let m = JacobiPrecond(diag);
        let mut x_pre = vec![C64::ZERO; n];
        let pre = bicgstab_precond(&a, &m, &b, &mut x_pre, cfg);
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "precond {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        // both solve the same system
        assert!(rel_diff(&x_pre, &x_plain) < 1e-5);
    }

    #[test]
    fn preconditioned_residual_is_true_residual() {
        let n = 30;
        let a = ill_conditioned(n, 7);
        let b: Vec<C64> = (0..n).map(|i| c64(0.5, -(i as f64) * 0.05)).collect();
        let diag: Vec<C64> = (0..n).map(|i| a.at(i, i)).collect();
        let mut x = vec![C64::ZERO; n];
        let stats = bicgstab_precond(
            &a,
            &JacobiPrecond(diag),
            &b,
            &mut x,
            IterConfig {
                tol: 1e-9,
                max_iters: 1000,
            },
        );
        assert!(stats.converged);
        let mut ax = vec![C64::ZERO; n];
        a.matvec(&x, &mut ax);
        let true_res = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (*u - *v).norm_sqr())
            .sum::<f64>()
            .sqrt()
            / norm2(&b);
        assert!(true_res < 1e-8, "true residual {true_res}");
    }
}
