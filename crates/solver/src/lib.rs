//! # ffw-solver
//!
//! Iterative forward engines over abstract linear operators: BiCGStab (the
//! paper's forward solver), CG, CGNR, the convergent Born-series fixed-point
//! engine, and the forward-scattering system `A = I - G0 diag(O)` together
//! with its adjoint (via the complex-symmetry of the Green's operator).
//!
//! Callers outside this crate pick an engine through the [`ForwardBackend`]
//! trait and [`make_backend`] — not by naming a solver function.

#![warn(missing_docs)]

pub mod backend;
pub mod block;
pub mod bornseries;
pub mod forward;
pub mod gmres;
pub mod krylov;
pub mod op;
pub mod precond;
pub mod verify;

pub use backend::{
    estimate_g0_norm, make_backend, make_backend_guarded, max_object_abs, BackendChoice,
    BackendError, BicgstabBackend, ForwardBackend, KAPPA_LIMIT, NORM_ESTIMATE_ITERS,
    NORM_ESTIMATE_SEED,
};
pub use block::{bicgstab_block, bicgstab_block_guarded, bicgstab_guarded};
pub use bornseries::{choose_gamma, BornSeriesBackend};
pub use forward::{
    g0_adjoint_apply, g0_adjoint_apply_block, solve_adjoint, solve_adjoint_block, solve_forward,
    solve_forward_block, AdjointScatteringOp, ScatteringOp,
};
pub use gmres::{gmres, gmres_checked};
pub use krylov::{
    bicgstab, bicgstab_checked, cg, cgnr, BreakdownKind, IterConfig, SolveError, SolveStats,
};
pub use op::{BlockLinOp, CountingOp, DiagonalOp, FnOp, IdentityOp, LinOp};
pub use precond::{bicgstab_precond, IdentityPrecond, JacobiPrecond, Precond};
pub use verify::{
    flip_panel_bit, flip_panel_bit_detectable, ComputeInjector, DriftGuard, VerifiedBlockOp,
    VerifyConfig, DEFAULT_CHECKSUM_REL_TOL, DEFAULT_DRIFT_PERIOD, DEFAULT_DRIFT_REL_TOL,
    DEFAULT_VERIFY_PERIOD,
};
