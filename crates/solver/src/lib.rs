//! # ffw-solver
//!
//! Iterative Krylov solvers over abstract linear operators: BiCGStab (the
//! paper's forward solver), CG, CGNR, and the forward-scattering system
//! `A = I - G0 diag(O)` together with its adjoint (via the complex-symmetry
//! of the Green's operator).

#![warn(missing_docs)]

pub mod block;
pub mod forward;
pub mod gmres;
pub mod krylov;
pub mod op;
pub mod precond;

pub use block::bicgstab_block;
pub use forward::{
    g0_adjoint_apply, g0_adjoint_apply_block, solve_adjoint, solve_adjoint_block, solve_forward,
    solve_forward_block, AdjointScatteringOp, ScatteringOp,
};
pub use gmres::{gmres, gmres_checked};
pub use krylov::{
    bicgstab, bicgstab_checked, cg, cgnr, BreakdownKind, IterConfig, SolveError, SolveStats,
};
pub use op::{BlockLinOp, CountingOp, DiagonalOp, FnOp, IdentityOp, LinOp};
pub use precond::{bicgstab_precond, IdentityPrecond, JacobiPrecond, Precond};
