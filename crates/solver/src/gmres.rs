//! Restarted GMRES(m) — an alternative forward solver.
//!
//! The paper chooses BiCGStab; GMRES is the standard comparison point in the
//! integral-equation literature (monotone residual, 1 matvec/iteration, but
//! `O(m)` vector storage and `O(m^2)` orthogonalization per cycle). Provided
//! for the solver-choice ablation benchmark.

use crate::krylov::{BreakdownKind, IterConfig, SolveError, SolveStats};
use crate::op::LinOp;
use ffw_numerics::vecops::{norm2, zdotc};
use ffw_numerics::{c64, C64};

fn finite_c(v: C64) -> bool {
    v.re.is_finite() && v.im.is_finite()
}

/// GMRES core with non-finite guards. Returns the stats plus a breakdown
/// flag; on breakdown `x` keeps the last finite iterate (a non-finite
/// correction is discarded rather than applied).
fn gmres_guarded<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    restart: usize,
    cfg: IterConfig,
) -> (SolveStats, bool) {
    let _span = ffw_obs::span("solver.gmres");
    let out = gmres_guarded_inner(a, b, x, restart, cfg);
    if ffw_obs::enabled() {
        ffw_obs::counter("solver.gmres.solves").inc();
        ffw_obs::counter("solver.gmres.iters").add(out.0.iterations as u64);
        ffw_obs::counter("solver.gmres.matvecs").add(out.0.matvecs as u64);
        ffw_obs::histogram("solver.gmres.iters_per_solve").record(out.0.iterations as u64);
        if out.1 {
            ffw_obs::event(
                "solver.breakdown",
                &format!(
                    "gmres: non-finite after {} iterations, residual {:.3e}",
                    out.0.iterations, out.0.rel_residual
                ),
            );
        }
    }
    out
}

fn gmres_guarded_inner<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    restart: usize,
    cfg: IterConfig,
) -> (SolveStats, bool) {
    let n = b.len();
    assert_eq!(x.len(), n);
    let m = restart.max(1);
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return (
            SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: 0,
                rel_residual: 0.0,
                converged: true,
            },
            false,
        );
    }
    let mut matvecs = 0usize;
    let mut total_iters = 0usize;
    let mut res = f64::INFINITY;
    let mut broke = false;

    'outer: while total_iters < cfg.max_iters {
        // r = b - A x
        let mut r = vec![C64::ZERO; n];
        a.apply(x, &mut r);
        matvecs += 1;
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = *bi - *ri;
        }
        let beta = norm2(&r);
        if !beta.is_finite() {
            broke = true;
            break 'outer;
        }
        let cycle_res = beta / b_norm;
        res = cycle_res;
        if res < cfg.tol {
            return (
                SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: total_iters,
                    matvecs,
                    rel_residual: res,
                    converged: true,
                },
                false,
            );
        }
        // Arnoldi with modified Gram-Schmidt and Givens rotations
        let mut v: Vec<Vec<C64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|&c| c / beta).collect());
        let mut h = vec![vec![C64::ZERO; m]; m + 1]; // h[i][j]
        let mut cs = vec![C64::ZERO; m];
        let mut sn = vec![C64::ZERO; m];
        let mut g = vec![C64::ZERO; m + 1];
        g[0] = c64(beta, 0.0);
        let mut k_used = 0usize;
        for j in 0..m {
            if total_iters >= cfg.max_iters {
                break;
            }
            let mut w = vec![C64::ZERO; n];
            a.apply(&v[j], &mut w);
            matvecs += 1;
            total_iters += 1;
            for (i, vi) in v.iter().enumerate().take(j + 1) {
                let hij = zdotc(vi, &w);
                h[i][j] = hij;
                for (wk, vk) in w.iter_mut().zip(vi) {
                    *wk -= hij * *vk;
                }
            }
            let hw = norm2(&w);
            if !hw.is_finite() {
                // The j-th column is poisoned; solve over the finite prefix.
                broke = true;
                break;
            }
            h[j + 1][j] = c64(hw, 0.0);
            // apply existing Givens rotations to the new column
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i].conj() * h[i][j] + cs[i].conj() * h[i + 1][j];
                h[i][j] = t;
            }
            // new rotation to zero h[j+1][j]
            let (c_j, s_j) = givens(h[j][j], h[j + 1][j]);
            cs[j] = c_j;
            sn[j] = s_j;
            h[j][j] = c_j * h[j][j] + s_j * h[j + 1][j];
            h[j + 1][j] = C64::ZERO;
            g[j + 1] = -s_j.conj() * g[j];
            g[j] = c_j * g[j];
            k_used = j + 1;
            let res_new = g[j + 1].abs() / b_norm;
            if !res_new.is_finite() {
                broke = true;
                break;
            }
            res = res_new;
            ffw_obs::series_push("solver.gmres.residual", res);
            if res < cfg.tol || hw < 1e-300 {
                break;
            }
            v.push(w.iter().map(|&c| c / hw).collect());
        }
        // back-substitute y from the k_used x k_used triangular system
        let k = k_used;
        let mut y = vec![C64::ZERO; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for j in i + 1..k {
                acc -= h[i][j] * y[j];
            }
            y[i] = acc / h[i][i];
        }
        if y.iter().all(|c| finite_c(*c)) {
            for (j, yj) in y.iter().enumerate() {
                for (xi, vj) in x.iter_mut().zip(&v[j]) {
                    *xi += *yj * *vj;
                }
            }
        } else {
            // A singular (or exhausted) least-squares system: applying the
            // update would poison x, and the projected residual `res` no
            // longer describes any reachable iterate. Keep the cycle-start
            // values instead.
            broke = true;
            res = cycle_res;
        }
        if broke {
            break 'outer;
        }
        if res < cfg.tol {
            return (
                SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: total_iters,
                    matvecs,
                    rel_residual: res,
                    converged: true,
                },
                false,
            );
        }
    }
    (
        SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: total_iters,
            matvecs,
            rel_residual: res,
            converged: !broke && res < cfg.tol,
        },
        broke,
    )
}

/// Restarted GMRES with Krylov dimension `restart`. Counts `iterations` as
/// inner iterations (matvecs after the initial residual).
///
/// On a NaN/Inf breakdown this returns honest unconverged stats with `x`
/// left at the last finite iterate. Use [`gmres_checked`] to get a typed
/// error (with one automatic restart) instead.
pub fn gmres<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    restart: usize,
    cfg: IterConfig,
) -> SolveStats {
    gmres_guarded(a, b, x, restart, cfg).0
}

/// GMRES with typed breakdown reporting: on a NaN/Inf breakdown the solve
/// restarts once from the last finite iterate, and surfaces
/// [`SolveError::Breakdown`] only if the restarted run breaks down too. The
/// iteration budget in `cfg` is shared across both runs.
pub fn gmres_checked<A: LinOp + ?Sized>(
    a: &A,
    b: &[C64],
    x: &mut [C64],
    restart: usize,
    cfg: IterConfig,
) -> Result<SolveStats, SolveError> {
    let (first, broke) = gmres_guarded(a, b, x, restart, cfg);
    if !broke {
        return Ok(first);
    }
    let remaining = IterConfig {
        tol: cfg.tol,
        max_iters: cfg.max_iters.saturating_sub(first.iterations),
    };
    ffw_obs::event(
        "solver.restart",
        &format!("gmres restart after breakdown at iter {}", first.iterations),
    );
    if remaining.max_iters == 0 {
        return Err(SolveError::Breakdown {
            kind: BreakdownKind::NonFinite,
            iterations: first.iterations,
            matvecs: first.matvecs,
            rel_residual: first.rel_residual,
            restarts: 0,
        });
    }
    let (second, broke2) = gmres_guarded(a, b, x, restart, remaining);
    let stats = SolveStats {
        verify_matvecs: 0,
        rolled_back: 0,
        iterations: first.iterations + second.iterations,
        matvecs: first.matvecs + second.matvecs,
        rel_residual: second.rel_residual,
        converged: second.converged,
    };
    if broke2 {
        return Err(SolveError::Breakdown {
            kind: BreakdownKind::NonFinite,
            iterations: stats.iterations,
            matvecs: stats.matvecs,
            rel_residual: stats.rel_residual,
            restarts: 1,
        });
    }
    Ok(stats)
}

/// Complex Givens rotation zeroing `b` in `(a, b)`.
fn givens(a: C64, b: C64) -> (C64, C64) {
    let bm = b.abs();
    if bm == 0.0 {
        return (C64::ONE, C64::ZERO);
    }
    let am = a.abs();
    if am == 0.0 {
        return (C64::ZERO, C64::ONE);
    }
    let d = (am * am + bm * bm).sqrt();
    let c = c64(am / d, 0.0);
    // s = (a/|a|) conj(b) / d
    let s = (a / am) * b.conj() / d;
    (c, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::vecops::rel_diff;

    fn random_mat(n: usize, seed: u64, boost: f64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |r, c| {
            let mut v = c64(next(), next());
            if r == c {
                v += boost;
            }
            v
        })
    }

    #[test]
    fn full_gmres_solves_exactly_in_n_steps() {
        let n = 20;
        let a = random_mat(n, 2, 3.0);
        let x_true: Vec<C64> = (0..n).map(|i| c64(i as f64 * 0.3, 1.0)).collect();
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = gmres(
            &a,
            &b,
            &mut x,
            n,
            IterConfig {
                tol: 1e-12,
                max_iters: 200,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(stats.iterations <= n, "at most n inner iterations");
        assert!(rel_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn restarted_gmres_converges() {
        let n = 50;
        let a = random_mat(n, 5, 5.0);
        let x_true: Vec<C64> = (0..n).map(|i| c64(-0.2 * i as f64, 0.7)).collect();
        let mut b = vec![C64::ZERO; n];
        a.matvec(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = gmres(
            &a,
            &b,
            &mut x,
            10,
            IterConfig {
                tol: 1e-10,
                max_iters: 1000,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(rel_diff(&x, &x_true) < 1e-7);
    }

    #[test]
    fn residual_reporting_is_truthful() {
        let n = 30;
        let a = random_mat(n, 11, 4.0);
        let b: Vec<C64> = (0..n).map(|i| c64(1.0, 0.2 * i as f64)).collect();
        let mut x = vec![C64::ZERO; n];
        let stats = gmres(
            &a,
            &b,
            &mut x,
            15,
            IterConfig {
                tol: 1e-9,
                max_iters: 500,
            },
        );
        assert!(stats.converged);
        let mut ax = vec![C64::ZERO; n];
        a.matvec(&x, &mut ax);
        let true_res = ax
            .iter()
            .zip(&b)
            .map(|(u, v)| (*u - *v).norm_sqr())
            .sum::<f64>()
            .sqrt()
            / norm2(&b);
        assert!(
            true_res <= stats.rel_residual * 10.0 + 1e-12,
            "true {true_res} vs reported {}",
            stats.rel_residual
        );
    }

    #[test]
    fn singular_operator_surfaces_typed_breakdown() {
        // The zero operator makes the projected triangular system singular
        // (h[0][0] = 0), so the correction y = g / h is infinite. The old
        // code applied it anyway, poisoning x, and then reported the
        // projected residual (0) as converged.
        let n = 6;
        let zero_op = crate::op::FnOp::new(n, n, |_v: &[C64], out: &mut [C64]| {
            out.iter_mut().for_each(|o| *o = C64::ZERO);
        });
        let b: Vec<C64> = (0..n).map(|i| c64(1.0 + i as f64, -0.5)).collect();

        let mut x = vec![C64::ZERO; n];
        let err = gmres_checked(&zero_op, &b, &mut x, 4, IterConfig::default())
            .expect_err("singular operator must surface a typed breakdown");
        let SolveError::Breakdown { kind, restarts, .. } = err;
        assert_eq!(kind, BreakdownKind::NonFinite);
        assert_eq!(restarts, 1);
        assert!(x.iter().all(|v| v.re.is_finite() && v.im.is_finite()));

        let mut x2 = vec![C64::ZERO; n];
        let stats = gmres(&zero_op, &b, &mut x2, 4, IterConfig::default());
        assert!(!stats.converged, "{stats:?}");
        assert!(stats.rel_residual.is_finite());
        assert!(x2.iter().all(|v| v.re.is_finite() && v.im.is_finite()));
    }

    #[test]
    fn zero_rhs() {
        let a = random_mat(8, 13, 4.0);
        let b = vec![C64::ZERO; 8];
        let mut x: Vec<C64> = (0..8).map(|i| c64(i as f64, 0.0)).collect();
        let stats = gmres(&a, &b, &mut x, 4, IterConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|v| v.abs() == 0.0));
    }
}
