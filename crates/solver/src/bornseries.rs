//! The convergent (preconditioned) Born-series forward engine.
//!
//! The plain Born series `phi_{n+1} = G0 diag(O) phi_n + phi_inc` is the
//! Richardson fixed-point iteration for `A phi = phi_inc` with
//! `A = I - G0 diag(O)`; it diverges as soon as `||G0 diag(O)|| >= 1`. The
//! *convergent* variant (Lee–Hugonnet–Park; Osnabrugge et al.) restores
//! convergence with a relaxation preconditioner `gamma`:
//!
//! ```text
//! phi_{n+1} = phi_n + gamma (G0 diag(O) phi_n + phi_inc - phi_n)
//!           = phi_n + gamma (phi_inc - A phi_n)
//! ```
//!
//! whose residual obeys `r_{n+1} = (I - gamma A) r_n`, so the iteration is a
//! contraction whenever `||I - gamma A|| <= |1 - gamma| + gamma kappa < 1`
//! with `kappa = ||G0 diag(O)|| <= ||G0|| * max|O|`. The bound is checked at
//! *build* time: [`BornSeriesBackend::new`] returns a typed
//! [`BackendError::ContrastTooHigh`] instead of ever iterating a divergent
//! series. Over the admissible region `gamma in (0, 1]` the bound
//! `|1 - gamma| + gamma kappa = 1 - gamma (1 - kappa)` is strictly
//! decreasing in `gamma`, so [`choose_gamma`] returns the bound-optimal
//! `gamma = 1` (rate `kappa`); the function stays a real code path (and
//! returns a complex scalar) so a future medium-dependent preconditioner —
//! e.g. Osnabrugge's `gamma = i V / eps` scaling — drops in without touching
//! the iteration.
//!
//! No Krylov recurrence means no inner products and no breakdown modes: each
//! iteration is one fused [`BlockLinOp::apply_block`] panel plus axpys, so
//! the engine parallelizes embarrassingly over illuminations — the paper's
//! first parallel dimension — and its per-column trajectory is bit-identical
//! at every panel width and thread count.

use crate::backend::{BackendError, ForwardBackend, KAPPA_LIMIT};
use crate::block::{apply_cols, residual_drift};
use crate::forward::{AdjointScatteringOp, ScatteringOp};
use crate::krylov::{IterConfig, SolveStats};
use crate::op::BlockLinOp;
use crate::verify::DriftGuard;
use ffw_numerics::vecops::norm2;
use ffw_numerics::{c64, C64};

/// The bound-optimal relaxation for a measured contrast bound `kappa`.
///
/// Minimizes `f(gamma) = |1 - gamma| + gamma * kappa` over `gamma > 0`:
/// for `gamma <= 1`, `f = 1 - gamma (1 - kappa)` decreases in `gamma`; for
/// `gamma >= 1`, `f = gamma (1 + kappa) - 1` increases — so the minimum sits
/// at `gamma = 1` with value `kappa`, for every `kappa < 1`. Damping
/// (`gamma < 1`) buys no robustness: the convergence condition stays
/// `kappa < 1` for any `gamma in (0, 1]`, only the rate degrades.
pub fn choose_gamma(kappa: f64) -> C64 {
    debug_assert!(kappa.is_finite());
    let _ = kappa;
    c64(1.0, 0.0)
}

/// The convergent Born-series engine bound to one `(G0, object)` pair.
///
/// Construction *is* admission: the contrast bound
/// `kappa = g0_norm * max|O|` is evaluated against [`KAPPA_LIMIT`] and an
/// over-contrast object is rejected with a typed error before any iteration
/// runs — the spectral radius of the iteration map is below 1 by
/// construction for every solve this backend will ever perform.
pub struct BornSeriesBackend<'a, G: BlockLinOp + ?Sized> {
    g0: &'a G,
    object: &'a [C64],
    gamma: C64,
    kappa: f64,
    guard: Option<&'a DriftGuard>,
}

impl<'a, G: BlockLinOp + ?Sized> BornSeriesBackend<'a, G> {
    /// Builds the engine, checking the contrast bound. `g0_norm` comes from
    /// [`crate::backend::estimate_g0_norm`] (a per-run constant); `max|O|`
    /// is taken from the current object.
    pub fn new(g0: &'a G, object: &'a [C64], g0_norm: f64) -> Result<Self, BackendError> {
        assert_eq!(g0.dim_in(), object.len());
        assert_eq!(g0.dim_out(), object.len());
        let kappa = g0_norm * crate::backend::max_object_abs(object);
        // >= also catches a NaN kappa (e.g. a poisoned norm estimate):
        // anything that is not provably a contraction is rejected.
        if kappa >= KAPPA_LIMIT || kappa.is_nan() {
            return Err(BackendError::ContrastTooHigh {
                kappa,
                limit: KAPPA_LIMIT,
            });
        }
        Ok(BornSeriesBackend {
            g0,
            object,
            gamma: choose_gamma(kappa),
            kappa,
            guard: None,
        })
    }

    /// Attaches a [`DriftGuard`]: every solve audits the recursive residual
    /// against the true `b - A x` every [`DriftGuard::period`] steps and at
    /// every would-be convergence, rolling back to the last verified iterate
    /// on divergence. Clean-run trajectories are unchanged bit-for-bit.
    pub fn with_guard(mut self, guard: &'a DriftGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// The admitted contraction bound `||G0|| * max|O|` (< [`KAPPA_LIMIT`]).
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The relaxation scalar in use.
    pub fn gamma(&self) -> C64 {
        self.gamma
    }
}

impl<G: BlockLinOp + ?Sized> ForwardBackend for BornSeriesBackend<'_, G> {
    fn name(&self) -> &'static str {
        crate::backend::BackendChoice::BornSeries.as_str()
    }
    fn solve(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
        let a = ScatteringOp::new(self.g0, self.object);
        let mut xs = vec![x.to_vec()];
        let stats = richardson_impl(&a, self.gamma, &[b], &mut xs, cfg, self.guard);
        x.copy_from_slice(&xs[0]);
        stats.into_iter().next().expect("one column")
    }
    fn solve_adjoint(&self, b: &[C64], x: &mut [C64], cfg: IterConfig) -> SolveStats {
        let a = AdjointScatteringOp::new(self.g0, self.object);
        // (I - gamma' A^H)^H = I - conj(gamma') A: taking gamma' = conj(gamma)
        // gives the adjoint sweep the same contraction norm as the forward one.
        let mut xs = vec![x.to_vec()];
        let stats = richardson_impl(&a, self.gamma.conj(), &[b], &mut xs, cfg, self.guard);
        x.copy_from_slice(&xs[0]);
        stats.into_iter().next().expect("one column")
    }
    fn solve_block(&self, bs: &[&[C64]], xs: &mut [Vec<C64>], cfg: IterConfig) -> Vec<SolveStats> {
        let a = ScatteringOp::new(self.g0, self.object);
        richardson_impl(&a, self.gamma, bs, xs, cfg, self.guard)
    }
    fn solve_adjoint_block(
        &self,
        bs: &[&[C64]],
        xs: &mut [Vec<C64>],
        cfg: IterConfig,
    ) -> Vec<SolveStats> {
        let a = AdjointScatteringOp::new(self.g0, self.object);
        richardson_impl(&a, self.gamma.conj(), bs, xs, cfg, self.guard)
    }
}

/// Drift-guard snapshot for the Richardson recurrence: the full per-column
/// state is `(x, r)` plus the scalars needed to freeze honestly after a
/// rollback. Every snapshot is a top-of-loop state.
struct BornSnap {
    x: Vec<C64>,
    r: Vec<C64>,
    res: f64,
    iters: usize,
    matvecs: usize,
}

/// Lockstep relaxed-Richardson iteration over a panel of right-hand sides,
/// with per-RHS convergence masking (mirroring [`crate::bicgstab_block`]'s
/// freeze discipline): per step, `x += gamma r`, `r -= gamma (A r)`, using
/// one fused block apply over the still-active columns.
///
/// Per-column arithmetic never mixes columns, so every column's trajectory
/// is bit-identical to a width-1 solve of that column alone. Stats follow
/// the workspace-wide meaning: `iterations` counts update steps reflected
/// in the returned iterate, `matvecs` counts operator applies (one up-front
/// residual apply plus one per iteration), `verify_matvecs` counts drift
/// audits plus rollback-discarded applies, `rolled_back` counts discarded
/// update steps. With a [`DriftGuard`] attached, the iteration audits the
/// recursive residual against the true `b - A x` every `period` steps and
/// at every would-be convergence; a clean run's trajectory is unchanged.
fn richardson_impl<A: BlockLinOp + ?Sized>(
    a: &A,
    gamma: C64,
    bs: &[&[C64]],
    xs: &mut [Vec<C64>],
    cfg: IterConfig,
    guard: Option<&DriftGuard>,
) -> Vec<SolveStats> {
    let nb = bs.len();
    assert_eq!(xs.len(), nb, "solution block width mismatch");
    if nb == 0 {
        return Vec::new();
    }
    let n = a.dim_in();
    assert_eq!(a.dim_out(), n);
    for (b, x) in bs.iter().zip(xs.iter()) {
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
    }
    let _span = ffw_obs::span("solver.born");
    if ffw_obs::enabled() {
        ffw_obs::histogram("solver.born.panel_width").record(nb as u64);
    }

    let mut stats: Vec<Option<SolveStats>> = vec![None; nb];
    let mut b_norm = vec![0.0f64; nb];
    let mut iters = vec![0usize; nb];
    let mut matvecs = vec![0usize; nb];
    let mut verify_mv = vec![0usize; nb];
    let mut rolled = vec![0usize; nb];
    let mut rollbacks = vec![0u32; nb];
    let mut res = vec![0.0f64; nb];
    let mut r: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut ar: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; nb];
    let mut snaps: Vec<Option<BornSnap>> = (0..nb).map(|_| None).collect();

    // Zero right-hand sides are solved exactly by x = 0 (scalar semantics,
    // shared with the Krylov backend).
    let mut live: Vec<usize> = Vec::with_capacity(nb);
    for c in 0..nb {
        b_norm[c] = norm2(bs[c]);
        if b_norm[c] == 0.0 {
            xs[c].iter_mut().for_each(|v| *v = C64::ZERO);
            stats[c] = Some(SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: 0,
                rel_residual: 0.0,
                converged: true,
            });
        } else {
            live.push(c);
        }
    }

    // Fresh residuals r = b - A x, one fused apply over all live columns.
    apply_cols(a, &live, xs, &mut r);
    let mut active: Vec<usize> = Vec::with_capacity(live.len());
    for &c in &live {
        matvecs[c] += 1;
        for i in 0..n {
            r[c][i] = bs[c][i] - r[c][i];
        }
        res[c] = norm2(&r[c]) / b_norm[c];
        if !res[c].is_finite() {
            ffw_obs::event(
                "solver.breakdown",
                &format!("born column {c}: initial residual is not finite"),
            );
            stats[c] = Some(SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: matvecs[c],
                rel_residual: f64::NAN,
                converged: false,
            });
            continue;
        }
        ffw_obs::series_push("solver.born.residual", res[c]);
        if res[c] < cfg.tol {
            stats[c] = Some(SolveStats {
                verify_matvecs: 0,
                rolled_back: 0,
                iterations: 0,
                matvecs: matvecs[c],
                rel_residual: res[c],
                converged: true,
            });
            continue;
        }
        if guard.is_some() {
            // Baseline snapshot: the residual above *is* the true residual
            // by construction, so this state is verified for free.
            snaps[c] = Some(BornSnap {
                x: xs[c].clone(),
                r: r[c].clone(),
                res: res[c],
                iters: iters[c],
                matvecs: matvecs[c],
            });
        }
        active.push(c);
    }

    while !active.is_empty() {
        // Budget check; columns freezing here skip the fused apply.
        let mut in_budget = Vec::with_capacity(active.len());
        for &c in &active {
            if iters[c] >= cfg.max_iters {
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res[c],
                    converged: false,
                });
            } else {
                in_budget.push(c);
            }
        }
        active = in_budget;
        if active.is_empty() {
            break;
        }

        // ar = A r, fused over the active columns, then per column:
        // x += gamma r;  r -= gamma ar  (i.e. r_{n+1} = (I - gamma A) r_n).
        apply_cols(a, &active, &r, &mut ar);
        let mut still_active = Vec::with_capacity(active.len());
        for &c in &active {
            matvecs[c] += 1;
            iters[c] += 1;
            for i in 0..n {
                xs[c][i] += gamma * r[c][i];
                r[c][i] -= gamma * ar[c][i];
            }
            let res_new = norm2(&r[c]) / b_norm[c];
            if !res_new.is_finite() {
                // The update itself used the (finite) previous residual, so
                // the iterate is finite and keeps its `iters[c]` updates —
                // only the *recurrence* went non-finite. Freeze honestly at
                // the last finite residual.
                ffw_obs::event(
                    "solver.breakdown",
                    &format!(
                        "born column {c}: residual became non-finite at iter {}",
                        iters[c]
                    ),
                );
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res[c],
                    converged: false,
                });
                continue;
            }
            res[c] = res_new;
            ffw_obs::series_push("solver.born.residual", res_new);
            let converging = res_new < cfg.tol;
            if let Some(g) = guard {
                // Audit at every would-be convergence, plus every `period`
                // accepted steps. On pass the audit only refreshes the
                // snapshot — the trajectory stays bit-identical to the
                // unguarded run.
                if converging || iters[c].is_multiple_of(g.period) {
                    let drift = residual_drift(a, bs[c], &xs[c], &r[c], b_norm[c]);
                    verify_mv[c] += 1;
                    if drift > g.rel_tol {
                        g.record_detected();
                        let snap = snaps[c].as_ref().expect("guarded column has snapshot");
                        verify_mv[c] += matvecs[c] - snap.matvecs;
                        matvecs[c] = snap.matvecs;
                        rolled[c] += iters[c] - snap.iters;
                        xs[c].copy_from_slice(&snap.x);
                        r[c].copy_from_slice(&snap.r);
                        res[c] = snap.res;
                        iters[c] = snap.iters;
                        if rollbacks[c] < g.max_rollbacks {
                            rollbacks[c] += 1;
                            g.record_rollback((rolled[c]) as u64);
                            // Replay from the restored top-of-loop state.
                            still_active.push(c);
                        } else {
                            g.record_escalated();
                            ffw_obs::event(
                                "solver.breakdown",
                                &format!(
                                    "born column {c}: residual drift persists after                                      {} rollback(s); surfacing unconverged",
                                    g.max_rollbacks
                                ),
                            );
                            stats[c] = Some(SolveStats {
                                verify_matvecs: verify_mv[c],
                                rolled_back: rolled[c],
                                iterations: iters[c],
                                matvecs: matvecs[c],
                                rel_residual: res[c],
                                converged: false,
                            });
                        }
                        continue;
                    }
                    snaps[c] = Some(BornSnap {
                        x: xs[c].clone(),
                        r: r[c].clone(),
                        res: res[c],
                        iters: iters[c],
                        matvecs: matvecs[c],
                    });
                }
            }
            if converging {
                stats[c] = Some(SolveStats {
                    verify_matvecs: verify_mv[c],
                    rolled_back: rolled[c],
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res_new,
                    converged: true,
                });
                continue;
            }
            still_active.push(c);
        }
        active = still_active;
    }

    let out: Vec<SolveStats> = stats
        .into_iter()
        .map(|s| s.expect("every column finalized"))
        .collect();
    if ffw_obs::enabled() {
        for st in &out {
            ffw_obs::counter("solver.born.solves").inc();
            ffw_obs::counter("solver.born.iters").add(st.iterations as u64);
            ffw_obs::counter("solver.born.matvecs").add(st.matvecs as u64);
            ffw_obs::histogram("solver.born.iters_per_solve").record(st.iterations as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{estimate_g0_norm, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED};
    use crate::op::LinOp;
    use ffw_numerics::linalg::Matrix;
    use ffw_numerics::vecops::rel_diff;

    fn symmetric_g0(n: usize, seed: u64, scale: f64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            scale * (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5)
        };
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in r..n {
                let v = c64(next(), next());
                *m.at_mut(r, c) = v;
                *m.at_mut(c, r) = v;
            }
        }
        m
    }

    fn random_vec(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                let mut next = || {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                };
                c64(next(), next())
            })
            .collect()
    }

    fn admissible_problem(n: usize, seed: u64) -> (Matrix, Vec<C64>, f64) {
        let g0 = symmetric_g0(n, seed, 0.25);
        let g0_norm = estimate_g0_norm(&g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED);
        // scale the object so kappa lands around 0.5
        let raw = random_vec(n, seed ^ 0xfeed);
        let max_raw = raw.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let object: Vec<C64> = raw
            .iter()
            .map(|v| *v * (0.5 / (g0_norm * max_raw)))
            .collect();
        (g0, object, g0_norm)
    }

    #[test]
    fn gamma_one_minimizes_the_contraction_bound() {
        // f(gamma) = |1-gamma| + gamma*kappa over a fine grid: gamma = 1 is
        // the argmin for every admissible kappa.
        for kappa in [0.0, 0.2, 0.5, 0.9, 0.949] {
            let g = choose_gamma(kappa);
            assert_eq!(g, c64(1.0, 0.0));
            let bound = |gamma: f64| (1.0 - gamma).abs() + gamma * kappa;
            let at_one = bound(1.0);
            for k in 1..=200 {
                let gamma = 0.01 * k as f64; // (0, 2]
                assert!(
                    at_one <= bound(gamma) + 1e-15,
                    "gamma=1 not optimal vs {gamma} at kappa {kappa}"
                );
            }
            assert!((at_one - kappa).abs() < 1e-15, "optimal rate is kappa");
        }
    }

    #[test]
    fn born_series_solves_the_forward_system() {
        let n = 32;
        let (g0, object, g0_norm) = admissible_problem(n, 3);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let a = ScatteringOp::new(&g0, &object);
        let x_true = random_vec(n, 17);
        let mut b = vec![C64::ZERO; n];
        a.apply(&x_true, &mut b);
        let mut x = vec![C64::ZERO; n];
        let stats = backend.solve(
            &b,
            &mut x,
            IterConfig {
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(
            rel_diff(&x, &x_true) < 1e-10,
            "err {}",
            rel_diff(&x, &x_true)
        );
        assert_eq!(stats.matvecs, stats.iterations + 1);
    }

    #[test]
    fn adjoint_solve_satisfies_the_inner_product_identity() {
        // <A^{-1} b, c> == <b, A^{-H} c>
        let n = 24;
        let (g0, object, g0_norm) = admissible_problem(n, 9);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let cfg = IterConfig {
            tol: 1e-13,
            max_iters: 800,
        };
        let b = random_vec(n, 21);
        let c = random_vec(n, 23);
        let mut x = vec![C64::ZERO; n];
        assert!(backend.solve(&b, &mut x, cfg).converged);
        let mut z = vec![C64::ZERO; n];
        assert!(backend.solve_adjoint(&c, &mut z, cfg).converged);
        let lhs = ffw_numerics::vecops::zdotc(&x, &c);
        let rhs = ffw_numerics::vecops::zdotc(&b, &z);
        assert!(
            (lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()),
            "{lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 28;
        let (g0, object, g0_norm) = admissible_problem(n, 31);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let a = ScatteringOp::new(&g0, &object);
        let x_true = random_vec(n, 33);
        let mut b = vec![C64::ZERO; n];
        a.apply(&x_true, &mut b);
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 500,
        };
        let mut cold = vec![C64::ZERO; n];
        let cold_stats = backend.solve(&b, &mut cold, cfg);
        let mut warm: Vec<C64> = x_true.iter().map(|v| *v * 1.0001).collect();
        let warm_stats = backend.solve(&b, &mut warm, cfg);
        assert!(warm_stats.converged && cold_stats.converged);
        assert!(warm_stats.iterations < cold_stats.iterations);
    }

    #[test]
    fn zero_rhs_short_circuits_like_the_krylov_backend() {
        let n = 12;
        let (g0, object, g0_norm) = admissible_problem(n, 41);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let b = vec![C64::ZERO; n];
        let mut x = random_vec(n, 43);
        let stats = backend.solve(&b, &mut x, IterConfig::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.matvecs, 0);
        assert!(x.iter().all(|v| v.abs() == 0.0));
    }

    #[test]
    fn block_columns_are_bit_identical_to_scalar_solves() {
        let n = 26;
        let (g0, object, g0_norm) = admissible_problem(n, 51);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let cfg = IterConfig {
            tol: 1e-11,
            max_iters: 400,
        };
        let bs: Vec<Vec<C64>> = (0..5).map(|i| random_vec(n, 100 + i)).collect();
        let b_refs: Vec<&[C64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut xs = vec![vec![C64::ZERO; n]; 5];
        let block = backend.solve_block(&b_refs, &mut xs, cfg);
        for (c, b) in bs.iter().enumerate() {
            let mut x_scalar = vec![C64::ZERO; n];
            let scalar = backend.solve(b, &mut x_scalar, cfg);
            assert_eq!(block[c], scalar, "column {c} stats");
            assert_eq!(xs[c], x_scalar, "column {c} iterate");
        }
    }

    #[test]
    fn empty_block_is_a_noop() {
        let (g0, object, g0_norm) = admissible_problem(8, 61);
        let backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let stats = backend.solve_block(&[], &mut [], IterConfig::default());
        assert!(stats.is_empty());
    }

    #[test]
    fn guarded_clean_run_is_bit_identical_and_audited() {
        // Drift audits only read the recurrence, so a fault-free guarded
        // sweep reproduces the unguarded trajectory bit-for-bit while
        // charging its audit applies to `verify_matvecs`.
        let n = 26;
        let (g0, object, g0_norm) = admissible_problem(n, 71);
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 400,
        };
        let bs: Vec<Vec<C64>> = (0..3).map(|i| random_vec(n, 200 + i)).collect();
        let b_refs: Vec<&[C64]> = bs.iter().map(|b| b.as_slice()).collect();
        let plain_backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let mut xs_plain = vec![vec![C64::ZERO; n]; 3];
        let plain = plain_backend.solve_block(&b_refs, &mut xs_plain, cfg);
        let guard = crate::verify::DriftGuard::new(8, 1e-8, 2);
        let guarded_backend = BornSeriesBackend::new(&g0, &object, g0_norm)
            .expect("admissible")
            .with_guard(&guard);
        let mut xs_guarded = vec![vec![C64::ZERO; n]; 3];
        let guarded = guarded_backend.solve_block(&b_refs, &mut xs_guarded, cfg);
        assert_eq!(guard.detected(), 0, "clean run must not trip the guard");
        for c in 0..3 {
            assert_eq!(xs_guarded[c], xs_plain[c], "column {c} iterate");
            assert_eq!(guarded[c].iterations, plain[c].iterations);
            assert_eq!(guarded[c].matvecs, plain[c].matvecs);
            assert_eq!(guarded[c].rel_residual, plain[c].rel_residual);
            assert!(guarded[c].converged);
            assert!(guarded[c].verify_matvecs > 0, "column {c} was audited");
            assert_eq!(guarded[c].rolled_back, 0);
        }
    }

    #[test]
    fn transient_corruption_rolls_back_to_a_bit_identical_solve() {
        // One G0 apply returns a wildly wrong vector; all others are clean.
        // The guard detects the drift at the next audit, rolls back to the
        // last verified snapshot, and the replay lands on the exact iterate
        // of a fully clean solve.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 22;
        let (g0, object, g0_norm) = admissible_problem(n, 81);
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 400,
        };
        let b = random_vec(n, 210);
        let clean_backend = BornSeriesBackend::new(&g0, &object, g0_norm).expect("admissible");
        let mut x_clean = vec![C64::ZERO; n];
        let clean = clean_backend.solve(&b, &mut x_clean, cfg);
        assert!(clean.converged);

        let calls = AtomicUsize::new(0);
        let corrupting = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            g0.apply(v, out);
            if calls.fetch_add(1, Ordering::Relaxed) + 1 == 3 {
                out[0] += c64(60.0, -45.0);
            }
        });
        let guard = crate::verify::DriftGuard::new(4, 1e-8, 3);
        let backend = BornSeriesBackend::new(&corrupting, &object, g0_norm)
            .expect("admissible")
            .with_guard(&guard);
        let mut x = vec![C64::ZERO; n];
        let stats = backend.solve(&b, &mut x, cfg);
        assert!(guard.detected() >= 1, "corruption must be detected");
        assert_eq!(guard.escalated(), 0, "transient fault must recover");
        assert!(stats.converged, "{stats:?}");
        assert!(stats.rolled_back >= 1);
        assert_eq!(
            x, x_clean,
            "recovered solve must match the clean solve bit-for-bit"
        );
        assert_eq!(stats.iterations, clean.iterations);
        assert_eq!(stats.matvecs, clean.matvecs);
    }

    #[test]
    fn persistent_corruption_escalates_instead_of_converging() {
        // Call-dependent garbage on every G0 apply after the initial
        // residual: no consistent operator explains the recurrence, every
        // replay re-detects, and the guard escalates once the rollback
        // budget is spent — the solve surfaces unconverged, never wrong.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 18;
        let (g0, object, g0_norm) = admissible_problem(n, 91);
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 200,
        };
        let b = random_vec(n, 220);
        let calls = AtomicUsize::new(0);
        let corrupting = crate::op::FnOp::new(n, n, |v: &[C64], out: &mut [C64]| {
            g0.apply(v, out);
            let k = calls.fetch_add(1, Ordering::Relaxed) + 1;
            if k >= 2 {
                out[0] += c64(5.0 + k as f64, -(k as f64));
            }
        });
        let guard = crate::verify::DriftGuard::new(4, 1e-8, 2);
        let backend = BornSeriesBackend::new(&corrupting, &object, g0_norm)
            .expect("admissible")
            .with_guard(&guard);
        let mut x = vec![C64::ZERO; n];
        let stats = backend.solve(&b, &mut x, cfg);
        assert_eq!(guard.escalated(), 1, "budget exhausted must escalate");
        assert!(!stats.converged, "never report convergence: {stats:?}");
        assert!(
            x.iter().all(|v| v.re.is_finite() && v.im.is_finite()),
            "escalated solve freezes at the last verified iterate"
        );
    }
}
