//! Dense complex LU factorization with partial pivoting.
//!
//! Used for the leaf-block Jacobi preconditioner (the paper's Section VIII
//! future-work item: "preconditioning of the system to address ... resonance
//! and near-resonance frequencies") and as an exact-solve oracle in tests.
//! The blocks are small (64 x 64 leaf self-interactions), so a
//! straightforward `O(n^3)` factorization is the right tool.

use crate::complex::C64;
use crate::linalg::Matrix;

/// An LU factorization `P A = L U` of a square complex matrix.
pub struct LuFactors {
    n: usize,
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Vec<C64>,
    /// Row permutation: `perm[i]` = original row index in position `i`.
    perm: Vec<u32>,
    /// Sign-tracking of the permutation (for determinants).
    swaps: usize,
}

/// Error type for singular matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Pivot column at which factorization broke down.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

impl LuFactors {
    /// Factorizes `a` (consumed as a copy). Fails on (numerically) singular
    /// input.
    pub fn new(a: &Matrix) -> Result<Self, SingularMatrix> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.as_slice().to_vec();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut swaps = 0usize;
        for k in 0..n {
            // partial pivot: largest |entry| in column k at or below row k
            let mut best = k;
            let mut best_mag = lu[k * n + k].norm_sqr();
            for r in k + 1..n {
                let m = lu[r * n + k].norm_sqr();
                if m > best_mag {
                    best = r;
                    best_mag = m;
                }
            }
            if best_mag == 0.0 {
                return Err(SingularMatrix { column: k });
            }
            if best != k {
                for c in 0..n {
                    lu.swap(k * n + c, best * n + c);
                }
                perm.swap(k, best);
                swaps += 1;
            }
            let pivot = lu[k * n + k];
            let inv_pivot = pivot.inv();
            for r in k + 1..n {
                let factor = lu[r * n + k] * inv_pivot;
                lu[r * n + k] = factor;
                if factor.re != 0.0 || factor.im != 0.0 {
                    for c in k + 1..n {
                        let u = lu[k * n + c];
                        lu[r * n + c] -= factor * u;
                    }
                }
            }
        }
        Ok(LuFactors { n, lu, perm, swaps })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    pub fn solve_in_place(&self, b: &mut [C64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // apply permutation: x = P b
        let mut x = vec![C64::ZERO; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[i] = b[p as usize];
        }
        // forward substitution (L unit lower)
        for r in 1..n {
            let mut acc = x[r];
            for (&l, &xc) in self.lu[r * n..r * n + r].iter().zip(x.iter()) {
                acc -= l * xc;
            }
            x[r] = acc;
        }
        // back substitution (U upper)
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (&l, &xc) in self.lu[r * n + r + 1..r * n + n]
                .iter()
                .zip(x[r + 1..].iter())
            {
                acc -= l * xc;
            }
            x[r] = acc / self.lu[r * n + r];
        }
        b.copy_from_slice(&x);
    }

    /// Solves `A x = b` out of place.
    pub fn solve(&self, b: &[C64]) -> Vec<C64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Determinant (product of U diagonal, sign-corrected).
    pub fn det(&self) -> C64 {
        let n = self.n;
        let mut d = if self.swaps.is_multiple_of(2) {
            C64::ONE
        } else {
            -C64::ONE
        };
        for k in 0..n {
            d *= self.lu[k * n + k];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::vecops::rel_diff;

    fn random_mat(n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(n, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn solves_random_systems() {
        for seed in 0..5u64 {
            let n = 17;
            let a = random_mat(n, seed);
            let x_true: Vec<C64> = (0..n).map(|i| c64(i as f64, -0.5 * i as f64)).collect();
            let mut b = vec![C64::ZERO; n];
            a.matvec(&x_true, &mut b);
            let lu = LuFactors::new(&a).expect("nonsingular");
            let x = lu.solve(&b);
            assert!(rel_diff(&x, &x_true) < 1e-10, "seed {seed}");
        }
    }

    #[test]
    fn identity_solves_trivially() {
        let n = 6;
        let a = Matrix::from_fn(n, n, |r, c| if r == c { C64::ONE } else { C64::ZERO });
        let lu = LuFactors::new(&a).expect("identity");
        let b: Vec<C64> = (0..n).map(|i| c64(1.0 + i as f64, 2.0)).collect();
        assert!(rel_diff(&lu.solve(&b), &b) < 1e-15);
        assert!((lu.det() - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn needs_pivoting() {
        // zero on the leading diagonal forces a row swap
        let a = Matrix::from_fn(2, 2, |r, c| match (r, c) {
            (0, 0) => C64::ZERO,
            (0, 1) => c64(1.0, 0.0),
            (1, 0) => c64(2.0, 0.0),
            _ => c64(3.0, 0.0),
        });
        let lu = LuFactors::new(&a).expect("pivot fixes it");
        let x = lu.solve(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        // 0 x0 + 1 x1 = 1; 2 x0 + 3 x1 = 2 -> x1 = 1, x0 = -1/2
        assert!((x[1] - c64(1.0, 0.0)).abs() < 1e-14);
        assert!((x[0] - c64(-0.5, 0.0)).abs() < 1e-14);
        // det = -(2) (row swap sign)
        assert!((lu.det() - c64(-2.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_fn(3, 3, |r, _| c64(r as f64, 0.0)); // rank 1
        assert!(LuFactors::new(&a).is_err());
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::from_fn(3, 3, |r, c| {
            if r == c {
                c64((r + 1) as f64, 0.0)
            } else {
                C64::ZERO
            }
        });
        let lu = LuFactors::new(&a).expect("diag");
        assert!((lu.det() - c64(6.0, 0.0)).abs() < 1e-13);
    }
}
