//! Complex FFT of arbitrary length: iterative radix-2 for powers of two and
//! Bluestein's chirp-z algorithm for everything else.
//!
//! MLFMA samples far-field patterns at `Q = 2L + 1` angles (odd), so the
//! arbitrary-length path is exercised constantly when the exact spectral
//! interpolation option is enabled; the band-diagonal Lagrange interpolators
//! (the paper's choice) are validated against this path.

use crate::complex::C64;

/// A reusable FFT plan for a fixed transform length.
///
/// Forward transform convention: `X[k] = sum_n x[n] e^{-2 pi i k n / N}`;
/// the inverse divides by `N` so `ifft(fft(x)) == x`.
pub struct Fft {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// Radix-2: bit-reversal permutation table and per-stage twiddles.
    Radix2 { rev: Vec<u32>, twiddles: Vec<C64> },
    /// Bluestein: chirp a_n = e^{-i pi n^2 / N}, and FFT of the (padded) kernel.
    Bluestein {
        chirp: Vec<C64>,
        kernel_fft: Vec<C64>,
        inner: Box<Fft>,
    },
}

impl Fft {
    /// Plans a transform of length `n >= 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        if n.is_power_of_two() {
            let bits = n.trailing_zeros();
            let rev = (0..n as u32)
                .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
                .collect::<Vec<_>>();
            let rev = if n == 1 { vec![0] } else { rev };
            // Twiddles for the largest stage; sub-stages stride through them.
            let twiddles = (0..n / 2)
                .map(|k| C64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
                .collect();
            Fft {
                n,
                kind: Kind::Radix2 { rev, twiddles },
            }
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let inner = Box::new(Fft::new(m));
            // chirp[j] = e^{-i pi j^2 / n}; use j^2 mod 2n to keep the phase exact
            // for large j.
            let chirp: Vec<C64> = (0..n)
                .map(|j| {
                    let j2 = (j * j) % (2 * n);
                    C64::cis(-std::f64::consts::PI * j2 as f64 / n as f64)
                })
                .collect();
            let mut kernel = vec![C64::ZERO; m];
            kernel[0] = chirp[0].conj();
            for j in 1..n {
                let v = chirp[j].conj();
                kernel[j] = v;
                kernel[m - j] = v;
            }
            inner.forward(&mut kernel);
            Fft {
                n,
                kind: Kind::Bluestein {
                    chirp,
                    kernel_fft: kernel,
                    inner,
                },
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 plan (never constructible).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward DFT.
    pub fn forward(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "fft length mismatch");
        match &self.kind {
            Kind::Radix2 { rev, twiddles } => radix2(data, rev, twiddles, false),
            Kind::Bluestein {
                chirp,
                kernel_fft,
                inner,
            } => bluestein(data, chirp, kernel_fft, inner),
        }
    }

    /// In-place inverse DFT (normalized by 1/N).
    pub fn inverse(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "fft length mismatch");
        // inverse via conjugation: ifft(x) = conj(fft(conj(x))) / N
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj() * s;
        }
    }
}

fn radix2(data: &mut [C64], rev: &[u32], twiddles: &[C64], _inv: bool) {
    let n = data.len();
    if n == 1 {
        return;
    }
    for (i, &r) in rev.iter().enumerate() {
        let j = r as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        let mut base = 0;
        while base < n {
            for k in 0..half {
                let w = twiddles[k * stride];
                let u = data[base + k];
                let t = data[base + k + half] * w;
                data[base + k] = u + t;
                data[base + k + half] = u - t;
            }
            base += len;
        }
        len <<= 1;
    }
}

fn bluestein(data: &mut [C64], chirp: &[C64], kernel_fft: &[C64], inner: &Fft) {
    let n = data.len();
    let m = inner.len();
    let mut work = vec![C64::ZERO; m];
    for j in 0..n {
        work[j] = data[j] * chirp[j];
    }
    inner.forward(&mut work);
    for (w, k) in work.iter_mut().zip(kernel_fft.iter()) {
        *w *= *k;
    }
    inner.inverse(&mut work);
    for j in 0..n {
        data[j] = work[j] * chirp[j];
    }
}

/// Convenience: out-of-place forward DFT (plans internally; prefer [`Fft`] in
/// hot paths).
pub fn fft(x: &[C64]) -> Vec<C64> {
    let mut v = x.to_vec();
    Fft::new(x.len()).forward(&mut v);
    v
}

/// Convenience: out-of-place inverse DFT.
pub fn ifft(x: &[C64]) -> Vec<C64> {
    let mut v = x.to_vec();
    Fft::new(x.len()).inverse(&mut v);
    v
}

/// Like [`resample_periodic`] but with caller-provided FFT plans (hot paths:
/// the spectral-interpolation option of the MLFMA reuses per-level plans).
pub fn resample_with_plans(fft_in: &Fft, fft_out: &Fft, x: &[C64]) -> Vec<C64> {
    let q_in = fft_in.len();
    let q_out = fft_out.len();
    assert_eq!(x.len(), q_in);
    if q_in == q_out {
        return x.to_vec();
    }
    let mut spec = x.to_vec();
    fft_in.forward(&mut spec);
    let mut out_spec = vec![C64::ZERO; q_out];
    let half_keep = (q_in.min(q_out) - 1) / 2;
    out_spec[..=half_keep].copy_from_slice(&spec[..=half_keep]);
    for k in 1..=half_keep {
        out_spec[q_out - k] = spec[q_in - k];
    }
    if q_in.min(q_out).is_multiple_of(2) {
        let nyq = q_in.min(q_out) / 2;
        if q_out > q_in {
            out_spec[nyq] = spec[nyq].scale(0.5);
            out_spec[q_out - nyq] = spec[nyq].scale(0.5);
        } else {
            out_spec[nyq] = (spec[nyq] + spec[q_in - nyq]).scale(0.5);
        }
    }
    let mut out = out_spec;
    fft_out.inverse(&mut out);
    let s = q_out as f64 / q_in as f64;
    for v in out.iter_mut() {
        *v = v.scale(s);
    }
    out
}

/// Naive O(N^2) DFT used as a test oracle.
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * ((k * j) % n) as f64 / n as f64;
                acc += v * C64::cis(ang);
            }
            acc
        })
        .collect()
}

/// Resamples a periodic band-limited signal from `x.len()` to `q_out` samples
/// by zero-padding (upsampling) or truncating (downsampling) its spectrum.
///
/// This is the *exact* interpolation/anterpolation used to validate the
/// band-diagonal Lagrange operators of the MLFMA (paper Table I). Spectral
/// bins are interpreted as centered: frequencies in `[-floor((q-1)/2), ...]`.
pub fn resample_periodic(x: &[C64], q_out: usize) -> Vec<C64> {
    let q_in = x.len();
    if q_in == q_out {
        return x.to_vec();
    }
    let mut spec = fft(x);
    let mut out_spec = vec![C64::ZERO; q_out];
    let half_keep = (q_in.min(q_out) - 1) / 2;
    // DC and positive frequencies
    out_spec[..=half_keep].copy_from_slice(&spec[..=half_keep]);
    // negative frequencies
    for k in 1..=half_keep {
        out_spec[q_out - k] = spec[q_in - k];
    }
    // If both sizes are even and equal bins exist at Nyquist, split is ambiguous;
    // MLFMA always uses odd Q so this path stays exact.
    if q_in.min(q_out).is_multiple_of(2) {
        let nyq = q_in.min(q_out) / 2;
        if q_out > q_in {
            out_spec[nyq] = spec[nyq].scale(0.5);
            out_spec[q_out - nyq] = spec[nyq].scale(0.5);
        } else {
            out_spec[nyq] = spec[nyq] + spec[q_in - nyq];
            out_spec[nyq] = out_spec[nyq].scale(0.5);
        }
    }
    spec.clear();
    let mut out = out_spec;
    Fft::new(q_out).inverse(&mut out);
    let s = q_out as f64 / q_in as f64;
    for v in out.iter_mut() {
        *v = v.scale(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64((0.3 * t).sin() + 0.2, (0.7 * t).cos() - 0.1)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = signal(n);
            let err = max_err(&fft(&x), &dft_naive(&x));
            assert!(err < 1e-10 * n as f64, "n={n} err={err:e}");
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary() {
        for n in [3usize, 5, 7, 9, 15, 37, 101, 120] {
            let x = signal(n);
            let err = max_err(&fft(&x), &dft_naive(&x));
            assert!(err < 1e-9 * n as f64, "n={n} err={err:e}");
        }
    }

    #[test]
    fn roundtrip() {
        for n in [1usize, 2, 17, 64, 99, 255, 256, 257] {
            let x = signal(n);
            let y = ifft(&fft(&x));
            assert!(max_err(&x, &y) < 1e-11 * n as f64, "n={n}");
        }
    }

    #[test]
    fn parseval() {
        let x = signal(241);
        let y = fft(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 241.0;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn impulse_is_flat() {
        let mut x = vec![C64::ZERO; 16];
        x[0] = C64::ONE;
        let y = fft(&x);
        assert!(y.iter().all(|v| (*v - C64::ONE).abs() < 1e-12));
    }

    #[test]
    fn resample_band_limited_is_exact() {
        // Band-limited signal with |freq| <= 5, sampled at q1 = 13 and q2 = 31.
        let modes: Vec<(i64, C64)> = vec![
            (0, c64(1.0, 0.3)),
            (1, c64(0.5, -0.2)),
            (-3, c64(-0.7, 0.1)),
            (5, c64(0.2, 0.9)),
            (-5, c64(0.1, -0.4)),
        ];
        let eval = |q: usize| -> Vec<C64> {
            (0..q)
                .map(|j| {
                    let a = 2.0 * std::f64::consts::PI * j as f64 / q as f64;
                    modes
                        .iter()
                        .map(|&(m, cm)| cm * C64::cis(m as f64 * a))
                        .sum()
                })
                .collect()
        };
        let coarse = eval(13);
        let fine_expect = eval(31);
        let up = resample_periodic(&coarse, 31);
        assert!(max_err(&up, &fine_expect) < 1e-12, "upsample exact");
        // Downsampling a band-limited signal back is also exact.
        let down = resample_periodic(&fine_expect, 13);
        assert!(max_err(&down, &coarse) < 1e-12, "downsample exact");
    }

    #[test]
    fn linearity() {
        let x = signal(50);
        let y: Vec<C64> = signal(50).iter().map(|v| *v * c64(0.3, 0.7)).collect();
        let sum: Vec<C64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let combo: Vec<C64> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert!(max_err(&fsum, &combo) < 1e-10);
    }
}
