//! Dense and band-structured complex matrices.
//!
//! The MLFMA realizes its operators as matrices (paper Table I): multipole /
//! local expansions and near-field interactions are *dense*, interpolation /
//! anterpolation are *band-diagonal* with real weights, and shifts /
//! translations are diagonal (stored as plain `Vec<C64>` by the MLFMA crate).

use crate::complex::C64;

/// Row-major dense complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from an element function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline(always)]
    pub fn at(&self, r: usize, c: usize) -> C64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline(always)]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[C64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc = a.mul_add(*b, acc);
            }
            *yr = acc;
        }
    }

    /// `y += A x`.
    pub fn matvec_acc(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc = a.mul_add(*b, acc);
            }
            *yr += acc;
        }
    }

    /// `ys[b] += A xs[b]` for a panel of inputs, with the output panel
    /// column-blocked: column `b` occupies `ys[b * rows .. (b+1) * rows]`.
    ///
    /// The inputs are first packed into split re/im planes laid out
    /// column-adjacent (`plane[k * width + b]`), so the per-row sweep updates
    /// `W` independent accumulator lanes with contiguous loads — plain
    /// elementwise `f64` arithmetic the compiler vectorizes across the panel,
    /// something the one-column `matvec_acc` chain can never expose. Per
    /// column the expression evaluated each step is exactly
    /// [`C64::mul_add`]'s (`a.re*x.re - a.im*x.im + acc.re`, same
    /// association), the `k` order is the same, and the final single add into
    /// `y` is the same — so every column of the panel is bit-identical to
    /// its own `matvec_acc`.
    pub fn matvec_acc_panel(&self, xs: &[&[C64]], ys: &mut [C64]) {
        let width = xs.len();
        assert_eq!(ys.len(), self.rows * width);
        for x in xs {
            assert_eq!(x.len(), self.cols);
        }
        // Pack: O(cols * width) against the O(rows * cols * width) sweep.
        let mut xre = vec![0.0f64; self.cols * width];
        let mut xim = vec![0.0f64; self.cols * width];
        for (b, x) in xs.iter().enumerate() {
            for (k, v) in x.iter().enumerate() {
                xre[k * width + b] = v.re;
                xim[k * width + b] = v.im;
            }
        }
        // The AVX2 path is compiled out under Miri: the interpreter has no
        // cpuid, and the scalar sweep is the bit-identical reference anyway.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            unsafe { self.panel_sweep_avx2(&xre, &xim, width, ys) };
            return;
        }
        self.panel_sweep_scalar(&xre, &xim, width, 0, ys);
    }

    /// Portable lane sweep of [`Self::matvec_acc_panel`], from column `col`
    /// to the end of the panel.
    fn panel_sweep_scalar(
        &self,
        xre: &[f64],
        xim: &[f64],
        width: usize,
        col: usize,
        ys: &mut [C64],
    ) {
        let rows = self.rows;
        for b in col..width {
            for r in 0..rows {
                let row = self.row(r);
                let mut acc_re = 0.0f64;
                let mut acc_im = 0.0f64;
                for (k, a) in row.iter().enumerate() {
                    let vr = xre[k * width + b];
                    let vi = xim[k * width + b];
                    acc_re += a.re * vr - a.im * vi;
                    acc_im += a.re * vi + a.im * vr;
                }
                let y = &mut ys[b * rows + r];
                y.re += acc_re;
                y.im += acc_im;
            }
        }
    }

    /// AVX2 lane sweep: 8 columns per pass (four 4-wide accumulator chains
    /// per output row — enough independent chains to hide the add latency
    /// that serializes the one-column path), then a 4-wide pass, then scalar
    /// remainder lanes. Every vector op is an elementwise IEEE mul/sub/add in
    /// the exact association of [`C64::mul_add`] — no fma contraction — so
    /// each lane is bit-identical to the scalar sweep.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[target_feature(enable = "avx2")]
    // SAFETY: caller must ensure AVX2 is available (runtime-detected at the
    // single call site); all pointer arithmetic is bounds-justified below.
    unsafe fn panel_sweep_avx2(&self, xre: &[f64], xim: &[f64], width: usize, ys: &mut [C64]) {
        use std::arch::x86_64::*;
        let rows = self.rows;
        let mut col = 0;
        // SAFETY (whole body): lane loads below read `xre/xim[k*width+col ..
        // +4/+8]` with `k < cols`, in bounds of the `cols * width` planes;
        // `ys` stores index `(col+j) * rows + r` with `col+j < width`,
        // `r < rows`, in bounds of the `rows * width` panel.
        unsafe {
            while col + 8 <= width {
                for r in 0..rows {
                    let row = self.row(r);
                    let mut re0 = _mm256_setzero_pd();
                    let mut im0 = _mm256_setzero_pd();
                    let mut re1 = _mm256_setzero_pd();
                    let mut im1 = _mm256_setzero_pd();
                    for (k, a) in row.iter().enumerate() {
                        let base = k * width + col;
                        let are = _mm256_set1_pd(a.re);
                        let aim = _mm256_set1_pd(a.im);
                        let vr0 = _mm256_loadu_pd(xre.as_ptr().add(base));
                        let vi0 = _mm256_loadu_pd(xim.as_ptr().add(base));
                        let vr1 = _mm256_loadu_pd(xre.as_ptr().add(base + 4));
                        let vi1 = _mm256_loadu_pd(xim.as_ptr().add(base + 4));
                        re0 = _mm256_add_pd(
                            _mm256_sub_pd(_mm256_mul_pd(are, vr0), _mm256_mul_pd(aim, vi0)),
                            re0,
                        );
                        im0 = _mm256_add_pd(
                            _mm256_add_pd(_mm256_mul_pd(are, vi0), _mm256_mul_pd(aim, vr0)),
                            im0,
                        );
                        re1 = _mm256_add_pd(
                            _mm256_sub_pd(_mm256_mul_pd(are, vr1), _mm256_mul_pd(aim, vi1)),
                            re1,
                        );
                        im1 = _mm256_add_pd(
                            _mm256_add_pd(_mm256_mul_pd(are, vi1), _mm256_mul_pd(aim, vr1)),
                            im1,
                        );
                    }
                    let mut lre = [0.0f64; 8];
                    let mut lim = [0.0f64; 8];
                    _mm256_storeu_pd(lre.as_mut_ptr(), re0);
                    _mm256_storeu_pd(lre.as_mut_ptr().add(4), re1);
                    _mm256_storeu_pd(lim.as_mut_ptr(), im0);
                    _mm256_storeu_pd(lim.as_mut_ptr().add(4), im1);
                    for j in 0..8 {
                        let y = &mut ys[(col + j) * rows + r];
                        y.re += lre[j];
                        y.im += lim[j];
                    }
                }
                col += 8;
            }
            while col + 4 <= width {
                for r in 0..rows {
                    let row = self.row(r);
                    let mut re0 = _mm256_setzero_pd();
                    let mut im0 = _mm256_setzero_pd();
                    for (k, a) in row.iter().enumerate() {
                        let base = k * width + col;
                        let are = _mm256_set1_pd(a.re);
                        let aim = _mm256_set1_pd(a.im);
                        let vr0 = _mm256_loadu_pd(xre.as_ptr().add(base));
                        let vi0 = _mm256_loadu_pd(xim.as_ptr().add(base));
                        re0 = _mm256_add_pd(
                            _mm256_sub_pd(_mm256_mul_pd(are, vr0), _mm256_mul_pd(aim, vi0)),
                            re0,
                        );
                        im0 = _mm256_add_pd(
                            _mm256_add_pd(_mm256_mul_pd(are, vi0), _mm256_mul_pd(aim, vr0)),
                            im0,
                        );
                    }
                    let mut lre = [0.0f64; 4];
                    let mut lim = [0.0f64; 4];
                    _mm256_storeu_pd(lre.as_mut_ptr(), re0);
                    _mm256_storeu_pd(lim.as_mut_ptr(), im0);
                    for j in 0..4 {
                        let y = &mut ys[(col + j) * rows + r];
                        y.re += lre[j];
                        y.im += lim[j];
                    }
                }
                col += 4;
            }
        }
        self.panel_sweep_scalar(xre, xim, width, col, ys);
    }

    /// `y += A^T x` (plain transpose, no conjugation — `G0` is complex
    /// symmetric so its transpose equals itself).
    pub fn matvec_transpose_acc(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (c, a) in row.iter().enumerate() {
                y[c] = a.mul_add(xr, y[c]);
            }
        }
    }

    /// `y += A^H x` (conjugate transpose).
    pub fn matvec_adjoint_acc(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (c, a) in row.iter().enumerate() {
                y[c] = a.conj().mul_add(xr, y[c]);
            }
        }
    }

    /// `C += A * B` where `B` and `C` are dense column-blocks given as
    /// row-major slices with `b_cols` columns. This is the matrix-matrix
    /// formulation the paper uses for multipole/local expansions (better data
    /// reuse than repeated matvecs).
    pub fn gemm_acc(&self, b: &[C64], b_cols: usize, c: &mut [C64]) {
        assert_eq!(b.len(), self.cols * b_cols);
        assert_eq!(c.len(), self.rows * b_cols);
        // i-k-j loop order: streams through B rows, accumulates into C rows.
        for i in 0..self.rows {
            let arow = self.row(i);
            let crow = &mut c[i * b_cols..(i + 1) * b_cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik.re == 0.0 && aik.im == 0.0 {
                    continue;
                }
                let brow = &b[k * b_cols..(k + 1) * b_cols];
                for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj = aik.mul_add(*bj, *cj);
                }
            }
        }
    }

    /// Dense `C = A * B` returning a new matrix.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.gemm_acc(&other.data, other.cols, &mut out.data);
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.at(c, r).conj())
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Periodic band matrix with real weights: row `i` has `band` contiguous
/// nonzeros starting at column `start[i]`, wrapping modulo `cols`.
///
/// This is exactly the structure of the MLFMA interpolation (child sampling ->
/// parent sampling) and anterpolation operators: local Lagrange interpolation
/// on the unit circle touches only `band` neighbouring source samples.
#[derive(Clone, Debug)]
pub struct PeriodicBandMatrix {
    rows: usize,
    cols: usize,
    band: usize,
    start: Vec<u32>,
    weights: Vec<f64>, // rows * band, row-major
}

impl PeriodicBandMatrix {
    /// Builds from per-row starting columns and weights.
    pub fn new(rows: usize, cols: usize, band: usize, start: Vec<u32>, weights: Vec<f64>) -> Self {
        assert_eq!(start.len(), rows);
        assert_eq!(weights.len(), rows * band);
        PeriodicBandMatrix {
            rows,
            cols,
            band,
            start,
            weights,
        }
    }

    /// Number of rows (output samples).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input samples).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bandwidth (nonzeros per row).
    pub fn band(&self) -> usize {
        self.band
    }

    /// Number of stored nonzero coefficients.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// `y = B x` (overwrites `y`).
    pub fn apply(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let s = self.start[i] as usize;
            let w = &self.weights[i * self.band..(i + 1) * self.band];
            let mut acc = C64::ZERO;
            if s + self.band <= self.cols {
                for (wj, xj) in w.iter().zip(&x[s..s + self.band]) {
                    acc += *xj * *wj;
                }
            } else {
                for (j, wj) in w.iter().enumerate() {
                    acc += x[(s + j) % self.cols] * *wj;
                }
            }
            *yi = acc;
        }
    }

    /// `y += alpha * B^T x`: the (scaled) transpose application used for
    /// anterpolation, `anterp = (Q_child / Q_parent) * interp^T`.
    pub fn apply_transpose_scaled(&self, x: &[C64], alpha: f64, y: &mut [C64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (i, &xi) in x.iter().enumerate() {
            let s = self.start[i] as usize;
            let w = &self.weights[i * self.band..(i + 1) * self.band];
            let v = xi * alpha;
            if s + self.band <= self.cols {
                for (wj, yj) in w.iter().zip(&mut y[s..s + self.band]) {
                    *yj += v * *wj;
                }
            } else {
                for (j, wj) in w.iter().enumerate() {
                    y[(s + j) % self.cols] += v * *wj;
                }
            }
        }
    }

    /// Densifies for testing.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.band {
                let c = (self.start[i] as usize + j) % self.cols;
                *m.at_mut(i, c) += C64::from_real(self.weights[i * self.band + j]);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Matrix::from_fn(rows, cols, |_, _| c64(next(), next()))
    }

    fn vecc(n: usize, seed: u64) -> Vec<C64> {
        let m = mat(1, n, seed);
        m.as_slice().to_vec()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matvec_identity() {
        let a = Matrix::from_fn(4, 4, |r, c| if r == c { C64::ONE } else { C64::ZERO });
        let x = vecc(4, 3);
        let mut y = vec![C64::ZERO; 4];
        a.matvec(&x, &mut y);
        assert!(max_err(&x, &y) < 1e-15);
    }

    #[test]
    fn gemm_matches_repeated_matvec() {
        let a = mat(7, 5, 1);
        let b = mat(5, 3, 2);
        let c = a.matmul(&b);
        for j in 0..3 {
            let col: Vec<C64> = (0..5).map(|k| b.at(k, j)).collect();
            let mut y = vec![C64::ZERO; 7];
            a.matvec(&col, &mut y);
            for (i, &yi) in y.iter().enumerate() {
                assert!((c.at(i, j) - yi).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn panel_matvec_is_bit_identical_per_column() {
        // Every panel width up to 9 exercises all four column-group kernels
        // (4+4+1, 4+3, ...). Each column must match its own matvec_acc bit
        // for bit — the engine's fused near-field path relies on this.
        let a = mat(13, 11, 31);
        for width in 1..=9usize {
            let xs: Vec<Vec<C64>> = (0..width).map(|b| vecc(11, 40 + b as u64)).collect();
            let refs: Vec<&[C64]> = xs.iter().map(|v| v.as_slice()).collect();
            // seed the outputs with nonzero values to check the += semantics
            let mut panel = vecc(13 * width, 99);
            let singles: Vec<Vec<C64>> = (0..width)
                .map(|b| {
                    let mut y = panel[b * 13..(b + 1) * 13].to_vec();
                    a.matvec_acc(&xs[b], &mut y);
                    y
                })
                .collect();
            a.matvec_acc_panel(&refs, &mut panel);
            for (b, single) in singles.iter().enumerate() {
                assert_eq!(
                    &panel[b * 13..(b + 1) * 13],
                    single.as_slice(),
                    "width {width} column {b} drifted"
                );
            }
        }
    }

    #[test]
    fn adjoint_inner_product_identity() {
        // <A x, y> = <x, A^H y>
        let a = mat(6, 4, 5);
        let x = vecc(4, 7);
        let y = vecc(6, 9);
        let mut ax = vec![C64::ZERO; 6];
        a.matvec(&x, &mut ax);
        let mut ahy = vec![C64::ZERO; 4];
        a.matvec_adjoint_acc(&y, &mut ahy);
        let lhs: C64 = ax.iter().zip(&y).map(|(u, v)| u.conj() * *v).sum();
        let rhs: C64 = x.iter().zip(&ahy).map(|(u, v)| u.conj() * *v).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = mat(5, 3, 11);
        let x = vecc(5, 13);
        let mut y = vec![C64::ZERO; 3];
        a.matvec_transpose_acc(&x, &mut y);
        let at = Matrix::from_fn(3, 5, |r, c| a.at(c, r));
        let mut y2 = vec![C64::ZERO; 3];
        at.matvec(&x, &mut y2);
        assert!(max_err(&y, &y2) < 1e-13);
    }

    #[test]
    fn band_matrix_matches_dense() {
        // 7x5 periodic band with band=3
        let rows = 7;
        let cols = 5;
        let band = 3;
        let start: Vec<u32> = (0..rows as u32).map(|i| (i * 2) % cols as u32).collect();
        let weights: Vec<f64> = (0..rows * band).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = PeriodicBandMatrix::new(rows, cols, band, start, weights);
        let x = vecc(cols, 21);
        let mut y = vec![C64::ZERO; rows];
        b.apply(&x, &mut y);
        let mut y2 = vec![C64::ZERO; rows];
        b.to_dense().matvec(&x, &mut y2);
        assert!(max_err(&y, &y2) < 1e-13);

        // transpose
        let z = vecc(rows, 23);
        let mut t = vec![C64::ZERO; cols];
        b.apply_transpose_scaled(&z, 0.7, &mut t);
        let dense_t = b.to_dense();
        let mut t2 = vec![C64::ZERO; cols];
        dense_t.matvec_transpose_acc(&z, &mut t2);
        for v in t2.iter_mut() {
            *v = v.scale(0.7);
        }
        assert!(max_err(&t, &t2) < 1e-13);
    }

    #[test]
    fn band_wraparound() {
        // start so the band wraps past the end
        let b = PeriodicBandMatrix::new(2, 4, 3, vec![3, 2], vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5]);
        let x: Vec<C64> = (0..4).map(|i| C64::from_real(i as f64 + 1.0)).collect();
        let mut y = vec![C64::ZERO; 2];
        b.apply(&x, &mut y);
        // row 0: cols 3,0,1 -> 1*4 + 2*1 + 3*2 = 12
        assert!((y[0].re - 12.0).abs() < 1e-14);
        // row 1: cols 2,3,0 -> 0.5*(3+4+1) = 4
        assert!((y[1].re - 4.0).abs() < 1e-14);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_fn(2, 2, |r, c| c64((r * 2 + c) as f64, 0.0));
        // elements 0,1,2,3 -> sqrt(0+1+4+9)
        assert!((a.norm_fro() - 14.0f64.sqrt()).abs() < 1e-14);
    }
}
