//! Double-precision complex arithmetic.
//!
//! Implemented from scratch (no `num-complex`) so the whole stack is
//! self-contained. Layout is `#[repr(C)]` with `re` first so a `&[C64]` can be
//! reinterpreted as interleaved doubles by the message-passing runtime.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity 0 + 0i.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity 1 + 0i.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit i.
    pub const I: C64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus |z|^2.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus |z| computed without undue overflow/underflow.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in (-pi, pi].
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse 1/z.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Complex exponential e^z.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        let (s, c) = self.im.sin_cos();
        c64(r * c, r * s)
    }

    /// e^{i theta} for real theta (unit-modulus phasor).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(c, s)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        // Kahan's stable formulation.
        if self.re == 0.0 && self.im == 0.0 {
            return C64::ZERO;
        }
        let m = self.abs();
        let u = ((m + self.re) * 0.5).sqrt();
        let v = ((m - self.re) * 0.5).sqrt();
        if self.im >= 0.0 {
            c64(u, v)
        } else {
            c64(u, -v)
        }
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        c64(self.abs().ln(), self.arg())
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return C64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = C64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// i^n for integer n (exact, no rounding).
    #[inline]
    pub fn i_pow(n: i64) -> Self {
        match n.rem_euclid(4) {
            0 => c64(1.0, 0.0),
            1 => c64(0.0, 1.0),
            2 => c64(-1.0, 0.0),
            _ => c64(0.0, -1.0),
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: self * b + c.
    #[inline(always)]
    pub fn mul_add(self, b: C64, cc: C64) -> Self {
        c64(
            self.re * b.re - self.im * b.im + cc.re,
            self.re * b.im + self.im * b.re + cc.im,
        )
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for C64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        c64(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        c64(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        c64(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, o: C64) -> C64 {
        // Smith's algorithm for robustness against overflow.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            c64((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            c64((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, s: f64) -> C64 {
        c64(self.re + s, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, s: f64) -> C64 {
        c64(self.re - s, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, s: f64) -> C64 {
        c64(self.re * s, self.im * s)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, s: f64) -> C64 {
        c64(self.re / s, self.im / s)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, z: C64) -> C64 {
        c64(self * z.re, self * z.im)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, z: C64) -> C64 {
        c64(self + z.re, z.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl AddAssign<f64> for C64 {
    #[inline(always)]
    fn add_assign(&mut self, s: f64) {
        self.re += s;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, o: C64) {
        *self = *self / o;
    }
}

impl MulAssign<f64> for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        self.re *= s;
        self.im *= s;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, &b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!(close(z * z.inv(), C64::ONE, 1e-15));
        assert!(close(z / z, C64::ONE, 1e-15));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((-z) + z, C64::ZERO);
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = c64(1.25, -0.5);
        let b = c64(-2.0, 3.5);
        assert!(close(a / b, a * b.inv(), 1e-14));
    }

    #[test]
    fn division_robust_to_large_components() {
        let a = c64(1e300, 1e300);
        let b = c64(2e300, 0.0);
        let q = a / b;
        assert!(close(q, c64(0.5, 0.5), 1e-15));
    }

    #[test]
    fn exp_and_cis() {
        let z = c64(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), c64(-1.0, 0.0), 1e-15));
        assert!(close(C64::cis(std::f64::consts::FRAC_PI_2), C64::I, 1e-15));
        // e^{a+b} = e^a e^b
        let a = c64(0.3, -1.2);
        let b = c64(-0.7, 2.5);
        assert!(close((a + b).exp(), a.exp() * b.exp(), 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(4.0, 0.0),
            c64(-4.0, 0.0),
            c64(0.0, 2.0),
            c64(0.0, -2.0),
            c64(3.0, 4.0),
            c64(-3.0, -4.0),
        ] {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-14), "sqrt({z:?}) = {s:?}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(0.9, 0.4);
        let mut acc = C64::ONE;
        for n in 0..12 {
            assert!(close(z.powi(n), acc, 1e-13));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).inv(), 1e-13));
    }

    #[test]
    fn i_pow_cycle() {
        assert_eq!(C64::i_pow(0), C64::ONE);
        assert_eq!(C64::i_pow(1), C64::I);
        assert_eq!(C64::i_pow(2), -C64::ONE);
        assert_eq!(C64::i_pow(3), -C64::I);
        assert_eq!(C64::i_pow(4), C64::ONE);
        assert_eq!(C64::i_pow(-1), -C64::I);
        assert_eq!(C64::i_pow(-2), -C64::ONE);
    }

    #[test]
    fn ln_inverts_exp() {
        let z = c64(0.5, 1.0);
        assert!(close(z.exp().ln(), z, 1e-14));
    }

    #[test]
    fn sum_over_slice() {
        let v = [c64(1.0, 2.0), c64(3.0, -1.0), c64(-0.5, 0.5)];
        let s: C64 = v.iter().sum();
        assert!(close(s, c64(3.5, 1.5), 1e-15));
    }
}
