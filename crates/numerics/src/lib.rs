//! # ffw-numerics
//!
//! Self-contained numerical foundation for the FFW-Tomo inverse-scattering
//! stack: double-precision complex arithmetic, Bessel/Hankel special
//! functions, FFTs of arbitrary length, dense complex matrix kernels and
//! BLAS-1 vector operations.
//!
//! Everything here is implemented from scratch (no `num-complex`, `rustfft`,
//! or LAPACK bindings) so the reproduction is a single dependency-light
//! workspace whose numerical behaviour is fully auditable.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bessel;
pub mod complex;
pub mod fft;
pub mod linalg;
pub mod lu;
pub mod quadrature;
pub mod vecops;

pub use complex::{c64, C64};
