//! # ffw-numerics
//!
//! Self-contained numerical foundation for the FFW-Tomo inverse-scattering
//! stack: double-precision complex arithmetic, Bessel/Hankel special
//! functions, FFTs of arbitrary length, dense complex matrix kernels and
//! BLAS-1 vector operations.
//!
//! Everything here is implemented from scratch (no `num-complex`, `rustfft`,
//! or LAPACK bindings) so the reproduction is a single dependency-light
//! workspace whose numerical behaviour is fully auditable.

#![warn(missing_docs)]

pub mod bessel;
pub mod complex;
pub mod fft;
pub mod linalg;
pub mod lu;
pub mod quadrature;
pub mod vecops;

pub use complex::{c64, C64};
