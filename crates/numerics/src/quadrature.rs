//! Gauss–Legendre quadrature.
//!
//! Used by the quadrature-accurate near-field assembly option (an ablation
//! against the closed-form equivalent-disk elements) and available for
//! general pixel integrals of the paper's Eq. (4).

/// Gauss–Legendre nodes and weights on `[-1, 1]`, computed by Newton
/// iteration on the Legendre polynomial with the standard Chebyshev initial
/// guess. Accurate to ~1e-15 for n up to several hundred.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // initial guess: Chebyshev points
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // evaluate P_n(x) and P_n'(x) by recurrence
            let mut p0 = 1.0f64;
            let mut p1 = x;
            for k in 2..=n {
                let pk = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = pk;
            }
            // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

/// Integrates `f` over `[a, b]` with `n`-point Gauss–Legendre.
pub fn integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    let (x, w) = gauss_legendre(n);
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    x.iter()
        .zip(&w)
        .map(|(&xi, &wi)| wi * f(mid + half * xi))
        .sum::<f64>()
        * half
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1usize, 2, 5, 16, 33, 64] {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-13, "n={n}: {s}");
        }
    }

    #[test]
    fn nodes_symmetric_and_sorted() {
        let (x, _) = gauss_legendre(12);
        for i in 0..12 {
            assert!((x[i] + x[11 - i]).abs() < 1e-14, "symmetric");
        }
        for i in 1..12 {
            assert!(x[i] > x[i - 1], "sorted");
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_2n_minus_1() {
        // n-point GL integrates degree 2n-1 exactly
        let n = 6;
        for deg in 0..=(2 * n - 1) {
            let exact = if deg % 2 == 0 {
                2.0 / (deg as f64 + 1.0)
            } else {
                0.0
            };
            let got = integrate(|x| x.powi(deg as i32), -1.0, 1.0, n);
            assert!((got - exact).abs() < 1e-13, "deg {deg}: {got} vs {exact}");
        }
        // degree 2n must NOT be exact (sanity that the order claim is tight)
        let got = integrate(|x| x.powi(2 * n as i32), -1.0, 1.0, n);
        let exact = 2.0 / (2.0 * n as f64 + 1.0);
        assert!((got - exact).abs() > 1e-9);
    }

    #[test]
    fn integrates_oscillatory_function() {
        // int_0^pi sin(x) dx = 2
        let got = integrate(f64::sin, 0.0, std::f64::consts::PI, 24);
        assert!((got - 2.0).abs() < 1e-13);
        // int_0^1 cos(20 x) dx = sin(20)/20
        let got = integrate(|x| (20.0 * x).cos(), 0.0, 1.0, 32);
        assert!((got - (20.0f64).sin() / 20.0).abs() < 1e-12);
    }
}
