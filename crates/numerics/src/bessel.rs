//! Bessel functions of the first and second kind and Hankel functions of the
//! first kind, for real positive arguments and integer orders.
//!
//! These are the special functions the solver is built on:
//! the 2-D free-space Green's function is `(i/4) H0^(1)(k r)`, the
//! equivalent-disk pixel discretization needs `J1`/`H1`, and every diagonal
//! MLFMA translation operator is a sum of `H_m^(1)(k|X|)` terms.
//!
//! Implementation strategy (self-contained, no external libm beyond `std`):
//! * `J0, J1, Y0, Y1`: ascending power series for `x <= 12`, Hankel asymptotic
//!   expansions with optimal truncation for `x > 12`. Both regimes deliver
//!   ~1e-10 absolute accuracy or better, comfortably below the 1e-5 matvec
//!   error budget of the paper (Section V-B).
//! * `J_n` for a range of orders: Miller's downward recurrence with the
//!   `J0 + 2 sum J_{2k} = 1` normalization (stable for all `n`).
//! * `Y_n`: upward recurrence from `Y0, Y1` (stable because `Y_n` is the
//!   dominant solution).

use crate::complex::{c64, C64};

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

const SERIES_CUTOFF: f64 = 12.0;

/// Bessel function of the first kind, order 0.
pub fn j0(x: f64) -> f64 {
    let x = x.abs();
    if x <= SERIES_CUTOFF {
        j0_series(x)
    } else {
        let (p, q) = asymptotic_pq(0, x);
        let chi = x - std::f64::consts::FRAC_PI_4;
        (2.0 / (std::f64::consts::PI * x)).sqrt() * (p * chi.cos() - q * chi.sin())
    }
}

/// Bessel function of the first kind, order 1.
pub fn j1(x: f64) -> f64 {
    let ax = x.abs();
    let v = if ax <= SERIES_CUTOFF {
        j1_series(ax)
    } else {
        let (p, q) = asymptotic_pq(1, ax);
        let chi = ax - 3.0 * std::f64::consts::FRAC_PI_4;
        (2.0 / (std::f64::consts::PI * ax)).sqrt() * (p * chi.cos() - q * chi.sin())
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Bessel function of the second kind, order 0. Requires `x > 0`.
pub fn y0(x: f64) -> f64 {
    assert!(x > 0.0, "y0 requires x > 0, got {x}");
    if x <= SERIES_CUTOFF {
        y0_series(x)
    } else {
        let (p, q) = asymptotic_pq(0, x);
        let chi = x - std::f64::consts::FRAC_PI_4;
        (2.0 / (std::f64::consts::PI * x)).sqrt() * (p * chi.sin() + q * chi.cos())
    }
}

/// Bessel function of the second kind, order 1. Requires `x > 0`.
pub fn y1(x: f64) -> f64 {
    assert!(x > 0.0, "y1 requires x > 0, got {x}");
    if x <= SERIES_CUTOFF {
        y1_series(x)
    } else {
        let (p, q) = asymptotic_pq(1, x);
        let chi = x - 3.0 * std::f64::consts::FRAC_PI_4;
        (2.0 / (std::f64::consts::PI * x)).sqrt() * (p * chi.sin() + q * chi.cos())
    }
}

/// Ascending series for J0: sum_k (-1)^k (x^2/4)^k / (k!)^2.
fn j0_series(x: f64) -> f64 {
    let q = 0.25 * x * x;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    let mut k = 0usize;
    loop {
        k += 1;
        term *= -q / ((k * k) as f64);
        sum += term;
        if term.abs() < 1e-18 * sum.abs().max(1.0) || k > 60 {
            break;
        }
    }
    sum
}

/// Ascending series for J1: (x/2) sum_k (-1)^k (x^2/4)^k / (k! (k+1)!).
fn j1_series(x: f64) -> f64 {
    let q = 0.25 * x * x;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    let mut k = 0usize;
    loop {
        k += 1;
        term *= -q / ((k * (k + 1)) as f64);
        sum += term;
        if term.abs() < 1e-18 * sum.abs().max(1.0) || k > 60 {
            break;
        }
    }
    0.5 * x * sum
}

/// Ascending series for Y0 (Abramowitz & Stegun 9.1.13):
/// Y0 = (2/pi) [ (ln(x/2) + gamma) J0(x) + sum_{k>=1} (-1)^{k+1} H_k q^k / (k!)^2 ].
fn y0_series(x: f64) -> f64 {
    let q = 0.25 * x * x;
    let mut term = 1.0f64; // q^k / (k!)^2, starting at k=0 -> 1
    let mut hk = 0.0f64;
    let mut sum = 0.0f64;
    for k in 1..=70usize {
        term *= q / ((k * k) as f64);
        hk += 1.0 / k as f64;
        let contrib = if k % 2 == 1 { term * hk } else { -term * hk };
        sum += contrib;
        if term * hk < 1e-18 * sum.abs().max(1.0) {
            break;
        }
    }
    std::f64::consts::FRAC_2_PI * (((0.5 * x).ln() + EULER_GAMMA) * j0_series(x) + sum)
}

/// Ascending series for Y1 (A&S 9.1.11 with n = 1):
/// Y1 = (2/pi)(ln(x/2)) J1 - (2/(pi x))
///      - (x/(2 pi)) sum_{k>=0} (-1)^k [psi(k+1) + psi(k+2)] q^k / (k!(k+1)!)
/// where psi(1) = -gamma, psi(m) = -gamma + H_{m-1}.
fn y1_series(x: f64) -> f64 {
    let q = 0.25 * x * x;
    let mut term = 1.0f64; // q^k / (k! (k+1)!)
    let mut sum = 0.0f64;
    let mut hk = 0.0f64; // H_k
    let mut hk1 = 1.0f64; // H_{k+1}
    for k in 0..=70usize {
        // psi(k+1) + psi(k+2) = -2 gamma + H_k + H_{k+1}
        let psi_sum = -2.0 * EULER_GAMMA + hk + hk1;
        let contrib = if k % 2 == 0 {
            term * psi_sum
        } else {
            -term * psi_sum
        };
        sum += contrib;
        if term.abs() * psi_sum.abs().max(1.0) < 1e-18 * sum.abs().max(1.0) && k > 2 {
            break;
        }
        let kk = k + 1;
        term *= q / ((kk * (kk + 1)) as f64);
        hk += 1.0 / kk as f64;
        hk1 += 1.0 / (kk + 1) as f64;
    }
    std::f64::consts::FRAC_2_PI * (0.5 * x).ln() * j1_series(x)
        - 2.0 / (std::f64::consts::PI * x)
        - x / (2.0 * std::f64::consts::PI) * sum
}

/// Hankel asymptotic modulus series P_nu, Q_nu with optimal truncation.
/// c_m(nu) = prod_{j=1..m} (4 nu^2 - (2j-1)^2) / (m! 8^m);
/// P = sum_{k even} (-1)^{k/2} c_k / x^k, Q = sum_{k odd} ... / x^k.
fn asymptotic_pq(nu: u32, x: f64) -> (f64, f64) {
    let mu = 4.0 * (nu as f64) * (nu as f64);
    let mut p = 1.0f64;
    let mut q = 0.0f64;
    let mut c = 1.0f64; // c_m(nu) / x^m accumulated
    let mut prev_abs = f64::INFINITY;
    for m in 1..=40usize {
        let odd = (2 * m - 1) as f64;
        c *= (mu - odd * odd) / (m as f64 * 8.0 * x);
        let a = c.abs();
        if a > prev_abs {
            break; // series started diverging; stop at optimal truncation
        }
        prev_abs = a;
        match m % 4 {
            1 => q += c,
            2 => p -= c,
            3 => q -= c,
            _ => p += c,
        }
        if a < 1e-18 {
            break;
        }
    }
    (p, q)
}

/// Computes `J_n(x)` for all orders `n = 0..=n_max` via Miller's downward
/// recurrence, normalized with `J0 + 2 sum_{k>=1} J_{2k} = 1`.
///
/// Valid for `x >= 0`. For `x = 0` returns `[1, 0, 0, ...]`.
pub fn jn_array(n_max: usize, x: f64) -> Vec<f64> {
    assert!(x >= 0.0, "jn_array requires x >= 0");
    let mut out = vec![0.0f64; n_max + 1];
    if x == 0.0 {
        out[0] = 1.0;
        return out;
    }
    if x <= 1e-8 {
        // Tiny argument: leading-order terms avoid the recurrence entirely.
        out[0] = 1.0 - 0.25 * x * x;
        if n_max >= 1 {
            out[1] = 0.5 * x;
        }
        if n_max >= 2 {
            out[2] = 0.125 * x * x;
        }
        return out;
    }
    // Start the downward recurrence high enough that J_start is negligible.
    let base = n_max.max(x.ceil() as usize);
    let start = base + 16 + (2.0 * (base as f64).sqrt()).ceil() as usize;
    let start = if start.is_multiple_of(2) {
        start
    } else {
        start + 1
    };

    let mut jp1 = 0.0f64; // J_{start+1}
    let mut j = 1e-300f64; // J_{start} seed (arbitrary tiny value; fixed by normalization)
    let mut norm = if start % 2 == 0 { 2.0 * j } else { 0.0 }; // accumulates J0 + 2 sum J_{2k}
    for m in (1..=start).rev() {
        // J_{m-1} = (2m/x) J_m - J_{m+1}
        let jm1 = (2.0 * m as f64 / x) * j - jp1;
        jp1 = j;
        j = jm1;
        let idx = m - 1; // j now holds J_{idx}
        if idx <= n_max {
            out[idx] = j;
        }
        if idx % 2 == 0 {
            norm += if idx == 0 { j } else { 2.0 * j };
        }
        if j.abs() > 1e250 {
            // Rescale to avoid overflow; affects everything uniformly.
            let s = 1e-250;
            j *= s;
            jp1 *= s;
            norm *= s;
            for v in out.iter_mut() {
                *v *= s;
            }
        }
    }
    let inv = 1.0 / norm;
    for v in out.iter_mut() {
        *v *= inv;
    }
    out
}

/// Computes `Y_n(x)` for all orders `n = 0..=n_max` via stable upward
/// recurrence. Requires `x > 0`.
///
/// For large `n >> x`, `Y_n` grows factorially; values that overflow are
/// returned as `-inf`, which callers must treat as out-of-validity.
pub fn yn_array(n_max: usize, x: f64) -> Vec<f64> {
    assert!(x > 0.0, "yn_array requires x > 0");
    let mut out = Vec::with_capacity(n_max + 1);
    out.push(y0(x));
    if n_max >= 1 {
        out.push(y1(x));
    }
    for n in 1..n_max {
        let next = (2.0 * n as f64 / x) * out[n] - out[n - 1];
        out.push(next);
    }
    out
}

/// Computes `H_n^{(1)}(x) = J_n(x) + i Y_n(x)` for `n = 0..=n_max`. Requires `x > 0`.
pub fn hankel1_array(n_max: usize, x: f64) -> Vec<C64> {
    let j = jn_array(n_max, x);
    let y = yn_array(n_max, x);
    j.iter().zip(y.iter()).map(|(&a, &b)| c64(a, b)).collect()
}

/// `H_0^{(1)}(x)`.
pub fn hankel1_0(x: f64) -> C64 {
    c64(j0(x), y0(x))
}

/// `H_1^{(1)}(x)`.
pub fn hankel1_1(x: f64) -> C64 {
    c64(j1(x), y1(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference J0 via the integral representation
    /// J0(x) = (1/pi) int_0^pi cos(x sin t) dt, composite Simpson.
    fn j0_ref(x: f64) -> f64 {
        let n = 20_000usize;
        let h = std::f64::consts::PI / n as f64;
        let f = |t: f64| (x * t.sin()).cos();
        let mut s = f(0.0) + f(std::f64::consts::PI);
        for i in 1..n {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            s += w * f(i as f64 * h);
        }
        s * h / 3.0 / std::f64::consts::PI
    }

    /// Reference J_n via integral J_n(x) = (1/pi) int_0^pi cos(n t - x sin t) dt.
    fn jn_ref(n: usize, x: f64) -> f64 {
        let m = 40_000usize;
        let h = std::f64::consts::PI / m as f64;
        let f = |t: f64| (n as f64 * t - x * t.sin()).cos();
        let mut s = f(0.0) + f(std::f64::consts::PI);
        for i in 1..m {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            s += w * f(i as f64 * h);
        }
        s * h / 3.0 / std::f64::consts::PI
    }

    #[test]
    fn j0_matches_integral_representation() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 8.0, 11.9, 12.1, 20.0, 50.0, 123.4] {
            let a = j0(x);
            let b = j0_ref(x);
            assert!((a - b).abs() < 5e-11, "j0({x}): {a} vs {b}");
        }
    }

    #[test]
    fn j1_matches_integral_representation() {
        for &x in &[0.1, 1.0, 3.0, 7.5, 11.9, 12.1, 25.0, 80.0] {
            let a = j1(x);
            let b = jn_ref(1, x);
            assert!((a - b).abs() < 5e-11, "j1({x}): {a} vs {b}");
        }
    }

    #[test]
    fn known_values_spot_check() {
        // 8+ digit reference values (Abramowitz & Stegun tables).
        assert!((j0(1.0) - 0.765_197_686_6).abs() < 1e-9);
        assert!((j1(1.0) - 0.440_050_585_7).abs() < 1e-9);
        assert!((y0(1.0) - 0.088_256_964_2).abs() < 1e-9);
        assert!((y1(1.0) + 0.781_212_821_3).abs() < 1e-9);
        assert!((j0(2.0) - 0.223_890_779_1).abs() < 1e-9);
        assert!((y0(2.0) - 0.510_375_672_6).abs() < 1e-9);
    }

    #[test]
    fn wronskian_identity_all_regimes() {
        // J_{n+1}(x) Y_n(x) - J_n(x) Y_{n+1}(x) = 2/(pi x), exactly.
        for &x in &[0.05, 0.3, 1.0, 4.0, 9.0, 11.99, 12.01, 30.0, 100.0, 400.0] {
            let nmax = 40usize.min((2.0 * x) as usize + 20);
            let j = jn_array(nmax + 1, x);
            let y = yn_array(nmax + 1, x);
            let expect = 2.0 / (std::f64::consts::PI * x);
            for n in 0..=nmax {
                let w = j[n + 1] * y[n] - j[n] * y[n + 1];
                let rel = (w - expect).abs() / expect;
                assert!(rel < 1e-9, "wronskian n={n} x={x}: rel={rel:e}");
            }
        }
    }

    #[test]
    fn jn_matches_integral_representation() {
        for &x in &[2.0, 7.0, 15.0, 40.0] {
            let j = jn_array(12, x);
            for n in [0usize, 1, 3, 7, 12] {
                let r = jn_ref(n, x);
                assert!((j[n] - r).abs() < 1e-9, "J_{n}({x}): {} vs {r}", j[n]);
            }
        }
    }

    #[test]
    fn jn_recurrence_internally_consistent() {
        for &x in &[0.7, 3.3, 22.0] {
            let j = jn_array(25, x);
            for n in 1..24 {
                let lhs = j[n - 1] + j[n + 1];
                let rhs = 2.0 * n as f64 / x * j[n];
                assert!(
                    (lhs - rhs).abs() < 1e-12 * (1.0 + rhs.abs()),
                    "recurrence n={n} x={x}"
                );
            }
        }
    }

    #[test]
    fn jn_array_at_zero_and_tiny() {
        let j = jn_array(5, 0.0);
        assert_eq!(j[0], 1.0);
        assert!(j[1..].iter().all(|&v| v == 0.0));
        let j = jn_array(3, 1e-10);
        assert!((j[0] - 1.0).abs() < 1e-15);
        assert!((j[1] - 5e-11).abs() < 1e-20);
    }

    #[test]
    fn hankel_limits() {
        // Large-x asymptotics: H0^(1)(x) ~ sqrt(2/(pi x)) e^{i(x - pi/4)}.
        let x = 300.0;
        let h = hankel1_0(x);
        let amp = (2.0 / (std::f64::consts::PI * x)).sqrt();
        let expect = C64::cis(x - std::f64::consts::FRAC_PI_4) * amp;
        assert!((h - expect).abs() / amp < 2e-3, "{h:?} vs {expect:?}");
        // Small-x: Y0 ~ (2/pi)(ln(x/2) + gamma).
        let x = 1e-6_f64;
        let expect = std::f64::consts::FRAC_2_PI * ((0.5 * x).ln() + EULER_GAMMA);
        assert!((y0(x) - expect).abs() < 1e-10);
    }

    #[test]
    fn hankel_array_consistent_with_scalars() {
        let x = 9.25;
        let h = hankel1_array(6, x);
        assert!((h[0] - hankel1_0(x)).abs() < 1e-14);
        assert!((h[1] - hankel1_1(x)).abs() < 1e-14);
    }

    #[test]
    fn series_asymptotic_crossover_continuous() {
        // Evaluate both regimes at exactly x = 12: they must agree to ~1e-10.
        let x = SERIES_CUTOFF;
        let amp = (2.0 / (std::f64::consts::PI * x)).sqrt();
        let chi0 = x - std::f64::consts::FRAC_PI_4;
        let chi1 = x - 3.0 * std::f64::consts::FRAC_PI_4;
        let (p0, q0) = asymptotic_pq(0, x);
        let (p1, q1) = asymptotic_pq(1, x);
        let checks = [
            (
                j0_series(x),
                amp * (p0 * chi0.cos() - q0 * chi0.sin()),
                "j0",
            ),
            (
                j1_series(x),
                amp * (p1 * chi1.cos() - q1 * chi1.sin()),
                "j1",
            ),
            (
                y0_series(x),
                amp * (p0 * chi0.sin() + q0 * chi0.cos()),
                "y0",
            ),
            (
                y1_series(x),
                amp * (p1 * chi1.sin() + q1 * chi1.cos()),
                "y1",
            ),
        ];
        for (a, b, name) in checks {
            assert!((a - b).abs() < 1e-10, "{name}: {a} vs {b}");
        }
    }

    #[test]
    fn yn_grows_for_n_above_x() {
        let y = yn_array(30, 5.0);
        assert!(y[29].abs() > y[10].abs());
        assert!(y[29] < 0.0); // Y_n(x) -> -inf direction for n >> x
    }
}
