//! BLAS-1 style operations over `&[C64]` used by the Krylov solvers and the
//! inverse-scattering optimizer.

use crate::complex::C64;

/// Conjugated dot product `sum conj(a_i) b_i` (the Hilbert-space inner product).
pub fn zdotc(a: &[C64], b: &[C64]) -> C64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = C64::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = x.conj().mul_add(*y, acc);
    }
    acc
}

/// Unconjugated dot product `sum a_i b_i` (used by BiCGStab).
pub fn zdotu(a: &[C64], b: &[C64]) -> C64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = C64::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = x.mul_add(*y, acc);
    }
    acc
}

/// Euclidean norm.
pub fn norm2(a: &[C64]) -> f64 {
    a.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
}

/// Squared Euclidean norm.
pub fn norm2_sqr(a: &[C64]) -> f64 {
    a.iter().map(|v| v.norm_sqr()).sum::<f64>()
}

/// `y += alpha * x`.
pub fn axpy(alpha: C64, x: &[C64], y: &mut [C64]) {
    debug_assert_eq!(x.len(), y.len());
    for (xi, yi) in x.iter().zip(y.iter_mut()) {
        *yi = alpha.mul_add(*xi, *yi);
    }
}

/// `y = alpha * x + y` with real alpha.
pub fn axpy_real(alpha: f64, x: &[C64], y: &mut [C64]) {
    for (xi, yi) in x.iter().zip(y.iter_mut()) {
        yi.re += alpha * xi.re;
        yi.im += alpha * xi.im;
    }
}

/// `x *= alpha`.
pub fn scale(alpha: C64, x: &mut [C64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `out = a - b`.
pub fn sub_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((x, y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
        *o = *x - *y;
    }
}

/// Elementwise product `out = a .* b`.
pub fn hadamard(a: &[C64], b: &[C64], out: &mut [C64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((x, y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
        *o = *x * *y;
    }
}

/// Elementwise conjugate in place.
pub fn conj_in_place(a: &mut [C64]) {
    for v in a.iter_mut() {
        v.im = -v.im;
    }
}

/// Relative difference `||a - b|| / ||b||` (0 if both empty/zero).
pub fn rel_diff(a: &[C64], b: &[C64]) -> f64 {
    let nb = norm2(b);
    if nb == 0.0 {
        return norm2(a);
    }
    let mut d = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        d += (*x - *y).norm_sqr();
    }
    d.sqrt() / nb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn dot_products() {
        let a = vec![c64(1.0, 2.0), c64(0.0, -1.0)];
        let b = vec![c64(3.0, 0.0), c64(1.0, 1.0)];
        let dc = zdotc(&a, &b);
        // conj(1+2i)*3 + conj(-i)*(1+i) = (3-6i) + i(1+i) = (3-6i) + (i-1) = 2-5i
        assert!((dc - c64(2.0, -5.0)).abs() < 1e-14);
        let du = zdotu(&a, &b);
        // (1+2i)*3 + (-i)(1+i) = 3+6i + (1-i)*... = 3+6i -i +1 = 4+5i
        assert!((du - c64(4.0, 5.0)).abs() < 1e-14);
    }

    #[test]
    fn norms_and_axpy() {
        let mut y = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let x = vec![c64(1.0, 1.0), c64(2.0, 0.0)];
        axpy(c64(0.0, 1.0), &x, &mut y);
        // y0 = 1 + i(1+i) = i, y1 = i + 2i = 3i
        assert!((y[0] - c64(0.0, 1.0)).abs() < 1e-15);
        assert!((y[1] - c64(0.0, 3.0)).abs() < 1e-15);
        assert!((norm2(&y) - 10.0f64.sqrt()).abs() < 1e-14);
        assert!((norm2_sqr(&y) - 10.0).abs() < 1e-13);
    }

    #[test]
    fn rel_diff_basics() {
        let a = vec![c64(1.0, 0.0)];
        let b = vec![c64(2.0, 0.0)];
        assert!((rel_diff(&a, &b) - 0.5).abs() < 1e-15);
        assert_eq!(rel_diff(&a, &a), 0.0);
    }

    #[test]
    fn hadamard_and_conj() {
        let a = vec![c64(1.0, 1.0)];
        let b = vec![c64(0.0, 1.0)];
        let mut out = vec![C64::ZERO];
        hadamard(&a, &b, &mut out);
        assert!((out[0] - c64(-1.0, 1.0)).abs() < 1e-15);
        conj_in_place(&mut out);
        assert!((out[0] - c64(-1.0, -1.0)).abs() < 1e-15);
    }
}
