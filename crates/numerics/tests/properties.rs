//! Property-based tests for the numerical substrate.

use ffw_numerics::bessel::{jn_array, yn_array};
use ffw_numerics::fft::{dft_naive, fft, ifft, resample_periodic};
use ffw_numerics::linalg::Matrix;
use ffw_numerics::vecops::{norm2, rel_diff, zdotc};
use ffw_numerics::{c64, C64};
use proptest::prelude::*;

fn c64_strategy() -> impl Strategy<Value = C64> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(a, b)| c64(a, b))
}

fn vec_strategy(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(c64_strategy(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(a in c64_strategy(), b in c64_strategy(), c in c64_strategy()) {
        // commutativity / associativity / distributivity within fp tolerance
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        prop_assert!((a * b - b * a).abs() < 1e-12);
        prop_assert!(((a * b) * c - a * (b * c)).abs() < 1e-9 * (1.0 + (a*b*c).abs()));
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-9 * (1.0 + a.abs() * (b.abs() + c.abs())));
        // conjugation is an involution and multiplicative
        prop_assert!((a.conj().conj() - a).abs() == 0.0);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-10);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn fft_roundtrip_any_length(x in vec_strategy(200)) {
        let y = ifft(&fft(&x));
        prop_assert!(rel_diff(&y, &x) < 1e-10);
    }

    #[test]
    fn fft_matches_naive_any_length(x in vec_strategy(64)) {
        let a = fft(&x);
        let b = dft_naive(&x);
        prop_assert!(rel_diff(&a, &b) < 1e-9);
    }

    #[test]
    fn fft_parseval(x in vec_strategy(128)) {
        let y = fft(&x);
        let ex = norm2(&x).powi(2);
        let ey = norm2(&y).powi(2) / x.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-8 * (1.0 + ex));
    }

    #[test]
    fn resample_roundtrip_when_oversampled(
        seed in 0u64..1000,
        l in 1i64..8,
    ) {
        // band-limited signal, oversampled source grid
        let q1 = (4 * l + 3) as usize;
        let q2 = (6 * l + 5) as usize;
        let mut s = seed;
        let mut coeff = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let modes: Vec<(i64, C64)> = (-l..=l).map(|m| (m, c64(coeff(), coeff()))).collect();
        let eval = |q: usize| -> Vec<C64> {
            (0..q).map(|j| {
                let a = std::f64::consts::TAU * j as f64 / q as f64;
                modes.iter().map(|&(m, cm)| cm * C64::cis(m as f64 * a)).sum()
            }).collect()
        };
        let up = resample_periodic(&eval(q1), q2);
        prop_assert!(rel_diff(&up, &eval(q2)) < 1e-9);
        let down = resample_periodic(&eval(q2), q1);
        prop_assert!(rel_diff(&down, &eval(q1)) < 1e-9);
    }

    #[test]
    fn bessel_wronskian_random_argument(x in 0.05f64..300.0) {
        let nmax = 10usize;
        let j = jn_array(nmax + 1, x);
        let y = yn_array(nmax + 1, x);
        let expect = 2.0 / (std::f64::consts::PI * x);
        for n in 0..=nmax {
            let w = j[n + 1] * y[n] - j[n] * y[n + 1];
            prop_assert!(((w - expect) / expect).abs() < 1e-8, "n={} x={} w={}", n, x, w);
        }
    }

    #[test]
    fn matvec_linearity(
        x in vec_strategy(24),
        alpha in c64_strategy(),
    ) {
        let n = x.len();
        let a = Matrix::from_fn(n, n, |r, c| c64((r * 7 + c) as f64 * 0.01, (c * 3) as f64 * 0.02 - 0.1));
        let ax: Vec<C64> = {
            let mut y = vec![C64::ZERO; n];
            a.matvec(&x, &mut y);
            y
        };
        let scaled: Vec<C64> = x.iter().map(|v| *v * alpha).collect();
        let mut y2 = vec![C64::ZERO; n];
        a.matvec(&scaled, &mut y2);
        let expect: Vec<C64> = ax.iter().map(|v| *v * alpha).collect();
        prop_assert!(rel_diff(&y2, &expect) < 1e-9);
    }

    #[test]
    fn adjoint_identity_random(xv in vec_strategy(16), yv in vec_strategy(16)) {
        let n = xv.len();
        let m = yv.len();
        let a = Matrix::from_fn(m, n, |r, c| c64((r + 2 * c) as f64 * 0.05 - 0.3, (r * c) as f64 * 0.01));
        let mut ax = vec![C64::ZERO; m];
        a.matvec(&xv, &mut ax);
        let mut ahy = vec![C64::ZERO; n];
        a.matvec_adjoint_acc(&yv, &mut ahy);
        let lhs = zdotc(&ax, &yv);
        let rhs = zdotc(&xv, &ahy);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }
}

// --- Deterministic sweeps (fixed seeds, fixed sizes) ------------------------
// The proptest blocks above explore randomly; these pin down the exact cases
// the MLFMA pipeline depends on — non-power-of-two FFT lengths (the sampling
// rates 2L+1 are odd) and the Bessel/Hankel identities the translation
// operators assume — so a regression fails on a named case, not a shrink.

/// Splitmix-ish deterministic complex vector.
fn seeded_vec(len: usize, seed: u64) -> Vec<C64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    (0..len).map(|_| c64(next(), next())).collect()
}

/// FFT lengths the workspace actually hits: powers of two, odd sampling
/// rates, highly-composite and prime lengths.
const FFT_SIZES: [usize; 18] = [
    1, 2, 3, 4, 5, 7, 8, 11, 12, 16, 27, 31, 48, 64, 81, 100, 128, 243,
];

#[test]
fn fft_roundtrip_size_sweep() {
    for (i, &n) in FFT_SIZES.iter().enumerate() {
        let x = seeded_vec(n, 40 + i as u64);
        let y = ifft(&fft(&x));
        assert!(rel_diff(&y, &x) < 1e-10, "roundtrip drift at n={n}");
    }
}

#[test]
fn fft_parseval_size_sweep() {
    for (i, &n) in FFT_SIZES.iter().enumerate() {
        let x = seeded_vec(n, 4000 + i as u64);
        let y = fft(&x);
        let ex = norm2(&x).powi(2);
        let ey = norm2(&y).powi(2) / n as f64;
        assert!(
            (ex - ey).abs() < 1e-10 * (1.0 + ex),
            "Parseval drift at n={n}: {ex} vs {ey}"
        );
    }
}

#[test]
fn fft_size_sweep_matches_naive() {
    for (i, &n) in FFT_SIZES.iter().enumerate() {
        let x = seeded_vec(n, 90_000 + i as u64);
        assert!(
            rel_diff(&fft(&x), &dft_naive(&x)) < 1e-9,
            "fft != dft at n={n}"
        );
    }
}

/// Arguments spanning the regimes the downward/upward recurrences switch in.
const BESSEL_ARGS: [f64; 8] = [0.1, 0.5, 1.0, 2.5, 7.3, 19.0, 53.0, 147.0];

#[test]
fn bessel_j_three_term_recurrence() {
    // J_{n-1}(x) + J_{n+1}(x) = (2n/x) J_n(x)
    for &x in &BESSEL_ARGS {
        let j = jn_array(14, x);
        for n in 1..=12 {
            let lhs = j[n - 1] + j[n + 1];
            let rhs = (2.0 * n as f64 / x) * j[n];
            let scale = j[n - 1].abs().max(j[n + 1].abs()).max(1e-30);
            assert!(
                (lhs - rhs).abs() < 1e-9 * scale.max(1.0),
                "J recurrence drift at n={n} x={x}: {lhs} vs {rhs}"
            );
        }
    }
}

#[test]
fn bessel_y_three_term_recurrence() {
    // Y_{n-1}(x) + Y_{n+1}(x) = (2n/x) Y_n(x) — exercised in the regime
    // n <~ x where the upward recurrence is stable.
    for &x in &BESSEL_ARGS {
        let nmax = (x as usize).clamp(2, 12);
        let y = yn_array(nmax + 1, x);
        for n in 1..nmax {
            let lhs = y[n - 1] + y[n + 1];
            let rhs = (2.0 * n as f64 / x) * y[n];
            let scale = y[n - 1].abs().max(y[n + 1].abs()).max(1.0);
            assert!(
                (lhs - rhs).abs() < 1e-9 * scale,
                "Y recurrence drift at n={n} x={x}: {lhs} vs {rhs}"
            );
        }
    }
}

#[test]
fn hankel_composition_and_recurrence() {
    use ffw_numerics::bessel::{hankel1_0, hankel1_1, hankel1_array};
    for &x in &BESSEL_ARGS {
        let h = hankel1_array(10, x);
        let j = jn_array(10, x);
        let y = yn_array(10, x);
        // H_n = J_n + i Y_n, and the low-order closed forms agree.
        for n in 0..=10 {
            assert!(
                (h[n] - c64(j[n], y[n])).abs() == 0.0,
                "H composition at n={n} x={x}"
            );
        }
        assert!((h[0] - hankel1_0(x)).abs() < 1e-10 * (1.0 + h[0].abs()));
        assert!((h[1] - hankel1_1(x)).abs() < 1e-10 * (1.0 + h[1].abs()));
        // Three-term recurrence holds for the complex combination too.
        for n in 1..=8 {
            let lhs = h[n - 1] + h[n + 1];
            let rhs = h[n] * (2.0 * n as f64 / x);
            let scale = h[n - 1].abs().max(h[n + 1].abs()).max(1.0);
            assert!(
                (lhs - rhs).abs() < 1e-9 * scale,
                "H recurrence drift at n={n} x={x}"
            );
        }
    }
}

#[test]
fn bessel_wronskian_fixed_arguments() {
    // J_{n+1} Y_n - J_n Y_{n+1} = 2 / (pi x), the identity the 2-D Green's
    // function addition theorem rests on.
    for &x in &BESSEL_ARGS {
        let nmax = (x as usize).clamp(4, 10);
        let j = jn_array(nmax + 1, x);
        let y = yn_array(nmax + 1, x);
        let expect = 2.0 / (std::f64::consts::PI * x);
        for n in 0..nmax {
            let w = j[n + 1] * y[n] - j[n] * y[n + 1];
            assert!(
                ((w - expect) / expect).abs() < 1e-9,
                "Wronskian drift at n={n} x={x}: {w} vs {expect}"
            );
        }
    }
}
