//! Property-based tests for the numerical substrate.

use ffw_numerics::bessel::{jn_array, yn_array};
use ffw_numerics::fft::{dft_naive, fft, ifft, resample_periodic};
use ffw_numerics::linalg::Matrix;
use ffw_numerics::vecops::{norm2, rel_diff, zdotc};
use ffw_numerics::{c64, C64};
use proptest::prelude::*;

fn c64_strategy() -> impl Strategy<Value = C64> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(a, b)| c64(a, b))
}

fn vec_strategy(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(c64_strategy(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(a in c64_strategy(), b in c64_strategy(), c in c64_strategy()) {
        // commutativity / associativity / distributivity within fp tolerance
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        prop_assert!((a * b - b * a).abs() < 1e-12);
        prop_assert!(((a * b) * c - a * (b * c)).abs() < 1e-9 * (1.0 + (a*b*c).abs()));
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-9 * (1.0 + a.abs() * (b.abs() + c.abs())));
        // conjugation is an involution and multiplicative
        prop_assert!((a.conj().conj() - a).abs() == 0.0);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-10);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn fft_roundtrip_any_length(x in vec_strategy(200)) {
        let y = ifft(&fft(&x));
        prop_assert!(rel_diff(&y, &x) < 1e-10);
    }

    #[test]
    fn fft_matches_naive_any_length(x in vec_strategy(64)) {
        let a = fft(&x);
        let b = dft_naive(&x);
        prop_assert!(rel_diff(&a, &b) < 1e-9);
    }

    #[test]
    fn fft_parseval(x in vec_strategy(128)) {
        let y = fft(&x);
        let ex = norm2(&x).powi(2);
        let ey = norm2(&y).powi(2) / x.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-8 * (1.0 + ex));
    }

    #[test]
    fn resample_roundtrip_when_oversampled(
        seed in 0u64..1000,
        l in 1i64..8,
    ) {
        // band-limited signal, oversampled source grid
        let q1 = (4 * l + 3) as usize;
        let q2 = (6 * l + 5) as usize;
        let mut s = seed;
        let mut coeff = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let modes: Vec<(i64, C64)> = (-l..=l).map(|m| (m, c64(coeff(), coeff()))).collect();
        let eval = |q: usize| -> Vec<C64> {
            (0..q).map(|j| {
                let a = std::f64::consts::TAU * j as f64 / q as f64;
                modes.iter().map(|&(m, cm)| cm * C64::cis(m as f64 * a)).sum()
            }).collect()
        };
        let up = resample_periodic(&eval(q1), q2);
        prop_assert!(rel_diff(&up, &eval(q2)) < 1e-9);
        let down = resample_periodic(&eval(q2), q1);
        prop_assert!(rel_diff(&down, &eval(q1)) < 1e-9);
    }

    #[test]
    fn bessel_wronskian_random_argument(x in 0.05f64..300.0) {
        let nmax = 10usize;
        let j = jn_array(nmax + 1, x);
        let y = yn_array(nmax + 1, x);
        let expect = 2.0 / (std::f64::consts::PI * x);
        for n in 0..=nmax {
            let w = j[n + 1] * y[n] - j[n] * y[n + 1];
            prop_assert!(((w - expect) / expect).abs() < 1e-8, "n={} x={} w={}", n, x, w);
        }
    }

    #[test]
    fn matvec_linearity(
        x in vec_strategy(24),
        alpha in c64_strategy(),
    ) {
        let n = x.len();
        let a = Matrix::from_fn(n, n, |r, c| c64((r * 7 + c) as f64 * 0.01, (c * 3) as f64 * 0.02 - 0.1));
        let ax: Vec<C64> = {
            let mut y = vec![C64::ZERO; n];
            a.matvec(&x, &mut y);
            y
        };
        let scaled: Vec<C64> = x.iter().map(|v| *v * alpha).collect();
        let mut y2 = vec![C64::ZERO; n];
        a.matvec(&scaled, &mut y2);
        let expect: Vec<C64> = ax.iter().map(|v| *v * alpha).collect();
        prop_assert!(rel_diff(&y2, &expect) < 1e-9);
    }

    #[test]
    fn adjoint_identity_random(xv in vec_strategy(16), yv in vec_strategy(16)) {
        let n = xv.len();
        let m = yv.len();
        let a = Matrix::from_fn(m, n, |r, c| c64((r + 2 * c) as f64 * 0.05 - 0.3, (r * c) as f64 * 0.01));
        let mut ax = vec![C64::ZERO; m];
        a.matvec(&xv, &mut ax);
        let mut ahy = vec![C64::ZERO; n];
        a.matvec_adjoint_acc(&yv, &mut ahy);
        let lhs = zdotc(&ax, &yv);
        let rhs = zdotc(&xv, &ahy);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }
}
