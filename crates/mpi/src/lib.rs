//! # ffw-mpi
//!
//! An in-process message-passing runtime standing in for MPI in the paper's
//! two-dimensional parallelization (Section IV). Ranks are OS threads; each
//! directed rank pair has a tag-matched mailbox; collectives are built on the
//! point-to-point layer. Every message is accounted per edge (count + bytes),
//! so the distributed solver can report exactly the communication volumes the
//! performance model consumes, and ablations can show the effect of the
//! paper's buffer-aggregation optimization (Section IV-B).
//!
//! Semantics match the subset of MPI the paper's solver needs:
//! * `send` is buffered and non-blocking (like `MPI_Isend` + eager protocol);
//! * `recv(src, tag)` blocks until a matching message arrives, with
//!   out-of-order messages held back per (source, tag);
//! * `barrier`, `allreduce`, `gather`/`broadcast` collectives.

#![warn(missing_docs)]

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Message payloads: the solver moves complex fields, real scalars for
/// reductions, and occasional integer bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Complex doubles as `(re, im)` pairs.
    C64(Vec<(f64, f64)>),
    /// Real doubles.
    F64(Vec<f64>),
    /// Unsigned 64-bit integers.
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes (as it would travel on a wire).
    pub fn n_bytes(&self) -> u64 {
        match self {
            Payload::C64(v) => 16 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Unwraps a complex payload.
    pub fn into_c64(self) -> Vec<(f64, f64)> {
        match self {
            Payload::C64(v) => v,
            other => panic!("expected C64 payload, got {other:?}"),
        }
    }

    /// Unwraps a real payload.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps an integer payload.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }
}

struct Mailbox {
    queue: Mutex<VecDeque<(u32, Payload)>>,
    cond: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn push(&self, tag: u32, payload: Payload) {
        let mut q = self.queue.lock();
        q.push_back((tag, payload));
        self.cond.notify_all();
    }

    fn pop_matching(&self, tag: u32) -> Payload {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|(t, _)| *t == tag) {
                return q.remove(pos).expect("position valid").1;
            }
            self.cond.wait(&mut q);
        }
    }

    fn try_pop_matching(&self, tag: u32) -> Option<Payload> {
        let mut q = self.queue.lock();
        q.iter()
            .position(|(t, _)| *t == tag)
            .map(|pos| q.remove(pos).expect("position valid").1)
    }
}

/// Per-edge communication counters.
#[derive(Debug)]
pub struct CommStats {
    size: usize,
    /// messages[src * size + dst]
    messages: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
}

impl CommStats {
    fn new(size: usize) -> Self {
        CommStats {
            size,
            messages: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, src: usize, dst: usize, n_bytes: u64) {
        let idx = src * self.size + dst;
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx].fetch_add(n_bytes, Ordering::Relaxed);
    }

    /// Total messages sent (all edges).
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes sent (all edges).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Messages sent on the directed edge `src -> dst`.
    pub fn edge_messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.size + dst].load(Ordering::Relaxed)
    }

    /// Bytes sent on the directed edge `src -> dst`.
    pub fn edge_bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.size + dst].load(Ordering::Relaxed)
    }
}

struct Shared {
    size: usize,
    /// mailboxes[src * size + dst]
    mailboxes: Vec<Mailbox>,
    stats: CommStats,
    barrier: std::sync::Barrier,
}

/// A rank's handle to the communicator.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
}

/// Tags with the high bit set are reserved for collectives.
const COLLECTIVE_TAG: u32 = 0x8000_0000;

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Shared communication statistics (live view).
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// Buffered, non-blocking send. User tags must not set the high bit.
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        assert!(dst < self.shared.size, "invalid destination {dst}");
        assert_eq!(tag & COLLECTIVE_TAG, 0, "user tag sets reserved bit");
        self.send_raw(dst, tag, payload);
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Payload) {
        self.shared.stats.record(self.rank, dst, payload.n_bytes());
        self.shared.mailboxes[self.rank * self.shared.size + dst].push(tag, payload);
    }

    /// Blocking receive of the message with the given source and tag.
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        assert!(src < self.shared.size, "invalid source {src}");
        assert_eq!(tag & COLLECTIVE_TAG, 0, "user tag sets reserved bit");
        self.recv_raw(src, tag)
    }

    fn recv_raw(&self, src: usize, tag: u32) -> Payload {
        self.shared.mailboxes[src * self.shared.size + self.rank].pop_matching(tag)
    }

    /// Non-blocking receive: returns `None` if no matching message has
    /// arrived yet (used by the communication/computation overlap pipeline).
    pub fn try_recv(&self, src: usize, tag: u32) -> Option<Payload> {
        assert!(src < self.shared.size);
        assert_eq!(tag & COLLECTIVE_TAG, 0);
        self.shared.mailboxes[src * self.shared.size + self.rank].try_pop_matching(tag)
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Element-wise sum-allreduce over complex data (in place; all ranks end
    /// with the global sum). Root-based: gather to rank 0, reduce, broadcast.
    pub fn allreduce_sum_c64(&self, data: &mut [(f64, f64)]) {
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 1).into_c64();
                assert_eq!(part.len(), data.len(), "allreduce length mismatch");
                for (d, p) in data.iter_mut().zip(part) {
                    d.0 += p.0;
                    d.1 += p.1;
                }
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 2, Payload::C64(data.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 1, Payload::C64(data.to_vec()));
            let result = self.recv_raw(0, COLLECTIVE_TAG | 2).into_c64();
            data.copy_from_slice(&result);
        }
    }

    /// Sum-allreduce over real data.
    pub fn allreduce_sum_f64(&self, data: &mut [f64]) {
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 3).into_f64();
                assert_eq!(part.len(), data.len());
                for (d, p) in data.iter_mut().zip(part) {
                    *d += p;
                }
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 4, Payload::F64(data.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 3, Payload::F64(data.to_vec()));
            let result = self.recv_raw(0, COLLECTIVE_TAG | 4).into_f64();
            data.copy_from_slice(&result);
        }
    }

    /// Max-allreduce over a single value.
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        let mut buf = [value];
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 5).into_f64();
                buf[0] = buf[0].max(part[0]);
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 6, Payload::F64(buf.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 5, Payload::F64(buf.to_vec()));
            buf[0] = self.recv_raw(0, COLLECTIVE_TAG | 6).into_f64()[0];
        }
        buf[0]
    }

    /// Broadcast from `root` to all ranks (in place).
    pub fn broadcast_c64(&self, root: usize, data: &mut Vec<(f64, f64)>) {
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_raw(dst, COLLECTIVE_TAG | 7, Payload::C64(data.clone()));
                }
            }
        } else {
            *data = self.recv_raw(root, COLLECTIVE_TAG | 7).into_c64();
        }
    }

    /// Gathers variable-length complex chunks to `root`; returns
    /// `Some(chunks by rank)` on the root, `None` elsewhere.
    pub fn gather_c64(&self, root: usize, chunk: &[(f64, f64)]) -> Option<Vec<Vec<(f64, f64)>>> {
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = chunk.to_vec();
            for src in 0..self.size() {
                if src != root {
                    out[src] = self.recv_raw(src, COLLECTIVE_TAG | 8).into_c64();
                }
            }
            Some(out)
        } else {
            self.send_raw(root, COLLECTIVE_TAG | 8, Payload::C64(chunk.to_vec()));
            None
        }
    }
}

/// Opaque handle exposing post-run communication statistics.
pub struct RunStats {
    inner: Arc<Shared>,
}

impl RunStats {
    /// The recorded communication statistics of the finished run.
    pub fn stats(&self) -> &CommStats {
        &self.inner.stats
    }
}

/// Launches `n_ranks` ranks running `f` concurrently and returns their
/// results in rank order, along with the communication statistics.
pub fn run<F, T>(n_ranks: usize, f: F) -> (Vec<T>, RunStats)
where
    F: Fn(Comm) -> T + Send + Sync,
    T: Send,
{
    assert!(n_ranks >= 1);
    let shared = Arc::new(Shared {
        size: n_ranks,
        mailboxes: (0..n_ranks * n_ranks).map(|_| Mailbox::new()).collect(),
        stats: CommStats::new(n_ranks),
        barrier: std::sync::Barrier::new(n_ranks),
    });
    let results: Vec<Mutex<Option<T>>> = (0..n_ranks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (rank, slot) in results.iter().enumerate().skip(1) {
            let comm = Comm {
                rank,
                shared: Arc::clone(&shared),
            };
            let f = &f;
            std::thread::Builder::new()
                .name(format!("ffw-mpi-{rank}"))
                .spawn_scoped(scope, move || {
                    *slot.lock() = Some(f(comm));
                })
                .expect("spawn rank");
        }
        let comm = Comm {
            rank: 0,
            shared: Arc::clone(&shared),
        };
        *results[0].lock() = Some(f(comm));
    });
    let out = results
        .into_iter()
        .map(|m| m.into_inner().expect("rank produced a result"))
        .collect();
    (out, RunStats { inner: shared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, Payload::F64(vec![1.0, 2.0, 3.0]));
                comm.recv(1, 8).into_f64()
            } else {
                let got = comm.recv(0, 7).into_f64();
                let doubled: Vec<f64> = got.iter().map(|v| v * 2.0).collect();
                comm.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::U64(vec![111]));
                comm.send(1, 2, Payload::U64(vec![222]));
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2).into_u64()[0];
                let a = comm.recv(0, 1).into_u64()[0];
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let n = 5;
        let (results, _) = run(n, |comm| {
            let mut data = vec![(comm.rank() as f64, 1.0); 3];
            comm.allreduce_sum_c64(&mut data);
            data
        });
        let expect_re = (0..n).sum::<usize>() as f64;
        for r in results {
            for (re, im) in r {
                assert_eq!(re, expect_re);
                assert_eq!(im, n as f64);
            }
        }
    }

    #[test]
    fn allreduce_f64_and_max() {
        let (results, _) = run(4, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_sum_f64(&mut v);
            let m = comm.allreduce_max_f64(comm.rank() as f64 * 10.0);
            (v[0], m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 30.0);
        }
    }

    #[test]
    fn broadcast_and_gather() {
        let (results, _) = run(3, |comm| {
            let mut data = if comm.rank() == 1 {
                vec![(9.0, -1.0); 4]
            } else {
                Vec::new()
            };
            comm.broadcast_c64(1, &mut data);
            assert_eq!(data.len(), 4);
            let chunk = vec![(comm.rank() as f64, 0.0); comm.rank() + 1];
            let gathered = comm.gather_c64(0, &chunk);
            if comm.rank() == 0 {
                let g = gathered.expect("root gathers");
                assert_eq!(g[2].len(), 3);
                assert_eq!(g[1][0].0, 1.0);
            }
            data[0].0
        });
        assert!(results.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must observe all 4 increments.
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let (_, handle) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, Payload::C64(vec![(1.0, 2.0); 10]));
            } else {
                let _ = comm.recv(0, 0);
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.edge_messages(0, 1), 1);
        assert_eq!(stats.edge_bytes(0, 1), 160);
        assert_eq!(stats.edge_messages(1, 0), 0);
        assert_eq!(stats.total_bytes(), 160);
    }

    #[test]
    fn try_recv_nonblocking() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 3, Payload::U64(vec![5]));
                comm.barrier();
                true
            } else {
                assert!(comm.try_recv(0, 3).is_none(), "nothing sent yet");
                comm.barrier();
                comm.barrier();
                // Now it must be there (sent before the second barrier).
                comm.try_recv(0, 3).is_some()
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let (results, _) = run(1, |comm| {
            let mut v = vec![(1.0, 2.0)];
            comm.allreduce_sum_c64(&mut v);
            let m = comm.allreduce_max_f64(3.5);
            comm.barrier();
            (v[0], m)
        });
        assert_eq!(results[0], ((1.0, 2.0), 3.5));
    }
}
