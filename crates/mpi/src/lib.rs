//! # ffw-mpi
//!
//! An in-process message-passing runtime standing in for MPI in the paper's
//! two-dimensional parallelization (Section IV). Ranks are OS threads; each
//! directed rank pair has a tag-matched mailbox; collectives are built on the
//! point-to-point layer. Every message is accounted per edge (count + bytes),
//! so the distributed solver can report exactly the communication volumes the
//! performance model consumes, and ablations can show the effect of the
//! paper's buffer-aggregation optimization (Section IV-B).
//!
//! Semantics match the subset of MPI the paper's solver needs:
//! * `send` is buffered and non-blocking (like `MPI_Isend` + eager protocol);
//! * `recv(src, tag)` blocks until a matching message arrives, with
//!   out-of-order messages held back per (source, tag);
//! * `barrier`, `allreduce`, `gather`/`broadcast` collectives.
//!
//! ## Verification (ffw-check integration)
//!
//! The runtime is self-checking, in two tiers:
//!
//! * **Deadlock watchdog.** Every rank publishes what it is blocked on (a
//!   [`ffw_check::WaitState`]) in a shared registry. Blocking waits use a
//!   timeout (`FFW_DEADLOCK_TIMEOUT_MS`, default 1000 ms); on timeout the
//!   waiter snapshots the registry, reconstructs the global wait-for graph
//!   with [`ffw_check::diagnose_deadlock`], confirms the diagnosis against a
//!   second snapshot, and panics with a readable report naming every rank and
//!   the cycle (or the dependency on a finished/panicked rank). Only
//!   *definite* deadlocks are reported — a slow peer never trips the
//!   watchdog.
//! * **Post-run trace validation.** Each rank records a low-overhead
//!   [`ffw_check::Event`] trace of its user-level sends, receives, polls
//!   (coalesced), and collectives. When [`run`] exits normally, the traces
//!   plus any undelivered messages are handed to
//!   [`ffw_check::validate_traces`]; message leaks, self-sends, reserved-tag
//!   misuse, and cross-rank collective-ordering mismatches fail the run with
//!   a report.
//!
//! A panicking rank is marked [`ffw_check::WaitState::Panicked`] rather than
//! silently disappearing, so peers blocked on it get a diagnosed error
//! instead of a hang; [`run`] then re-raises the lowest-ranked panic.
//!
//! ## Fault injection and fault-aware launches
//!
//! [`Runtime`] is the builder behind [`run`]: it adds a programmatic
//! deadlock-timeout knob and accepts a seeded [`ffw_fault::FaultPlan`] that
//! can crash a rank at its N-th runtime operation, drop a specific send
//! (the runtime retries with bounded backoff before declaring the peer dead
//! with [`ffw_fault::FaultError::SendLost`]), or delay a rank's operations
//! (straggler model). Every injected fault is recorded in the event trace
//! ([`ffw_check::FaultEvent`]). [`Runtime::launch`] returns per-rank
//! [`RankOutcome`]s instead of panicking, so a crashed rank is data, not an
//! abort; the fallible `send_checked`/`recv_checked` operations let rank
//! code observe a dead peer as a typed [`ffw_fault::FaultError`] value and
//! degrade gracefully (the fault-tolerant DBIM driver in `ffw-dist` builds
//! on exactly this).
//!
//! Watchdog timeout precedence: the `FFW_DEADLOCK_TIMEOUT_MS` environment
//! variable (if set) overrides [`Runtime::deadlock_timeout`], which
//! overrides the 1000 ms default.

#![warn(missing_docs)]

use ffw_check::trace::{render_report, CollectiveKind, Event, LeakedMessage};
use ffw_check::waitgraph::WaitState;
use ffw_check::{diagnose_deadlock, validate_traces, validate_traces_faulty, DeadlockReport};
use ffw_fault::{
    abft_lane_c64, abft_lane_f64, abft_verify_c64, abft_verify_f64, crc32_c64, crc32_f64,
    crc32_u64, ActiveFaults, OpAction, PhiLite, DEFAULT_PHI_THRESHOLD,
};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use ffw_check::trace::FaultEvent;
pub use ffw_fault::{ComputeFault, FaultError, FaultPlan, RetryPolicy};

/// Relative tolerance for ABFT checksum-lane verification: legitimate
/// floating-point reassociation moves an element sum by ~1e-16 of its norm,
/// while a flipped payload bit moves it by many orders of magnitude more.
const ABFT_TOL: f64 = 1e-9;

/// Message payloads: the solver moves complex fields, real scalars for
/// reductions, and occasional integer bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Complex doubles as `(re, im)` pairs.
    C64(Vec<(f64, f64)>),
    /// Real doubles.
    F64(Vec<f64>),
    /// Unsigned 64-bit integers.
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes (as it would travel on a wire).
    pub fn n_bytes(&self) -> u64 {
        match self {
            Payload::C64(v) => 16 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Unwraps a complex payload.
    pub fn into_c64(self) -> Vec<(f64, f64)> {
        match self {
            Payload::C64(v) => v,
            other => panic!("expected C64 payload, got {other:?}"),
        }
    }

    /// Unwraps a real payload.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps an integer payload.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// CRC-32 of the payload's raw bit patterns (the integrity frame every
    /// message travels with).
    pub fn crc32(&self) -> u32 {
        match self {
            Payload::C64(v) => crc32_c64(v),
            Payload::F64(v) => crc32_f64(v),
            Payload::U64(v) => crc32_u64(v),
        }
    }

    /// A copy with one payload bit flipped (deterministically chosen from
    /// `salt`), used by fault injection to model in-flight corruption. An
    /// empty payload has no bits to flip and is returned unchanged.
    fn bit_flipped(&self, salt: u32) -> Payload {
        let flip = |bits: u64| bits ^ (1u64 << (11 + (salt as u64 % 40)));
        match self {
            Payload::C64(v) => {
                let mut v = v.clone();
                let idx = salt as usize % v.len().max(1);
                if let Some(first) = v.get_mut(idx) {
                    first.0 = f64::from_bits(flip(first.0.to_bits()));
                }
                Payload::C64(v)
            }
            Payload::F64(v) => {
                let mut v = v.clone();
                let idx = salt as usize % v.len().max(1);
                if let Some(first) = v.get_mut(idx) {
                    *first = f64::from_bits(flip(first.to_bits()));
                }
                Payload::F64(v)
            }
            Payload::U64(v) => {
                let mut v = v.clone();
                let idx = salt as usize % v.len().max(1);
                if let Some(first) = v.get_mut(idx) {
                    *first = flip(*first);
                }
                Payload::U64(v)
            }
        }
    }
}

/// A framed message as it sits in a mailbox: the payload plus integrity
/// metadata. The CRC and optional ABFT lane are frame metadata, not wire
/// payload — `CommStats` byte accounting is unchanged by framing.
struct Msg {
    tag: u32,
    /// CRC-32 of the payload computed by the sender.
    crc: u32,
    /// ABFT checksum lane (element sum) for reduction payloads.
    lane: Option<(f64, f64)>,
    /// Remaining delivery attempts fault injection corrupts in flight.
    corrupt_left: u32,
    /// Corrupted delivery attempts already observed by the receiver.
    corrupt_seen: u32,
    payload: Payload,
}

struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    cond: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn push(&self, msg: Msg) {
        let mut q = self.queue.lock();
        q.push_back(msg);
        self.cond.notify_all();
    }

    /// Requeue a NACKed frame at the front (a retransmit must not reorder
    /// against other messages on the same edge+tag).
    fn requeue_front(&self, msg: Msg) {
        let mut q = self.queue.lock();
        q.push_front(msg);
        self.cond.notify_all();
    }

    fn try_pop_matching(&self, tag: u32) -> Option<Msg> {
        let mut q = self.queue.lock();
        q.iter()
            .position(|m| m.tag == tag)
            .map(|pos| q.remove(pos).expect("position valid"))
    }

    fn has_matching(&self, tag: u32) -> bool {
        self.queue.lock().iter().any(|m| m.tag == tag)
    }
}

/// Per-edge communication counters.
#[derive(Debug)]
pub struct CommStats {
    size: usize,
    /// messages[src * size + dst]
    messages: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
}

impl CommStats {
    fn new(size: usize) -> Self {
        CommStats {
            size,
            messages: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, src: usize, dst: usize, n_bytes: u64) {
        let idx = src * self.size + dst;
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx].fetch_add(n_bytes, Ordering::Relaxed);
    }

    /// Total messages sent (all edges).
    pub fn total_messages(&self) -> u64 {
        self.messages
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total bytes sent (all edges).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Messages sent on the directed edge `src -> dst`.
    pub fn edge_messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.size + dst].load(Ordering::Relaxed)
    }

    /// Bytes sent on the directed edge `src -> dst`.
    pub fn edge_bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.size + dst].load(Ordering::Relaxed)
    }

    /// Number of ranks the stats matrix covers.
    pub fn n_ranks(&self) -> usize {
        self.size
    }

    /// Accumulates this run's per-rank and total message/byte counts into
    /// the global `ffw_obs` registry: `mpi.bytes.rank{r}` /
    /// `mpi.messages.rank{r}` hold what rank `r` *sent*, `mpi.bytes.total` /
    /// `mpi.messages.total` the all-edge sums. Counters are monotonic, so
    /// repeated launches (e.g. fault-tolerant relaunches) accumulate. No-op
    /// while the recorder is off.
    pub fn record_obs(&self) {
        if !ffw_obs::enabled() {
            return;
        }
        for src in 0..self.size {
            let (mut bytes, mut msgs) = (0u64, 0u64);
            for dst in 0..self.size {
                bytes += self.edge_bytes(src, dst);
                msgs += self.edge_messages(src, dst);
            }
            ffw_obs::counter(&format!("mpi.bytes.rank{src}")).add(bytes);
            ffw_obs::counter(&format!("mpi.messages.rank{src}")).add(msgs);
        }
        ffw_obs::counter("mpi.bytes.total").add(self.total_bytes());
        ffw_obs::counter("mpi.messages.total").add(self.total_messages());
    }
}

/// Diagnosable replacement for `std::sync::Barrier`: waiters can time out,
/// inspect the global state, and resume — and the generation they are stuck
/// on is visible to the deadlock analysis.
struct Barrier {
    state: Mutex<BarrierState>,
    cond: Condvar,
}

struct BarrierState {
    generation: u64,
    arrived: usize,
}

/// Per-launch heartbeat machinery: one companion beater thread per rank
/// stamps a shared timestamp while the rank closure runs; a monitor thread
/// maintains a [`PhiLite`] suspicion score per rank and, when a panicked
/// rank's beats stop, marks it suspect and wakes every blocked waiter so
/// dead-peer detection costs O(heartbeat interval), not O(deadlock timeout).
struct Heartbeat {
    interval: Duration,
    /// beats[r] = monotonic ns of rank r's most recent beat.
    beats: Vec<AtomicU64>,
    /// suspects[r] = phi (in thousandths) at detection time; 0 = alive.
    suspects: Vec<AtomicU64>,
    /// rank_done[r] set when rank r's closure returned or panicked; stops
    /// its beater within one condvar wake.
    rank_done: Vec<AtomicBool>,
    /// Launch-teardown signal for the beater and monitor threads.
    shutdown: Mutex<bool>,
    shutdown_cond: Condvar,
}

impl Heartbeat {
    fn new(n_ranks: usize, interval: Duration) -> Self {
        let now = ffw_obs::monotonic_ns();
        Heartbeat {
            interval,
            beats: (0..n_ranks).map(|_| AtomicU64::new(now)).collect(),
            suspects: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            rank_done: (0..n_ranks).map(|_| AtomicBool::new(false)).collect(),
            shutdown: Mutex::new(false),
            shutdown_cond: Condvar::new(),
        }
    }

    /// phi (in thousandths) at which `rank` was suspected, if it was.
    fn suspect_phi_milli(&self, rank: usize) -> Option<u64> {
        match self.suspects[rank].load(Ordering::SeqCst) {
            0 => None,
            phi => Some(phi),
        }
    }
}

struct Shared {
    size: usize,
    /// mailboxes[src * size + dst]
    mailboxes: Vec<Mailbox>,
    stats: CommStats,
    barrier: Barrier,
    /// What each rank is currently blocked on (the watchdog's input).
    registry: Mutex<Vec<WaitState>>,
    /// Per-rank event traces for post-run validation.
    traces: Vec<Mutex<Vec<Event>>>,
    /// Watchdog timeout for blocking waits.
    timeout: Duration,
    /// First confirmed deadlock report. Later watchdog firings re-raise this
    /// one, so every stuck rank fails with the *original* diagnosis rather
    /// than a cascade of "peer panicked" follow-ups.
    verdict: Mutex<Option<String>>,
    /// Activated fault plan, if this launch injects faults.
    faults: Option<ActiveFaults>,
    /// Heartbeat failure detection (absent for single-rank launches or when
    /// explicitly disabled).
    heartbeat: Option<Heartbeat>,
}

impl Shared {
    fn set_state(&self, rank: usize, state: WaitState) {
        self.registry.lock()[rank] = state;
    }

    /// The retry policy active for this launch (default when no fault plan).
    fn retry(&self) -> RetryPolicy {
        self.faults.as_ref().map(|f| f.retry()).unwrap_or_default()
    }

    /// phi-milli at which `peer` was suspected by the heartbeat monitor.
    fn hb_suspect(&self, peer: usize) -> Option<u64> {
        self.heartbeat.as_ref()?.suspect_phi_milli(peer)
    }

    /// True when any rank is currently heartbeat-suspected.
    fn hb_any_suspect(&self) -> bool {
        self.heartbeat
            .as_ref()
            .is_some_and(|hb| (0..self.size).any(|r| hb.suspect_phi_milli(r).is_some()))
    }

    /// Watchdog invoked by `rank` when a blocking wait times out. Every
    /// positive diagnosis is re-confirmed against a second snapshot taken
    /// after a short delay, so a transient state observed mid-transition can
    /// never produce a report.
    ///
    /// Outcomes:
    /// * `Ok(())` — no confirmed problem with *this rank's* wait; keep
    ///   waiting. (Another rank's doomed wait is its own to report: every
    ///   blocking wait polls, so errors cascade rank by rank.)
    /// * `Err(PeerDead)` — this rank's wait depends on a rank that already
    ///   finished or panicked and can never satisfy it. The caller turns
    ///   this into a typed error value (checked receives) or a panic
    ///   (legacy receives, collectives).
    /// * panic — a confirmed cycle of live ranks: a protocol bug, not a
    ///   survivable fault. The first verdict is stored so every stuck rank
    ///   re-raises the *original* diagnosis.
    fn watchdog_poll(&self, rank: usize) -> Result<(), FaultError> {
        if let Some(report) = self.verdict.lock().clone() {
            panic!("{report}");
        }
        const CONFIRM: Duration = Duration::from_millis(50);
        // This rank's own wait first: a dependency on a dead rank is a
        // recoverable fault surfaced as a value.
        if let Some(peer) = self.dead_dependency_of(rank) {
            std::thread::sleep(CONFIRM);
            if self.dead_dependency_of(rank) == Some(peer) {
                let report = DeadlockReport {
                    states: self.registry.lock().clone(),
                    cycle: None,
                    dead_dependency: Some((rank, peer)),
                };
                return Err(FaultError::PeerDead {
                    rank,
                    peer,
                    detail: format!("ffw-mpi: {report}"),
                });
            }
            return Ok(());
        }
        let Some(first) = self.diagnose_once() else {
            return Ok(());
        };
        std::thread::sleep(CONFIRM);
        let confirmed = match self.diagnose_once() {
            Some(second) if first == second => second,
            _ => return Ok(()),
        };
        if confirmed.dead_dependency.is_some() {
            // Some other rank's wait is doomed; it will surface the error
            // itself on its own poll. This rank's wait may still be
            // satisfiable (e.g. by a rank that errors out and re-routes).
            return Ok(());
        }
        let mut verdict = self.verdict.lock();
        let report = verdict
            .get_or_insert_with(|| format!("ffw-mpi: {confirmed}"))
            .clone();
        drop(verdict);
        panic!("{report}");
    }

    /// If `rank`'s current wait depends on a rank that has finished or
    /// panicked (and cannot be satisfied from queued messages), returns that
    /// dead rank. Mirrors the conservative rules of
    /// [`ffw_check::diagnose_deadlock`] but checks only `rank`'s own wait.
    fn dead_dependency_of(&self, rank: usize) -> Option<usize> {
        let snapshot = self.registry.lock().clone();
        match snapshot[rank] {
            WaitState::RecvWait { src, tag } => {
                let dead = matches!(snapshot[src], WaitState::Finished | WaitState::Panicked);
                let queued = self.mailboxes[src * self.size + rank].has_matching(tag);
                (dead && !queued).then_some(src)
            }
            WaitState::BarrierWait { generation } => {
                snapshot.iter().enumerate().find_map(|(other, state)| {
                    if other == rank {
                        return None;
                    }
                    let arrived = matches!(
                        state,
                        WaitState::BarrierWait { generation: g } if *g == generation
                    );
                    if arrived {
                        return None;
                    }
                    matches!(state, WaitState::Finished | WaitState::Panicked).then_some(other)
                })
            }
            _ => None,
        }
    }

    fn diagnose_once(&self) -> Option<ffw_check::DeadlockReport> {
        let snapshot = self.registry.lock().clone();
        diagnose_deadlock(&snapshot, |src, dst, tag| {
            self.mailboxes[src * self.size + dst].has_matching(tag)
        })
    }

    fn trace(&self, rank: usize, event: Event) {
        self.traces[rank].lock().push(event);
    }
}

/// A rank's handle to the communicator.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
}

/// Tags with the high bit set are reserved for collectives.
const COLLECTIVE_TAG: u32 = 0x8000_0000;

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Shared communication statistics (live view).
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// Consults the active fault plan (if any) at the start of a runtime
    /// operation: may delay the rank (straggler model) or crash it with a
    /// typed [`FaultError::InjectedCrash`], recording the fault in the
    /// trace first. A no-op (one `Option` check) when no plan is active.
    fn fault_tick(&self) {
        let Some(faults) = &self.shared.faults else {
            return;
        };
        match faults.on_op(self.rank) {
            OpAction::Proceed => {}
            OpAction::Delay { delay_ms, .. } => {
                self.shared
                    .trace(self.rank, Event::Fault(FaultEvent::Straggle { delay_ms }));
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            OpAction::Crash { op } => {
                self.shared
                    .trace(self.rank, Event::Fault(FaultEvent::InjectedCrash { op }));
                panic_any(FaultError::InjectedCrash {
                    rank: self.rank,
                    op,
                });
            }
        }
    }

    /// Consults the active fault plan for a compute-corruption injection
    /// scheduled on this rank's next operator apply. Counts one apply per
    /// call; returns the fault to inject into the apply's output, if any.
    /// A no-op (one `Option` check) when no plan is active.
    pub fn compute_fault(&self) -> Option<ComputeFault> {
        self.shared
            .faults
            .as_ref()
            .and_then(|f| f.on_apply(self.rank))
    }

    /// Records a compute-integrity fault event in this rank's trace so the
    /// post-run `ffw-check` validation can verify every detected corruption
    /// was resolved (recovered or escalated as a typed error).
    pub fn trace_fault(&self, event: FaultEvent) {
        self.shared.trace(self.rank, Event::Fault(event));
    }

    /// Buffered, non-blocking send. User tags must not set the high bit.
    ///
    /// Panics if fault injection makes the send unrecoverable; fault-aware
    /// callers use [`Comm::send_checked`] instead.
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        if let Err(e) = self.send_checked(dst, tag, payload) {
            panic!("ffw-mpi: {e}");
        }
    }

    /// Fallible send: retries delivery with bounded exponential backoff when
    /// fault injection drops the message, and returns
    /// [`FaultError::SendLost`] (declaring `dst` dead) once the retry
    /// budget is exhausted. Without an active fault plan this always
    /// succeeds.
    pub fn send_checked(&self, dst: usize, tag: u32, payload: Payload) -> Result<(), FaultError> {
        self.send_checked_framed(dst, tag, payload, None)
    }

    /// Checked send that additionally stamps an explicit ABFT checksum lane
    /// into the integrity frame. The lane travels as frame metadata (it is
    /// not counted as payload bytes) and is verified by
    /// [`Comm::recv_checked_laned`] against the data it arrives with, so a
    /// higher-level reduction can carry the *expected element sum* through a
    /// hop and have the receiver detect corruption the per-message CRC
    /// cannot see — damage that happened before framing, e.g. inside the
    /// reduction arithmetic. Injected drop/corruption faults apply exactly
    /// as in [`Comm::send_checked`].
    pub fn send_checked_laned(
        &self,
        dst: usize,
        tag: u32,
        payload: Payload,
        lane: (f64, f64),
    ) -> Result<(), FaultError> {
        self.send_checked_framed(dst, tag, payload, Some(lane))
    }

    fn send_checked_framed(
        &self,
        dst: usize,
        tag: u32,
        payload: Payload,
        lane: Option<(f64, f64)>,
    ) -> Result<(), FaultError> {
        assert!(
            dst < self.shared.size,
            "send: invalid destination rank {dst} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "send: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let mut corrupts = 0;
        if let Some(faults) = &self.shared.faults {
            let fault = faults.on_send(self.rank, dst);
            corrupts = fault.corrupts;
            let retry = faults.retry();
            for attempt in 0..fault.drops {
                if attempt >= retry.max_retries {
                    let attempts = attempt + 1;
                    self.shared.trace(
                        self.rank,
                        Event::Fault(FaultEvent::SendRetriesExhausted { dst, tag, attempts }),
                    );
                    return Err(FaultError::SendLost {
                        rank: self.rank,
                        dst,
                        tag,
                        attempts,
                    });
                }
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::SendDropped {
                        dst,
                        tag,
                        attempt: attempt + 1,
                    }),
                );
                std::thread::sleep(Duration::from_millis(retry.backoff_ms(attempt)));
            }
        }
        self.shared.trace(
            self.rank,
            Event::Send {
                dst,
                tag,
                bytes: payload.n_bytes(),
            },
        );
        self.send_frame(dst, tag, payload, lane, corrupts);
        Ok(())
    }

    /// Stamps the integrity frame (CRC-32 + optional ABFT lane) and delivers
    /// to the destination mailbox. `corrupts` schedules that many delivery
    /// attempts to arrive bit-flipped (fault injection).
    fn send_frame(
        &self,
        dst: usize,
        tag: u32,
        payload: Payload,
        lane: Option<(f64, f64)>,
        corrupts: u32,
    ) {
        self.shared.stats.record(self.rank, dst, payload.n_bytes());
        let crc = payload.crc32();
        self.shared.mailboxes[self.rank * self.shared.size + dst].push(Msg {
            tag,
            crc,
            lane,
            corrupt_left: corrupts,
            corrupt_seen: 0,
            payload,
        });
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Payload) {
        self.send_frame(dst, tag, payload, None, 0);
    }

    /// Blocking receive of the message with the given source and tag.
    ///
    /// Panics (with the watchdog's report) if `src` dies before sending;
    /// fault-aware callers use [`Comm::recv_checked`] instead.
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        match self.recv_checked(src, tag) {
            Ok(payload) => payload,
            Err(e) => panic!("ffw-mpi: {e}"),
        }
    }

    /// Fallible blocking receive: returns [`FaultError::PeerDead`] (with
    /// the watchdog's wait-for-graph report) if `src` finishes or panics
    /// without having sent a matching message, instead of panicking.
    pub fn recv_checked(&self, src: usize, tag: u32) -> Result<Payload, FaultError> {
        assert!(
            src < self.shared.size,
            "recv: invalid source rank {src} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "recv: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let payload = self.recv_frame_verified(src, tag)?.payload;
        self.shared.trace(
            self.rank,
            Event::Recv {
                src,
                tag,
                bytes: payload.n_bytes(),
            },
        );
        Ok(payload)
    }

    /// Fallible blocking receive that additionally verifies the frame's
    /// ABFT checksum lane (when the sender stamped one via
    /// [`Comm::send_checked_laned`]) against the received data, with the
    /// same tolerance the collectives use. Returns the payload together
    /// with the carried lane so reduction roots can fold contribution
    /// lanes into the lane of the reduced result.
    ///
    /// A lane mismatch *after* a clean CRC means the data was damaged
    /// before it was framed — retransmitting the same bytes cannot help —
    /// so it surfaces immediately as [`FaultError::Corruption`] rather
    /// than a NACK.
    pub fn recv_checked_laned(
        &self,
        src: usize,
        tag: u32,
    ) -> Result<(Payload, Option<(f64, f64)>), FaultError> {
        assert!(
            src < self.shared.size,
            "recv: invalid source rank {src} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "recv: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let msg = self.recv_frame_verified(src, tag)?;
        if let Some(lane) = msg.lane {
            let ok = match &msg.payload {
                Payload::C64(v) => abft_verify_c64(v, lane, ABFT_TOL),
                Payload::F64(v) => abft_verify_f64(v, lane.0, ABFT_TOL),
                // Lanes are floating-point sums; integer payloads carry
                // none worth verifying beyond the CRC.
                Payload::U64(_) => true,
            };
            if !ok {
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::CorruptRecv {
                        src,
                        tag,
                        attempt: 1,
                    }),
                );
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::CorruptionRetriesExhausted {
                        src,
                        tag,
                        attempts: 1,
                    }),
                );
                ffw_obs::counter("mpi.integrity.corrupt_recvs").add(1);
                ffw_obs::event(
                    "mpi.integrity.lane_mismatch",
                    &format!("rank {} <- rank {src} tag {tag:#x}", self.rank),
                );
                return Err(FaultError::Corruption {
                    rank: self.rank,
                    src,
                    tag,
                    attempts: 1,
                });
            }
        }
        self.shared.trace(
            self.rank,
            Event::Recv {
                src,
                tag,
                bytes: msg.payload.n_bytes(),
            },
        );
        Ok((msg.payload, msg.lane))
    }

    /// Infallible receive for the collective implementations: a dead peer
    /// mid-collective is not recoverable in-band, so it panics with the
    /// watchdog report.
    fn recv_raw(&self, src: usize, tag: u32) -> Payload {
        self.recv_frame_raw(src, tag).payload
    }

    /// Infallible framed receive (payload + lane) for collectives.
    fn recv_frame_raw(&self, src: usize, tag: u32) -> Msg {
        match self.recv_frame_verified(src, tag) {
            Ok(msg) => msg,
            Err(e) => panic!("ffw-mpi: {e}"),
        }
    }

    /// Blocking verified receive: pops frames via [`Comm::recv_msg_blocking`]
    /// and runs the CRC-32 integrity check on every delivery attempt. A
    /// corrupted attempt is NACKed — the frame is requeued for retransmit
    /// (the in-process model of asking the sender to resend) with bounded
    /// backoff under the launch's [`RetryPolicy`] — and when the budget is
    /// exhausted the receive fails with [`FaultError::Corruption`]. Every
    /// detection and retransmit is traced and mirrored to `ffw-obs`.
    fn recv_frame_verified(&self, src: usize, tag: u32) -> Result<Msg, FaultError> {
        let retry = self.shared.retry();
        loop {
            let mut msg = self.recv_msg_blocking(src, tag)?;
            let clean = if msg.corrupt_left > 0 {
                // This delivery attempt arrives bit-flipped: verify the
                // receiver would genuinely have seen the corruption.
                msg.corrupt_left -= 1;
                let corrupted = msg.payload.bit_flipped(msg.corrupt_seen);
                corrupted.crc32() == msg.crc
            } else {
                msg.payload.crc32() == msg.crc
            };
            if clean {
                return Ok(msg);
            }
            msg.corrupt_seen += 1;
            let attempt = msg.corrupt_seen;
            self.shared.trace(
                self.rank,
                Event::Fault(FaultEvent::CorruptRecv { src, tag, attempt }),
            );
            ffw_obs::counter("mpi.integrity.corrupt_recvs").add(1);
            if attempt > retry.max_retries {
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::CorruptionRetriesExhausted {
                        src,
                        tag,
                        attempts: attempt,
                    }),
                );
                ffw_obs::event(
                    "mpi.integrity.exhausted",
                    &format!(
                        "rank {} <- rank {src} tag {tag:#x} after {attempt} attempts",
                        self.rank
                    ),
                );
                return Err(FaultError::Corruption {
                    rank: self.rank,
                    src,
                    tag,
                    attempts: attempt,
                });
            }
            self.shared.trace(
                self.rank,
                Event::Fault(FaultEvent::RetransmitRequested { src, tag, attempt }),
            );
            ffw_obs::counter("mpi.integrity.retransmits").add(1);
            self.shared.mailboxes[src * self.shared.size + self.rank].requeue_front(msg);
            std::thread::sleep(Duration::from_millis(retry.backoff_ms(attempt - 1)));
        }
    }

    /// Blocking framed receive with the deadlock watchdog. The fast path
    /// (message already queued) touches only the mailbox lock; the slow path
    /// publishes a `RecvWait` state and waits with a timeout, diagnosing the
    /// global wait-for graph whenever the timeout fires — or as soon as the
    /// heartbeat monitor suspects the source, which wakes this wait early so
    /// a dead peer is detected in O(heartbeat interval). Returns an error if
    /// this wait can never be satisfied because the peer died.
    fn recv_msg_blocking(&self, src: usize, tag: u32) -> Result<Msg, FaultError> {
        let mailbox = &self.shared.mailboxes[src * self.shared.size + self.rank];
        if let Some(msg) = mailbox.try_pop_matching(tag) {
            return Ok(msg);
        }
        self.shared
            .set_state(self.rank, WaitState::RecvWait { src, tag });
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| m.tag == tag) {
                let msg = q.remove(pos).expect("position valid");
                drop(q);
                self.shared.set_state(self.rank, WaitState::Running);
                return Ok(msg);
            }
            let result = mailbox.cond.wait_for(&mut q, self.shared.timeout);
            if result.timed_out() || self.shared.hb_suspect(src).is_some() {
                // Diagnose without holding the queue lock (the analysis
                // inspects other mailboxes; never hold two mailbox locks).
                drop(q);
                if let Err(e) = self.shared.watchdog_poll(self.rank) {
                    self.shared.set_state(self.rank, WaitState::Running);
                    if let FaultError::PeerDead { peer, .. } = &e {
                        if let Some(phi_milli) = self.shared.hb_suspect(*peer) {
                            self.shared.trace(
                                self.rank,
                                Event::Fault(FaultEvent::HeartbeatSuspect {
                                    peer: *peer,
                                    phi_milli,
                                }),
                            );
                        }
                        self.shared.trace(
                            self.rank,
                            Event::Fault(FaultEvent::PeerDeclaredDead { peer: *peer }),
                        );
                    }
                    return Err(e);
                }
                q = mailbox.queue.lock();
            }
        }
    }

    /// Non-blocking receive: returns `None` if no matching message has
    /// arrived yet (used by the communication/computation overlap pipeline).
    pub fn try_recv(&self, src: usize, tag: u32) -> Option<Payload> {
        assert!(
            src < self.shared.size,
            "try_recv: invalid source rank {src} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "try_recv: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let mailbox = &self.shared.mailboxes[src * self.shared.size + self.rank];
        let mut got = mailbox.try_pop_matching(tag);
        if let Some(msg) = &mut got {
            let clean = if msg.corrupt_left > 0 {
                msg.corrupt_left -= 1;
                msg.payload.bit_flipped(msg.corrupt_seen).crc32() == msg.crc
            } else {
                msg.payload.crc32() == msg.crc
            };
            if !clean {
                // NACK and requeue: the poller's next call is the retry, so
                // the retransmit budget is the poll loop itself (bounded by
                // the scheduled corruption count, which on_send fixed).
                msg.corrupt_seen += 1;
                let attempt = msg.corrupt_seen;
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::CorruptRecv { src, tag, attempt }),
                );
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::RetransmitRequested { src, tag, attempt }),
                );
                ffw_obs::counter("mpi.integrity.corrupt_recvs").add(1);
                ffw_obs::counter("mpi.integrity.retransmits").add(1);
                mailbox.requeue_front(got.take().expect("corrupt frame present"));
            }
        }
        let got = got.map(|m| m.payload);
        let mut trace = self.shared.traces[self.rank].lock();
        match &got {
            Some(payload) => trace.push(Event::TryRecvHit {
                src,
                tag,
                bytes: payload.n_bytes(),
            }),
            None => {
                // Coalesce consecutive misses on the same edge so polling
                // loops cannot grow the trace without bound.
                if let Some(Event::TryRecvMiss {
                    src: s,
                    tag: t,
                    polls,
                }) = trace.last_mut()
                {
                    if *s == src && *t == tag {
                        *polls += 1;
                        return got;
                    }
                }
                trace.push(Event::TryRecvMiss { src, tag, polls: 1 });
            }
        }
        drop(trace);
        got
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.fault_tick();
        self.shared.trace(
            self.rank,
            Event::Collective {
                kind: CollectiveKind::Barrier,
                root: 0,
            },
        );
        let barrier = &self.shared.barrier;
        let mut st = barrier.state.lock();
        let generation = st.generation;
        st.arrived += 1;
        if st.arrived == self.shared.size {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            barrier.cond.notify_all();
            return;
        }
        self.shared
            .set_state(self.rank, WaitState::BarrierWait { generation });
        loop {
            if st.generation != generation {
                break;
            }
            let result = barrier.cond.wait_for(&mut st, self.shared.timeout);
            if (result.timed_out() || self.shared.hb_any_suspect()) && st.generation == generation {
                drop(st);
                // A dead peer can never arrive at the barrier: that is not
                // recoverable in-band, so surface it as a panic.
                if let Err(e) = self.shared.watchdog_poll(self.rank) {
                    panic!("ffw-mpi: {e}");
                }
                st = barrier.state.lock();
            }
        }
        drop(st);
        self.shared.set_state(self.rank, WaitState::Running);
    }

    /// Panics with a typed corruption error when an ABFT lane disagrees
    /// with the data it arrived with. The per-message CRC already rejects
    /// in-flight bit flips, so a lane mismatch means the data was damaged
    /// *between* checksum and reduction — a logic fault, not recoverable by
    /// retransmit.
    fn abft_panic(&self, src: usize, tag: u32) -> ! {
        panic!(
            "ffw-mpi: ABFT checksum-lane mismatch — {}",
            FaultError::Corruption {
                rank: self.rank,
                src,
                tag,
                attempts: 1,
            }
        );
    }

    /// Element-wise sum-allreduce over complex data (in place; all ranks end
    /// with the global sum). Root-based: gather to rank 0, reduce, broadcast.
    /// Every hop carries an ABFT checksum lane (the element sum) that the
    /// receiving side re-derives and verifies.
    pub fn allreduce_sum_c64(&self, data: &mut [(f64, f64)]) {
        self.trace_collective(CollectiveKind::AllreduceSumC64, 0);
        if self.rank == 0 {
            for src in 1..self.size() {
                let frame = self.recv_frame_raw(src, COLLECTIVE_TAG | 1);
                let part = frame.payload.into_c64();
                assert_eq!(
                    part.len(),
                    data.len(),
                    "allreduce_sum_c64: rank {src} contributed {} elements but rank 0 \
                     holds {} — all ranks must pass equal-length buffers",
                    part.len(),
                    data.len()
                );
                if let Some(lane) = frame.lane {
                    if !abft_verify_c64(&part, lane, ABFT_TOL) {
                        self.abft_panic(src, COLLECTIVE_TAG | 1);
                    }
                }
                for (d, p) in data.iter_mut().zip(part) {
                    d.0 += p.0;
                    d.1 += p.1;
                }
            }
            let lane = abft_lane_c64(data);
            for dst in 1..self.size() {
                self.send_frame(
                    dst,
                    COLLECTIVE_TAG | 2,
                    Payload::C64(data.to_vec()),
                    Some(lane),
                    0,
                );
            }
        } else {
            let lane = abft_lane_c64(data);
            self.send_frame(
                0,
                COLLECTIVE_TAG | 1,
                Payload::C64(data.to_vec()),
                Some(lane),
                0,
            );
            let frame = self.recv_frame_raw(0, COLLECTIVE_TAG | 2);
            let result = frame.payload.into_c64();
            if let Some(lane) = frame.lane {
                if !abft_verify_c64(&result, lane, ABFT_TOL) {
                    self.abft_panic(0, COLLECTIVE_TAG | 2);
                }
            }
            data.copy_from_slice(&result);
        }
    }

    /// Sum-allreduce over real data, ABFT-lane-verified like
    /// [`Comm::allreduce_sum_c64`].
    pub fn allreduce_sum_f64(&self, data: &mut [f64]) {
        self.trace_collective(CollectiveKind::AllreduceSumF64, 0);
        if self.rank == 0 {
            for src in 1..self.size() {
                let frame = self.recv_frame_raw(src, COLLECTIVE_TAG | 3);
                let part = frame.payload.into_f64();
                assert_eq!(
                    part.len(),
                    data.len(),
                    "allreduce_sum_f64: rank {src} contributed {} elements but rank 0 \
                     holds {} — all ranks must pass equal-length buffers",
                    part.len(),
                    data.len()
                );
                if let Some((lane, _)) = frame.lane {
                    if !abft_verify_f64(&part, lane, ABFT_TOL) {
                        self.abft_panic(src, COLLECTIVE_TAG | 3);
                    }
                }
                for (d, p) in data.iter_mut().zip(part) {
                    *d += p;
                }
            }
            let lane = abft_lane_f64(data);
            for dst in 1..self.size() {
                self.send_frame(
                    dst,
                    COLLECTIVE_TAG | 4,
                    Payload::F64(data.to_vec()),
                    Some((lane, 0.0)),
                    0,
                );
            }
        } else {
            let lane = abft_lane_f64(data);
            self.send_frame(
                0,
                COLLECTIVE_TAG | 3,
                Payload::F64(data.to_vec()),
                Some((lane, 0.0)),
                0,
            );
            let frame = self.recv_frame_raw(0, COLLECTIVE_TAG | 4);
            let result = frame.payload.into_f64();
            if let Some((lane, _)) = frame.lane {
                if !abft_verify_f64(&result, lane, ABFT_TOL) {
                    self.abft_panic(0, COLLECTIVE_TAG | 4);
                }
            }
            data.copy_from_slice(&result);
        }
    }

    /// Max-allreduce over a single value.
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        self.trace_collective(CollectiveKind::AllreduceMaxF64, 0);
        let mut buf = [value];
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 5).into_f64();
                buf[0] = buf[0].max(part[0]);
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 6, Payload::F64(buf.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 5, Payload::F64(buf.to_vec()));
            buf[0] = self.recv_raw(0, COLLECTIVE_TAG | 6).into_f64()[0];
        }
        buf[0]
    }

    /// Broadcast from `root` to all ranks (in place).
    pub fn broadcast_c64(&self, root: usize, data: &mut Vec<(f64, f64)>) {
        assert!(
            root < self.shared.size,
            "broadcast_c64: root {root} out of range (communicator has {} ranks)",
            self.shared.size
        );
        self.trace_collective(CollectiveKind::BroadcastC64, root);
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_raw(dst, COLLECTIVE_TAG | 7, Payload::C64(data.clone()));
                }
            }
        } else {
            *data = self.recv_raw(root, COLLECTIVE_TAG | 7).into_c64();
        }
    }

    /// Gathers variable-length complex chunks to `root`; returns
    /// `Some(chunks by rank)` on the root, `None` elsewhere.
    pub fn gather_c64(&self, root: usize, chunk: &[(f64, f64)]) -> Option<Vec<Vec<(f64, f64)>>> {
        assert!(
            root < self.shared.size,
            "gather_c64: root {root} out of range (communicator has {} ranks)",
            self.shared.size
        );
        self.trace_collective(CollectiveKind::GatherC64, root);
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = chunk.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw(src, COLLECTIVE_TAG | 8).into_c64();
                }
            }
            Some(out)
        } else {
            self.send_raw(root, COLLECTIVE_TAG | 8, Payload::C64(chunk.to_vec()));
            None
        }
    }

    fn trace_collective(&self, kind: CollectiveKind, root: usize) {
        // Every collective counts as one operation for fault injection.
        self.fault_tick();
        self.shared
            .trace(self.rank, Event::Collective { kind, root });
    }
}

/// Opaque handle exposing post-run communication statistics.
pub struct RunStats {
    inner: Arc<Shared>,
}

impl RunStats {
    /// The recorded communication statistics of the finished run.
    pub fn stats(&self) -> &CommStats {
        &self.inner.stats
    }

    /// The recorded event trace of `rank` (for inspection in tests and
    /// tooling; the run has already been validated against it).
    pub fn events(&self, rank: usize) -> Vec<Event> {
        self.inner.traces[rank].lock().clone()
    }

    /// Heartbeat evidence: the ranks the phi-accrual monitor suspected
    /// (beats stopped while the rank was panicked), with the suspicion
    /// score at detection time. Empty when the heartbeat was disabled or
    /// no rank died. Recovery drivers use this as *primary* evidence when
    /// attributing deaths.
    pub fn heartbeat_suspects(&self) -> Vec<(usize, f64)> {
        let Some(hb) = &self.inner.heartbeat else {
            return Vec::new();
        };
        (0..self.inner.size)
            .filter_map(|r| hb.suspect_phi_milli(r).map(|phi| (r, phi as f64 / 1000.0)))
            .collect()
    }
}

/// Resolves the watchdog timeout. Precedence (highest first):
/// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, the programmatic value
/// from [`Runtime::deadlock_timeout`], the 1000 ms default. Blocking waits
/// re-check the global wait-for graph at this interval; a confirmed deadlock
/// panics with a per-rank report.
fn resolve_timeout(programmatic: Option<Duration>) -> Duration {
    match std::env::var("FFW_DEADLOCK_TIMEOUT_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms >= 1 => Duration::from_millis(ms),
            _ => panic!(
                "FFW_DEADLOCK_TIMEOUT_MS={raw:?} is invalid: expected a positive \
                 integer number of milliseconds"
            ),
        },
        Err(_) => programmatic.unwrap_or(Duration::from_millis(1000)),
    }
}

/// Resolves the heartbeat interval. Precedence (highest first): the
/// `FFW_HEARTBEAT_MS` environment variable (0 disables), the programmatic
/// value from [`Runtime::heartbeat_interval`] (`Duration::ZERO` disables),
/// the 5 ms default. `None` means "no heartbeat".
fn resolve_heartbeat(programmatic: Option<Duration>) -> Option<Duration> {
    match std::env::var("FFW_HEARTBEAT_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => panic!(
                "FFW_HEARTBEAT_MS={raw:?} is invalid: expected a non-negative \
                 integer number of milliseconds"
            ),
        },
        Err(_) => {
            let interval = programmatic.unwrap_or(Duration::from_millis(5));
            (!interval.is_zero()).then_some(interval)
        }
    }
}

/// Body of a per-rank companion beater thread: stamps the rank's beat
/// timestamp every interval until the rank's closure ends (or the launch
/// tears down). Beats come from a companion thread rather than the rank
/// body so a rank blocked in a long receive or compute keeps beating —
/// suspicion can only ever mean the rank actually died.
fn heartbeat_beater(shared: Arc<Shared>, rank: usize) {
    let hb = shared.heartbeat.as_ref().expect("beater without heartbeat");
    loop {
        hb.beats[rank].store(ffw_obs::monotonic_ns(), Ordering::SeqCst);
        let mut done = hb.shutdown.lock();
        if *done || hb.rank_done[rank].load(Ordering::SeqCst) {
            break;
        }
        let _ = hb.shutdown_cond.wait_for(&mut done, hb.interval);
        if *done || hb.rank_done[rank].load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Body of the heartbeat monitor thread: maintains a [`PhiLite`] suspicion
/// score per rank from the beat timestamps; when a panicked rank's score
/// crosses [`DEFAULT_PHI_THRESHOLD`], marks it suspect and wakes every
/// blocked waiter (mailboxes and barrier) so dead-peer detection costs
/// O(heartbeat interval) instead of O(deadlock timeout).
fn heartbeat_monitor(shared: Arc<Shared>) {
    let hb = shared
        .heartbeat
        .as_ref()
        .expect("monitor without heartbeat");
    let interval_ns = hb.interval.as_nanos() as u64;
    let start = ffw_obs::monotonic_ns();
    let mut phis: Vec<PhiLite> = (0..shared.size)
        .map(|_| PhiLite::new(interval_ns, start))
        .collect();
    let mut last_seen: Vec<u64> = hb.beats.iter().map(|b| b.load(Ordering::SeqCst)).collect();
    loop {
        {
            let mut done = hb.shutdown.lock();
            if *done {
                break;
            }
            let _ = hb.shutdown_cond.wait_for(&mut done, hb.interval);
            if *done {
                break;
            }
        }
        let now = ffw_obs::monotonic_ns();
        for rank in 0..shared.size {
            if hb.suspects[rank].load(Ordering::SeqCst) != 0 {
                continue;
            }
            let beat = hb.beats[rank].load(Ordering::SeqCst);
            if beat != last_seen[rank] {
                last_seen[rank] = beat;
                phis[rank].beat(beat);
                continue;
            }
            let phi = phis[rank].phi(now);
            // Beats stop for both panicked and cleanly-finished ranks; only
            // a panicked rank is *evidence of death* (a finished rank that
            // a peer still waits on is a protocol bug the slow watchdog
            // diagnoses). The phi score supplies the detection timing.
            let panicked = matches!(shared.registry.lock()[rank], WaitState::Panicked);
            if phi > DEFAULT_PHI_THRESHOLD && panicked {
                let phi_milli = ((phi * 1000.0) as u64).max(1);
                hb.suspects[rank].store(phi_milli, Ordering::SeqCst);
                ffw_obs::event(
                    "mpi.heartbeat.suspect",
                    &format!("rank {rank} suspected at phi {phi:.1}"),
                );
                // Wake every blocked waiter. Notifying under each lock
                // closes the race with a waiter that is between its
                // predicate check and its wait.
                for mailbox in &shared.mailboxes {
                    let _guard = mailbox.queue.lock();
                    mailbox.cond.notify_all();
                }
                let _guard = shared.barrier.state.lock();
                shared.barrier.cond.notify_all();
            }
        }
    }
}

/// How one rank of a [`Runtime::launch`] ended.
#[derive(Debug)]
pub enum RankOutcome<T> {
    /// The rank closure returned normally.
    Done(T),
    /// The rank was crashed by fault injection.
    Crashed(FaultError),
}

impl<T> RankOutcome<T> {
    /// The rank's result, if it completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            RankOutcome::Done(value) => Some(value),
            RankOutcome::Crashed(_) => None,
        }
    }

    /// The crash that killed the rank, if any.
    pub fn crash(&self) -> Option<&FaultError> {
        match self {
            RankOutcome::Done(_) => None,
            RankOutcome::Crashed(e) => Some(e),
        }
    }
}

/// Result of a [`Runtime::launch`]: per-rank outcomes plus statistics.
pub struct Launch<T> {
    /// One outcome per rank, in rank order.
    pub outcomes: Vec<RankOutcome<T>>,
    /// Communication statistics and event traces of the run.
    pub stats: RunStats,
}

impl<T> Launch<T> {
    /// Unwraps a launch that cannot have crashed ranks (no fault plan).
    fn into_unfaulted(self) -> (Vec<T>, RunStats) {
        let out = self
            .outcomes
            .into_iter()
            .map(|outcome| match outcome {
                RankOutcome::Done(value) => value,
                RankOutcome::Crashed(e) => {
                    panic!("ffw-mpi: rank crashed without a fault plan: {e}")
                }
            })
            .collect();
        (out, self.stats)
    }
}

/// Injected crashes unwind via `panic_any(FaultError)` and are caught by
/// the launch — they are data, not failures — so the default panic hook's
/// "thread panicked" report and backtrace are just noise. Replace the hook
/// once, process-wide, with one that stays silent for `FaultError` payloads
/// and delegates every other panic to the previous hook unchanged.
fn install_quiet_crash_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultError>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Builder for a verified multi-rank launch: programmatic watchdog timeout
/// and optional seeded fault injection.
///
/// ```
/// use ffw_mpi::Runtime;
/// use std::time::Duration;
///
/// let launch = Runtime::new(2)
///     .deadlock_timeout(Duration::from_millis(200))
///     .launch(|comm| comm.rank() * 10);
/// assert_eq!(launch.outcomes.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Runtime {
    n_ranks: usize,
    timeout: Option<Duration>,
    fault_plan: Option<FaultPlan>,
    heartbeat: Option<Duration>,
}

impl Runtime {
    /// A runtime for `n_ranks` ranks with default settings.
    pub fn new(n_ranks: usize) -> Self {
        Runtime {
            n_ranks,
            timeout: None,
            fault_plan: None,
            heartbeat: None,
        }
    }

    /// Sets the deadlock-watchdog timeout programmatically. The
    /// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, if set, still takes
    /// precedence (env > builder > 1000 ms default).
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Injects the given seeded fault plan into the launch.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the heartbeat interval for failure detection (default 5 ms;
    /// `Duration::ZERO` disables the heartbeat). The `FFW_HEARTBEAT_MS`
    /// environment variable, if set, takes precedence (0 disables).
    /// Single-rank launches never run a heartbeat.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat = Some(interval);
        self
    }

    /// Launches the ranks and collects per-rank [`RankOutcome`]s.
    ///
    /// Unlike [`run`], a rank crashed by fault injection becomes
    /// [`RankOutcome::Crashed`] instead of a re-raised panic, so drivers
    /// can observe which ranks died and degrade gracefully. Organic (non-
    /// injected) panics are still re-raised, lowest rank first. Post-run
    /// trace validation runs in a fault-tolerant mode when ranks died
    /// (message leaks and truncated collective sequences are expected
    /// consequences of a death) and in strict mode otherwise.
    pub fn launch<F, T>(self, f: F) -> Launch<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        let n_ranks = self.n_ranks;
        let timeout = resolve_timeout(self.timeout);
        if self.fault_plan.is_some() {
            install_quiet_crash_hook();
        }
        assert!(n_ranks >= 1);
        assert!(
            timeout >= Duration::from_millis(1),
            "watchdog timeout too small"
        );
        let shared = Arc::new(Shared {
            size: n_ranks,
            mailboxes: (0..n_ranks * n_ranks).map(|_| Mailbox::new()).collect(),
            stats: CommStats::new(n_ranks),
            barrier: Barrier {
                state: Mutex::new(BarrierState {
                    generation: 0,
                    arrived: 0,
                }),
                cond: Condvar::new(),
            },
            registry: Mutex::new(vec![WaitState::Running; n_ranks]),
            traces: (0..n_ranks).map(|_| Mutex::new(Vec::new())).collect(),
            timeout,
            verdict: Mutex::new(None),
            faults: self.fault_plan.map(|plan| plan.activate(n_ranks)),
            heartbeat: (n_ranks >= 2)
                .then(|| resolve_heartbeat(self.heartbeat))
                .flatten()
                .map(|interval| Heartbeat::new(n_ranks, interval)),
        });
        // Companion beater threads + the phi-accrual monitor. These are
        // plain (non-scoped) threads over Arc clones; they are signalled
        // and joined before `launch` returns.
        let mut hb_threads = Vec::new();
        if shared.heartbeat.is_some() {
            for rank in 0..n_ranks {
                let sh = Arc::clone(&shared);
                hb_threads.push(
                    std::thread::Builder::new()
                        .name(format!("ffw-hb-beat-{rank}"))
                        .spawn(move || heartbeat_beater(sh, rank))
                        .expect("spawn heartbeat beater"),
                );
            }
            let sh = Arc::clone(&shared);
            hb_threads.push(
                std::thread::Builder::new()
                    .name("ffw-hb-monitor".into())
                    .spawn(move || heartbeat_monitor(sh))
                    .expect("spawn heartbeat monitor"),
            );
        }
        let results: Vec<Mutex<Option<T>>> = (0..n_ranks).map(|_| Mutex::new(None)).collect();
        let crashes: Vec<Mutex<Option<FaultError>>> =
            (0..n_ranks).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

        // Each rank runs under catch_unwind so a panic marks it Panicked in
        // the registry instead of silently vanishing: peers blocked on it
        // then get a diagnosed dead-dependency error rather than hanging
        // forever. An injected crash (typed FaultError payload) becomes
        // data; any other panic is a genuine failure to re-raise.
        let run_rank = |rank: usize| {
            let comm = Comm {
                rank,
                shared: Arc::clone(&shared),
            };
            match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                Ok(value) => {
                    shared.set_state(rank, WaitState::Finished);
                    *results[rank].lock() = Some(value);
                }
                Err(payload) => {
                    shared.set_state(rank, WaitState::Panicked);
                    match payload.downcast::<FaultError>() {
                        Ok(fault) => *crashes[rank].lock() = Some(*fault),
                        Err(other) => panics.lock().push((rank, other)),
                    }
                }
            }
            // The registry state is set before beats stop, so by the time
            // the monitor suspects this rank its Finished/Panicked verdict
            // is already visible.
            if let Some(hb) = &shared.heartbeat {
                hb.rank_done[rank].store(true, Ordering::SeqCst);
                hb.shutdown_cond.notify_all();
            }
        };

        std::thread::scope(|scope| {
            for rank in 1..n_ranks {
                let run_rank = &run_rank;
                std::thread::Builder::new()
                    .name(format!("ffw-mpi-{rank}"))
                    .spawn_scoped(scope, move || run_rank(rank))
                    .expect("spawn rank");
            }
            run_rank(0);
        });

        // Tear down the heartbeat machinery before validation.
        if let Some(hb) = &shared.heartbeat {
            *hb.shutdown.lock() = true;
            hb.shutdown_cond.notify_all();
        }
        for handle in hb_threads {
            handle.join().expect("heartbeat thread panicked");
        }

        let mut panics = panics.into_inner();
        if !panics.is_empty() {
            panics.sort_by_key(|(rank, _)| *rank);
            std::panic::resume_unwind(panics.remove(0).1);
        }

        // Statically validate the complete traces plus whatever was left
        // undelivered in the mailboxes. Runs in which a rank died (injected
        // crash, exhausted send retries, or a peer declared dead) use the
        // fault-tolerant validator: leaks and truncated collective
        // sequences are expected fallout of a death, while self-sends,
        // reserved tags and true collective divergence remain hard errors.
        let mut leaked = Vec::new();
        for src in 0..n_ranks {
            for dst in 0..n_ranks {
                let q = shared.mailboxes[src * n_ranks + dst].queue.lock();
                for msg in q.iter() {
                    leaked.push(LeakedMessage {
                        src,
                        dst,
                        tag: msg.tag,
                        bytes: msg.payload.n_bytes(),
                    });
                }
            }
        }
        let traces: Vec<Vec<Event>> = shared.traces.iter().map(|t| t.lock().clone()).collect();
        let any_crashed = crashes.iter().any(|c| c.lock().is_some());
        let any_death_event = traces.iter().flatten().any(|e| {
            matches!(
                e,
                Event::Fault(
                    FaultEvent::SendRetriesExhausted { .. }
                        | FaultEvent::PeerDeclaredDead { .. }
                        | FaultEvent::CorruptionRetriesExhausted { .. }
                        | FaultEvent::ComputeRetriesExhausted { .. }
                )
            )
        });
        let violations = if any_crashed || any_death_event {
            validate_traces_faulty(&traces, &leaked)
        } else {
            validate_traces(&traces, &leaked)
        };
        if !violations.is_empty() {
            panic!("{}", render_report(&violations));
        }

        let outcomes = results
            .into_iter()
            .zip(crashes)
            .enumerate()
            .map(
                |(rank, (result, crash))| match (result.into_inner(), crash.into_inner()) {
                    (Some(value), None) => RankOutcome::Done(value),
                    (None, Some(fault)) => RankOutcome::Crashed(fault),
                    _ => panic!("ffw-mpi: rank {rank} produced neither result nor crash"),
                },
            )
            .collect();
        Launch {
            outcomes,
            stats: RunStats { inner: shared },
        }
    }
}

/// Launches `n_ranks` ranks running `f` concurrently and returns their
/// results in rank order, along with the communication statistics.
///
/// The run is verified: blocked ranks are watched for deadlock (see
/// [`resolve_timeout`]'s `FFW_DEADLOCK_TIMEOUT_MS` knob), and on normal exit
/// the recorded communication traces are statically validated — undelivered
/// messages, self-sends, reserved-tag misuse, and cross-rank
/// collective-ordering mismatches all fail the run with a report. If any rank
/// panics, the lowest-ranked panic is re-raised after every rank has stopped.
pub fn run<F, T>(n_ranks: usize, f: F) -> (Vec<T>, RunStats)
where
    F: Fn(Comm) -> T + Send + Sync,
    T: Send,
{
    Runtime::new(n_ranks).launch(f).into_unfaulted()
}

/// [`run`] with an explicit deadlock-watchdog timeout (tests use short
/// timeouts to detect seeded deadlocks quickly). The
/// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, if set, overrides the
/// explicit value.
pub fn run_with_timeout<F, T>(n_ranks: usize, timeout: Duration, f: F) -> (Vec<T>, RunStats)
where
    F: Fn(Comm) -> T + Send + Sync,
    T: Send,
{
    Runtime::new(n_ranks)
        .deadlock_timeout(timeout)
        .launch(f)
        .into_unfaulted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, Payload::F64(vec![1.0, 2.0, 3.0]));
                comm.recv(1, 8).into_f64()
            } else {
                let got = comm.recv(0, 7).into_f64();
                let doubled: Vec<f64> = got.iter().map(|v| v * 2.0).collect();
                comm.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::U64(vec![111]));
                comm.send(1, 2, Payload::U64(vec![222]));
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2).into_u64()[0];
                let a = comm.recv(0, 1).into_u64()[0];
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let n = 5;
        let (results, _) = run(n, |comm| {
            let mut data = vec![(comm.rank() as f64, 1.0); 3];
            comm.allreduce_sum_c64(&mut data);
            data
        });
        let expect_re = (0..n).sum::<usize>() as f64;
        for r in results {
            for (re, im) in r {
                assert_eq!(re, expect_re);
                assert_eq!(im, n as f64);
            }
        }
    }

    #[test]
    fn allreduce_f64_and_max() {
        let (results, _) = run(4, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_sum_f64(&mut v);
            let m = comm.allreduce_max_f64(comm.rank() as f64 * 10.0);
            (v[0], m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 30.0);
        }
    }

    #[test]
    fn broadcast_and_gather() {
        let (results, _) = run(3, |comm| {
            let mut data = if comm.rank() == 1 {
                vec![(9.0, -1.0); 4]
            } else {
                Vec::new()
            };
            comm.broadcast_c64(1, &mut data);
            assert_eq!(data.len(), 4);
            let chunk = vec![(comm.rank() as f64, 0.0); comm.rank() + 1];
            let gathered = comm.gather_c64(0, &chunk);
            if comm.rank() == 0 {
                let g = gathered.expect("root gathers");
                assert_eq!(g[2].len(), 3);
                assert_eq!(g[1][0].0, 1.0);
            }
            data[0].0
        });
        assert!(results.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must observe all 4 increments.
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let (_, handle) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, Payload::C64(vec![(1.0, 2.0); 10]));
            } else {
                let _ = comm.recv(0, 0);
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.edge_messages(0, 1), 1);
        assert_eq!(stats.edge_bytes(0, 1), 160);
        assert_eq!(stats.edge_messages(1, 0), 0);
        assert_eq!(stats.total_bytes(), 160);
    }

    #[test]
    fn try_recv_nonblocking() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 3, Payload::U64(vec![5]));
                comm.barrier();
                true
            } else {
                assert!(comm.try_recv(0, 3).is_none(), "nothing sent yet");
                comm.barrier();
                comm.barrier();
                // Now it must be there (sent before the second barrier).
                comm.try_recv(0, 3).is_some()
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let (results, _) = run(1, |comm| {
            let mut v = vec![(1.0, 2.0)];
            comm.allreduce_sum_c64(&mut v);
            let m = comm.allreduce_max_f64(3.5);
            comm.barrier();
            (v[0], m)
        });
        assert_eq!(results[0], ((1.0, 2.0), 3.5));
    }

    // ---- verification-layer tests ------------------------------------------

    const FAST: Duration = Duration::from_millis(80);

    /// Runs `f` expecting a panic; returns the panic message.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(f).expect_err("expected a panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    #[test]
    fn deadlocked_recv_names_both_ranks() {
        // Rank 0 waits for a message rank 1 never sends; rank 1 finishes.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                if comm.rank() == 0 {
                    let _ = comm.recv(1, 5);
                }
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(
            msg.contains("rank 0") && msg.contains("rank 1"),
            "got: {msg}"
        );
        assert!(msg.contains("can never satisfy"), "got: {msg}");
    }

    #[test]
    fn mutual_recv_deadlock_reports_cycle() {
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let peer = 1 - comm.rank();
                let _ = comm.recv(peer, 9);
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(msg.contains("cycle"), "got: {msg}");
    }

    #[test]
    fn undelivered_message_fails_validation() {
        let msg = panic_message(|| {
            let _ = run(2, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 9, Payload::U64(vec![1, 2, 3]));
                }
            });
        });
        assert!(msg.contains("message leak"), "got: {msg}");
        assert!(
            msg.contains("src=0") && msg.contains("dst=1") && msg.contains("0x9"),
            "got: {msg}"
        );
    }

    #[test]
    fn mismatched_allreduce_lengths_fail_with_diagnostic() {
        // Rank 1 contributes a shorter buffer: the root's length check must
        // fire (and propagate out of `run`) instead of the ranks hanging.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let mut data = vec![1.0; 4 - comm.rank()];
                comm.allreduce_sum_f64(&mut data);
            });
        });
        assert!(msg.contains("allreduce_sum_f64"), "got: {msg}");
        assert!(msg.contains("equal-length"), "got: {msg}");
    }

    #[test]
    fn wrong_root_gather_fails_with_diagnostic() {
        // Both ranks believe they are the gather root: each waits for the
        // other's chunk — a cycle the watchdog must report.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let chunk = [(comm.rank() as f64, 0.0)];
                let _ = comm.gather_c64(comm.rank(), &chunk);
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(msg.contains("cycle"), "got: {msg}");
    }

    #[test]
    fn traces_record_and_coalesce() {
        let (_, handle) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 4, Payload::U64(vec![7]));
            } else {
                // Three misses back-to-back must coalesce into one event.
                assert!(comm.try_recv(0, 4).is_none());
                assert!(comm.try_recv(0, 4).is_none());
                assert!(comm.try_recv(0, 4).is_none());
                comm.barrier();
                let _ = comm.recv(0, 4);
            }
        });
        let events = handle.events(1);
        let misses: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::TryRecvMiss { polls, .. } => Some(*polls),
                _ => None,
            })
            .collect();
        assert_eq!(misses, vec![3], "consecutive misses must coalesce");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Recv { src: 0, tag: 4, .. })));
        assert!(handle
            .events(0)
            .iter()
            .any(|e| matches!(e, Event::Send { dst: 1, tag: 4, .. })));
    }

    #[test]
    fn barrier_straggler_panic_is_diagnosed() {
        // Rank 1 panics before ever reaching the barrier: rank 0's watchdog
        // must observe the Panicked dependency and abort its wait, so the run
        // terminates with a diagnosis instead of hanging. (`run` re-raises
        // the lowest-ranked panic, which here is rank 0's deadlock report.)
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                if comm.rank() == 0 {
                    comm.barrier();
                } else {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(
            msg.contains("deadlock detected") || msg.contains("rank 1 exploded"),
            "got: {msg}"
        );
    }

    // ---- fault-injection tests ---------------------------------------------

    #[test]
    fn builder_timeout_is_programmatic() {
        // Same seeded deadlock as `deadlocked_recv_names_both_ranks`, but the
        // short timeout comes from the builder instead of run_with_timeout.
        let msg = panic_message(|| {
            let _ = Runtime::new(2).deadlock_timeout(FAST).launch(|comm| {
                if comm.rank() == 0 {
                    let _ = comm.recv(1, 5);
                }
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
    }

    #[test]
    fn injected_crash_becomes_outcome_and_peer_gets_typed_error() {
        let launch = Runtime::new(2)
            .deadlock_timeout(FAST)
            .fault_plan(FaultPlan::new().crash_at(1, 1))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.recv_checked(1, 5).map(|_| ())
                } else {
                    // First op: crashed by the plan before delivery.
                    comm.send_checked(0, 5, Payload::U64(vec![1]))
                }
            });
        match launch.outcomes[1].crash() {
            Some(FaultError::InjectedCrash { rank: 1, op: 1 }) => {}
            other => panic!("expected injected crash on rank 1, got {other:?}"),
        }
        match &launch.outcomes[0] {
            RankOutcome::Done(Err(FaultError::PeerDead {
                rank: 0,
                peer: 1,
                detail,
            })) => {
                assert!(detail.contains("deadlock detected"), "got: {detail}");
            }
            other => panic!("expected typed PeerDead on rank 0, got {other:?}"),
        }
    }

    #[test]
    fn dropped_send_is_retried_and_delivered() {
        // Dropped twice, the retry budget is 3: delivery succeeds and the
        // attempts are visible in the trace.
        let launch = Runtime::new(2)
            .fault_plan(FaultPlan::new().drop_send(0, 1, 1, 2))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::U64(vec![42])).is_ok() as u64
                } else {
                    comm.recv_checked(0, 5).expect("delivered").into_u64()[0]
                }
            });
        let values: Vec<u64> = launch
            .outcomes
            .into_iter()
            .map(|o| o.into_done().expect("no rank crashed"))
            .collect();
        assert_eq!(values, vec![1, 42]);
        let drops = launch
            .stats
            .events(0)
            .iter()
            .filter(|e| matches!(e, Event::Fault(FaultEvent::SendDropped { .. })))
            .count();
        assert_eq!(drops, 2, "both forced drops must be traced");
    }

    #[test]
    fn exhausted_send_retries_surface_send_lost() {
        // Dropped more times than the retry budget allows: the sender gets
        // a typed SendLost, the receiver a typed PeerDead — no panics, no
        // hangs, and the post-run validation tolerates the fallout.
        let launch = Runtime::new(2)
            .deadlock_timeout(FAST)
            .fault_plan(FaultPlan::new().drop_send(0, 1, 1, 10))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::U64(vec![42])).map(|_| 0)
                } else {
                    comm.recv_checked(0, 5).map(|p| p.into_u64()[0])
                }
            });
        match &launch.outcomes[0] {
            RankOutcome::Done(Err(FaultError::SendLost {
                rank: 0,
                dst: 1,
                attempts,
                ..
            })) => assert_eq!(*attempts, 4, "initial try + 3 retries"),
            other => panic!("expected SendLost on rank 0, got {other:?}"),
        }
        match &launch.outcomes[1] {
            RankOutcome::Done(Err(FaultError::PeerDead { peer: 0, .. })) => {}
            other => panic!("expected PeerDead on rank 1, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_send_is_nacked_and_retransmitted() {
        // Corrupted twice, budget 3: the CRC rejects both corrupt delivery
        // attempts, the NACK/retransmit protocol recovers a clean copy, and
        // the delivered value is bit-exact.
        let launch = Runtime::new(2)
            .fault_plan(FaultPlan::new().corrupt_send(0, 1, 1, 2))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::F64(vec![3.25, -0.0, 1e-300]))
                        .map(|_| Vec::new())
                } else {
                    comm.recv_checked(0, 5).map(Payload::into_f64)
                }
            });
        match &launch.outcomes[1] {
            RankOutcome::Done(Ok(v)) => {
                assert_eq!(v.len(), 3);
                assert_eq!(v[0], 3.25);
                assert_eq!(v[1].to_bits(), (-0.0f64).to_bits(), "bit-exact delivery");
                assert_eq!(v[2], 1e-300);
            }
            other => panic!("expected recovered receive, got {other:?}"),
        }
        let events = launch.stats.events(1);
        let corrupt = events
            .iter()
            .filter(|e| matches!(e, Event::Fault(FaultEvent::CorruptRecv { .. })))
            .count();
        let nacks = events
            .iter()
            .filter(|e| matches!(e, Event::Fault(FaultEvent::RetransmitRequested { .. })))
            .count();
        assert_eq!(corrupt, 2, "both corrupt attempts must be detected");
        assert_eq!(nacks, 2, "each detection must NACK for a retransmit");
    }

    #[test]
    fn persistent_corruption_surfaces_typed_error() {
        // Corrupted past the retry budget: the receiver gets a typed
        // Corruption error naming edge, tag and attempts — no hang, no
        // silent wrong answer.
        let launch = Runtime::new(2)
            .deadlock_timeout(FAST)
            .fault_plan(FaultPlan::new().corrupt_send(0, 1, 1, 10))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::U64(vec![42])).map(|_| 0)
                } else {
                    comm.recv_checked(0, 5).map(|p| p.into_u64()[0])
                }
            });
        match &launch.outcomes[1] {
            RankOutcome::Done(Err(FaultError::Corruption {
                rank: 1,
                src: 0,
                tag: 5,
                attempts,
            })) => assert_eq!(*attempts, 4, "initial receive + 3 retransmits"),
            other => panic!("expected Corruption on rank 1, got {other:?}"),
        }
        assert!(launch.stats.events(1).iter().any(|e| matches!(
            e,
            Event::Fault(FaultEvent::CorruptionRetriesExhausted { src: 0, tag: 5, .. })
        )));
    }

    #[test]
    fn heartbeat_detects_dead_peer_without_waiting_for_watchdog() {
        // Rank 1 crashes at its first op while rank 0 blocks in a receive.
        // The deadlock watchdog alone would need the full 30 s timeout; the
        // heartbeat monitor must surface the death in well under that.
        let t0 = ffw_obs::monotonic_ns();
        let launch = Runtime::new(2)
            .deadlock_timeout(Duration::from_secs(30))
            .heartbeat_interval(Duration::from_millis(2))
            .fault_plan(FaultPlan::new().crash_at(1, 1))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.recv_checked(1, 5).map(|_| ())
                } else {
                    comm.send_checked(0, 5, Payload::U64(vec![1]))
                }
            });
        let elapsed_ms = (ffw_obs::monotonic_ns() - t0) / 1_000_000;
        assert!(
            elapsed_ms < 5_000,
            "heartbeat detection took {elapsed_ms} ms — watchdog-timeout latency"
        );
        match &launch.outcomes[0] {
            RankOutcome::Done(Err(FaultError::PeerDead { peer: 1, .. })) => {}
            other => panic!("expected PeerDead on rank 0, got {other:?}"),
        }
        let suspects = launch.stats.heartbeat_suspects();
        assert_eq!(suspects.len(), 1, "exactly the dead rank is suspected");
        assert_eq!(suspects[0].0, 1);
        assert!(suspects[0].1 > DEFAULT_PHI_THRESHOLD);
        assert!(launch.stats.events(0).iter().any(|e| matches!(
            e,
            Event::Fault(FaultEvent::HeartbeatSuspect { peer: 1, .. })
        )));
    }

    #[test]
    fn straggler_delays_but_does_not_change_results() {
        let body = |comm: &Comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_sum_f64(&mut v);
            v[0]
        };
        let (clean, _) = run(3, |comm| body(&comm));
        let launch = Runtime::new(3)
            .fault_plan(FaultPlan::new().straggler(1, 1, 4, 2))
            .launch(|comm| body(&comm));
        let slowed: Vec<f64> = launch
            .outcomes
            .into_iter()
            .map(|o| o.into_done().expect("no rank crashed"))
            .collect();
        assert_eq!(clean, slowed);
        assert!(launch
            .stats
            .events(1)
            .iter()
            .any(|e| matches!(e, Event::Fault(FaultEvent::Straggle { .. }))));
    }
}
